"""Dict-free churn on the CSR facade is bit-identical to the dict backend.

The contract under test: an arbitrary interleaving of ``add_node`` /
``add_edge`` / ``set_sign`` / ``remove_edge`` / ``csr_view`` applied to a
:class:`~repro.signed.lazy.CSRBackedSignedGraph` produces — without ever
materialising the adjacency dicts — exactly the state a plain
:class:`~repro.signed.graph.SignedGraph` reaches under the same interleaving:
same exceptions, same generation trace, same counters, same snapshot planes
(arrays, node order, dtypes), same query answers, and snapshots that keep the
dense-id identity sharing the generational caches rely on.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compatibility import make_relation
from repro.signed import CSRSignedGraph, SignedGraph, as_signed_graph
from repro.signed.lazy import CSRBackedSignedGraph

SLOW_OK = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

RELATIONS = ("SPA", "SPM", "SPO", "SBPH", "NNE")


def build_pair(num_nodes, edges):
    """A dict graph and an equal-state facade over its CSR snapshot."""
    reference = SignedGraph()
    for node in range(num_nodes):
        reference.add_node(node)
    for u, v, sign in edges:
        if u != v and not reference.has_edge(u, v):
            reference.add_edge(u, v, sign)
    csr = CSRSignedGraph.from_signed_graph(reference)
    return reference, CSRBackedSignedGraph(csr)


def apply_op(graph, op):
    """Apply one churn op; normalise the outcome for cross-backend compare."""
    try:
        kind = op[0]
        if kind == "add_node":
            graph.add_node(op[1])
        elif kind == "add_edge":
            graph.add_edge(op[1], op[2], op[3])
        elif kind == "set_sign":
            graph.set_sign(op[1], op[2], op[3])
        elif kind == "remove_edge":
            graph.remove_edge(op[1], op[2])
        elif kind == "snapshot":
            view = graph.csr_view()
            return ("snapshot", view.generation)
        return ("ok", None)
    except Exception as exc:  # compared by type across backends
        return ("raised", type(exc).__name__)


def assert_planes_equal(left, right):
    assert left._nodes == right._nodes
    assert left.generation == right.generation
    assert np.array_equal(left.indptr, right.indptr)
    assert np.array_equal(left.indices, right.indices)
    assert np.array_equal(left.signs, right.signs)
    assert left.indptr.dtype == right.indptr.dtype
    assert left.indices.dtype == right.indices.dtype
    assert left.signs.dtype == right.signs.dtype


@st.composite
def churn_scenarios(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=7))
    edge = st.tuples(
        st.integers(0, num_nodes - 1),
        st.integers(0, num_nodes - 1),
        st.sampled_from((-1, 1)),
    )
    edges = draw(st.lists(edge, max_size=14))
    # The op pool reaches past the initial node range so add_edge/add_node
    # grow the node set mid-stream (pure-addition apply_delta path).
    node = st.integers(0, num_nodes + 2)
    sign = st.sampled_from((-1, 1))
    op = st.one_of(
        st.tuples(st.just("add_edge"), node, node, sign),
        st.tuples(st.just("remove_edge"), node, node),
        st.tuples(st.just("set_sign"), node, node, sign),
        st.tuples(st.just("add_node"), node),
        st.tuples(st.just("snapshot")),
    )
    ops = draw(st.lists(op, max_size=30))
    return num_nodes, edges, ops


class TestChurnBitIdentity:
    @SLOW_OK
    @given(churn_scenarios())
    def test_arbitrary_interleavings_match_dict_backend(self, scenario):
        num_nodes, edges, ops = scenario
        reference, facade = build_pair(num_nodes, edges)
        base_generation = reference.generation
        assert facade.generation == base_generation
        for op in ops:
            dict_outcome = apply_op(reference, op)
            facade_outcome = apply_op(facade, op)
            assert facade_outcome == dict_outcome
            assert facade.generation == reference.generation
            assert not facade.materialised
        # Counters and the full query surface agree.
        assert len(facade) == len(reference)
        assert facade.nodes() == reference.nodes()
        assert facade.number_of_edges() == reference.number_of_edges()
        assert facade.number_of_positive_edges() == reference.number_of_positive_edges()
        for node in reference.nodes():
            assert facade.degree(node) == reference.degree(node)
            assert list(facade.neighbors(node)) == list(reference.neighbors(node))
            assert list(facade.signed_neighbors(node)) == list(
                reference.signed_neighbors(node)
            )
        assert [
            (e.u, e.v, e.sign) for e in facade.edges()
        ] == [(e.u, e.v, e.sign) for e in reference.edges()]
        # Dirty-tracking and component invalidation agree from any sync point.
        assert facade.touched_nodes_since(base_generation) == (
            reference.touched_nodes_since(base_generation)
        )
        assert facade.affected_nodes_since(base_generation) == (
            reference.affected_nodes_since(base_generation)
        )
        # Final snapshots are bit-identical; taking them stays dict-free.
        assert_planes_equal(facade.csr_view(), reference.csr_view())
        assert not facade.materialised


class TestChurnCacheSurvival:
    def _scripted_pair(self, seed=5, num_nodes=24, num_edges=60):
        rng = random.Random(seed)
        edges = [
            (rng.randrange(num_nodes), rng.randrange(num_nodes), rng.choice((-1, 1)))
            for _ in range(num_edges)
        ]
        return build_pair(num_nodes, edges)

    def _scripted_churn(self, graph, seed=9, events=12):
        rng = random.Random(seed)
        nodes = graph.nodes()
        for _ in range(events):
            roll = rng.random()
            u, v = rng.sample(nodes, 2)
            if roll < 0.45:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v, rng.choice((-1, 1)))
            elif roll < 0.75:
                if graph.has_edge(u, v):
                    graph.remove_edge(u, v)
            else:
                if graph.has_edge(u, v):
                    graph.set_sign(u, v, -graph.sign(u, v))

    def test_snapshot_cache_and_index_identity_survive_churn(self):
        reference, facade = self._scripted_pair()
        first = facade.csr_view()
        assert facade.csr_view() is first  # generation-cached
        self._scripted_churn(facade)
        second = facade.csr_view()
        assert second is not first
        assert second.generation == facade.generation
        # Edge-only churn keeps the node set: the patched snapshot shares the
        # node-list identity, so dense-id caches survive (shares_index_with).
        assert second.shares_index_with(first)
        assert facade.csr_view() is second
        assert not facade.materialised

    @pytest.mark.parametrize("name", RELATIONS)
    def test_relations_identical_after_dict_free_churn(self, name):
        reference, facade = self._scripted_pair(seed=7)
        kwargs = {"max_expansions": 2_000} if name == "SBPH" else {}
        live = make_relation(name, facade, **kwargs)
        probe = reference.nodes()[0]
        set(live.compatible_with(probe))  # warm the generational caches
        self._scripted_churn(facade, seed=11)
        self._scripted_churn(reference, seed=11)
        cold = make_relation(name, reference, **kwargs)
        for node in reference.nodes():
            assert set(live.compatible_with(node)) == set(cold.compatible_with(node))
        assert not facade.materialised

    def test_copy_is_dict_free_and_equal(self):
        reference, facade = self._scripted_pair(seed=3)
        self._scripted_churn(facade, seed=4)
        self._scripted_churn(reference, seed=4)
        clone = facade.copy()
        assert isinstance(clone, CSRBackedSignedGraph)
        assert not facade.materialised
        assert not clone.materialised
        assert clone.nodes() == reference.nodes()
        assert_planes_equal(clone.csr_view(), reference.csr_view())

    def test_delta_headroom_collapse_never_overflows(self):
        # Force the headroom path with a tiny delta budget: long churn runs
        # must keep snapshotting early instead of overflowing (overflow would
        # drop events the facade cannot recover without a dict backend).
        from repro.signed.delta import GraphDelta

        reference, facade = self._scripted_pair(seed=13)
        facade._delta = GraphDelta(max_events=16)
        rng = random.Random(21)
        nodes = facade.nodes()
        for _ in range(200):
            u, v = rng.sample(nodes, 2)
            if facade.has_edge(u, v):
                facade.remove_edge(u, v)
                reference.remove_edge(u, v)
            else:
                sign = rng.choice((-1, 1))
                facade.add_edge(u, v, sign)
                reference.add_edge(u, v, sign)
        assert not facade.materialised
        assert not facade._delta.overflowed
        assert facade.generation == reference.generation
        assert_planes_equal(
            facade.csr_view(), CSRSignedGraph.from_signed_graph(reference)
        )


def test_as_signed_graph_passthrough_for_mutated_facade():
    reference, facade = TestChurnCacheSurvival()._scripted_pair(seed=2)
    if not facade.has_edge(0, 1):
        facade.add_edge(0, 1, 1)
    assert as_signed_graph(facade) is facade
