"""Tests for networkx conversion, unsigned projections, and graph I/O."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import DatasetError, InvalidSignError
from repro.signed import (
    NEGATIVE,
    POSITIVE,
    SignedGraph,
    from_networkx,
    positive_subgraph,
    to_networkx,
    unsigned_copy,
)
from repro.signed.convert import map_nodes
from repro.signed.io import (
    graph_from_json_dict,
    graph_to_json_dict,
    parse_edge_list,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)


class TestNetworkxConversion:
    def test_round_trip(self, two_factions):
        nx_graph = to_networkx(two_factions)
        back = from_networkx(nx_graph)
        assert back == two_factions

    def test_sign_attribute_preserved(self, line_graph):
        nx_graph = to_networkx(line_graph)
        assert nx_graph.edges[1, 2]["sign"] == NEGATIVE

    def test_from_networkx_missing_sign_raises(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1)
        with pytest.raises(InvalidSignError):
            from_networkx(nx_graph)

    def test_from_networkx_default_sign(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1)
        graph = from_networkx(nx_graph, default_sign=POSITIVE)
        assert graph.sign(0, 1) == POSITIVE

    def test_from_networkx_rejects_directed(self):
        with pytest.raises(ValueError):
            from_networkx(nx.DiGraph())

    def test_self_loops_dropped(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0, sign=POSITIVE)
        nx_graph.add_edge(0, 1, sign=NEGATIVE)
        graph = from_networkx(nx_graph)
        assert graph.number_of_edges() == 1


class TestProjections:
    def test_unsigned_copy_keeps_all_edges(self, two_factions):
        projected = unsigned_copy(two_factions)
        assert projected.number_of_edges() == two_factions.number_of_edges()
        assert projected.number_of_nodes() == two_factions.number_of_nodes()

    def test_positive_subgraph_drops_negative_edges(self, two_factions):
        projected = positive_subgraph(two_factions)
        assert projected.number_of_edges() == two_factions.number_of_positive_edges()
        assert projected.number_of_nodes() == two_factions.number_of_nodes()
        assert not projected.has_edge(2, 3)

    def test_map_nodes(self, line_graph):
        mapped = map_nodes(line_graph, lambda node: f"n{node}")
        assert mapped.has_edge("n0", "n1")
        assert mapped.sign("n1", "n2") == NEGATIVE


class TestEdgeListIO:
    def test_parse_basic(self):
        graph = parse_edge_list(["# comment", "0 1 1", "1 2 -1", "", "2 3 +1"])
        assert graph.number_of_edges() == 3
        assert graph.sign(1, 2) == NEGATIVE

    def test_parse_comma_separated_and_symbols(self):
        graph = parse_edge_list(["a,b,+", "b,c,-"])
        assert graph.sign("a", "b") == POSITIVE
        assert graph.sign("b", "c") == NEGATIVE

    def test_parse_skips_self_loops(self):
        graph = parse_edge_list(["0 0 1", "0 1 -1"])
        assert graph.number_of_edges() == 1

    def test_parse_malformed_line_raises(self):
        with pytest.raises(DatasetError):
            parse_edge_list(["0 1"])

    def test_parse_invalid_sign_raises(self):
        with pytest.raises(InvalidSignError):
            parse_edge_list(["0 1 5"])

    def test_conflicting_reciprocal_edges_keep_first(self):
        graph = parse_edge_list(["0 1 1", "1 0 -1"], directed_to_undirected="keep_first")
        assert graph.sign(0, 1) == POSITIVE

    def test_conflicting_reciprocal_edges_negative_wins(self):
        graph = parse_edge_list(["0 1 1", "1 0 -1"], directed_to_undirected="negative_wins")
        assert graph.sign(0, 1) == NEGATIVE

    def test_conflicting_reciprocal_edges_error_policy(self):
        with pytest.raises(DatasetError):
            parse_edge_list(["0 1 1", "1 0 -1"], directed_to_undirected="error")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            parse_edge_list(["0 1 1"], directed_to_undirected="bogus")

    def test_write_and_read_round_trip(self, tmp_path, two_factions):
        path = tmp_path / "graph.edges"
        write_edge_list(two_factions, path)
        loaded = read_edge_list(path)
        assert loaded == two_factions

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_edge_list(tmp_path / "nope.edges")


class TestJsonIO:
    def test_json_dict_round_trip_with_isolated_nodes(self):
        graph = SignedGraph.from_edges([(0, 1, +1)], nodes=[7])
        payload = graph_to_json_dict(graph)
        restored = graph_from_json_dict(payload)
        assert restored == graph
        assert restored.has_node(7)

    def test_json_file_round_trip(self, tmp_path, line_graph):
        path = tmp_path / "graph.json"
        write_json(line_graph, path)
        assert read_json(path) == line_graph

    def test_json_missing_edges_key_raises(self):
        with pytest.raises(DatasetError):
            graph_from_json_dict({"nodes": [1, 2]})

    def test_read_json_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_json(tmp_path / "missing.json")
