"""Equivalence suite for the batched CompatibilityEngine stack.

Three layers are pinned against their legacy per-pair / per-source
counterparts, bit for bit:

* the lockstep multi-source CSR kernels against per-source runs and the dict
  reference implementations;
* the SBPH (node, sign)-state CSR search against the per-edge dict search;
* the full team-formation algorithms (LCMD / LCMC / RFMD / RFMC) through the
  engine against the legacy per-pair path, on random, synthetic-topology and
  loader-built graphs, under every relation.
"""

from __future__ import annotations

import random
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.compatibility import (
    CompatibilityEngine,
    DistanceOracle,
    make_relation,
    source_sampled_pair_statistics,
)
from repro.compatibility.shortest_path import (
    CSR_AUTO_LEVEL_THRESHOLD,
    CSR_AUTO_THRESHOLD,
)
from repro.datasets import load_snap_dataset, synthetic_signed_network, toy_dataset
from repro.signed import SignedGraph, signed_bfs
from repro.signed.csr import (
    balanced_heuristic_search_csr,
    multi_source_shortest_path_lengths_csr,
    multi_source_signed_bfs,
    signed_bfs_csr,
    CSRLengths,
)
from repro.signed.generators import planted_factions_graph
from repro.signed.io import write_edge_list
from repro.signed.paths import BalancedPathSearch, shortest_path_lengths
from repro.skills.generators import assign_skills_zipf
from repro.skills.task import random_tasks
from repro.teams import TeamFormationProblem, run_algorithm
from repro.utils.lru import (
    APPROX_BYTES_PER_NODE,
    DEFAULT_CACHE_BUDGET_BYTES,
    LRUCache,
    fetch_batched,
    scaled_cache_size,
)

ALGORITHMS = ("LCMD", "LCMC", "RFMD", "RFMC")
RELATIONS = ("DPE", "SPA", "SPM", "SPO", "SBPH", "NNE")


def _relation_pair(name, graph, **kwargs):
    """Two fresh instances of the same relation (engine vs legacy runs)."""
    return make_relation(name, graph, **kwargs), make_relation(name, graph, **kwargs)


def _assert_algorithms_match(graph, skills, tasks, relation_name, **relation_kwargs):
    """Engine-backed and legacy problems produce identical teams and costs.

    One relation instance per side is reused across algorithms and tasks —
    exactly how the experiment harness shares caches — so the comparison also
    covers cache-warm queries.
    """
    engine_rel, legacy_rel = _relation_pair(relation_name, graph, **relation_kwargs)
    engine = CompatibilityEngine(engine_rel)
    legacy = CompatibilityEngine(legacy_rel, batched=False)
    for task in tasks:
        for algorithm in ALGORITHMS:
            engine_problem = TeamFormationProblem(
                graph, skills, engine_rel, task, engine=engine
            )
            legacy_problem = TeamFormationProblem(
                graph, skills, legacy_rel, task, engine=legacy
            )
            got = run_algorithm(algorithm, engine_problem, max_seeds=6, seed=13)
            expected = run_algorithm(algorithm, legacy_problem, max_seeds=6, seed=13)
            assert got.team == expected.team, (relation_name, algorithm, task)
            assert got.cost == expected.cost, (relation_name, algorithm, task)
            assert got.seeds_tried == expected.seeds_tried
            assert got.candidates_completed == expected.candidates_completed


class TestTeamFormationEquivalence:
    """LCMD/LCMC/RFMD/RFMC: identical outcomes through the engine."""

    @pytest.mark.parametrize("relation_name", RELATIONS)
    def test_random_graph(self, relation_name):
        graph, _ = planted_factions_graph(
            60, average_degree=4.0, sign_noise=0.15, seed=21
        )
        skills = assign_skills_zipf(
            graph.nodes(), num_skills=12, skills_per_user=2.5, seed=22
        )
        tasks = random_tasks(skills, size=3, count=2, seed=23)
        _assert_algorithms_match(graph, skills, tasks, relation_name)

    def test_random_graph_exact_sbp(self):
        # The exact SBP enumeration is exponential; keep the graph tiny and
        # cap the expansion budget so the equivalence check stays fast.
        graph, _ = planted_factions_graph(
            24, average_degree=3.0, sign_noise=0.15, seed=25
        )
        skills = assign_skills_zipf(
            graph.nodes(), num_skills=6, skills_per_user=2.0, seed=26
        )
        tasks = random_tasks(skills, size=2, count=1, seed=27)
        _assert_algorithms_match(
            graph, skills, tasks, "SBP", max_expansions=50_000
        )

    @pytest.mark.parametrize("relation_name", RELATIONS)
    def test_synthetic_topology_graph(self, relation_name):
        # The hand-crafted dataset plus a ladder-like topology: structured
        # graphs whose compatible sets differ sharply from random ones.
        toy = toy_dataset()
        tasks = random_tasks(toy.skills, size=3, count=2, seed=31)
        _assert_algorithms_match(toy.graph, toy.skills, tasks, relation_name)

    @pytest.mark.parametrize("relation_name", RELATIONS)
    def test_loader_built_graph(self, tmp_path, relation_name):
        graph, _ = planted_factions_graph(
            48, average_degree=4.0, sign_noise=0.2, seed=41
        )
        edges_path = tmp_path / "net.edges"
        write_edge_list(graph, edges_path)
        dataset = load_snap_dataset(
            "loader-built", edges_path, num_synthetic_skills=10, seed=42
        )
        tasks = random_tasks(dataset.skills, size=3, count=2, seed=43)
        _assert_algorithms_match(dataset.graph, dataset.skills, tasks, relation_name)

    @pytest.mark.parametrize("relation_name", ("SPA", "SPM", "SPO", "SBPH"))
    def test_forced_csr_backend(self, relation_name):
        # backend="csr" exercises the vectorised candidate filter and the
        # CSR heuristic search even below the auto threshold.
        graph, _ = planted_factions_graph(
            70, average_degree=4.5, sign_noise=0.2, seed=51
        )
        skills = assign_skills_zipf(
            graph.nodes(), num_skills=10, skills_per_user=2.5, seed=52
        )
        tasks = random_tasks(skills, size=3, count=2, seed=53)
        _assert_algorithms_match(graph, skills, tasks, relation_name, backend="csr")


class TestCompatibleFromMany:
    """The engine's one-to-many team filter equals the per-pair loop."""

    @pytest.mark.parametrize("relation_name", RELATIONS)
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_matches_per_pair_loop(self, relation_name, seed):
        rng = random.Random(seed)
        graph, _ = planted_factions_graph(
            50, average_degree=4.0, sign_noise=0.2, seed=seed
        )
        kwargs = (
            {"backend": "csr"}
            if relation_name in ("SPA", "SPM", "SPO", "SBPH")
            else {}
        )
        relation = make_relation(relation_name, graph, **kwargs)
        engine = CompatibilityEngine(relation)
        legacy = CompatibilityEngine(relation, oracle=engine.oracle, batched=False)
        nodes = graph.nodes()
        for _ in range(5):
            team = rng.sample(nodes, rng.randint(1, 4))
            candidates = rng.sample(nodes, rng.randint(1, 20))
            assert engine.compatible_from_many(candidates, team) == (
                legacy.compatible_from_many(candidates, team)
            )

    def test_empty_team_returns_all_candidates(self, toy):
        relation = make_relation("SPO", toy.graph)
        engine = CompatibilityEngine(relation)
        candidates = toy.graph.nodes()[:5]
        assert engine.compatible_from_many(candidates, []) == frozenset(candidates)

    def test_team_members_excluded(self, toy):
        relation = make_relation("NNE", toy.graph)
        engine = CompatibilityEngine(relation)
        nodes = toy.graph.nodes()
        result = engine.compatible_from_many(nodes[:4], [nodes[0]])
        assert nodes[0] not in result


class TestDistancesToTeamMany:
    """Batched distance-to-team equals the per-candidate oracle loop."""

    @pytest.mark.parametrize(
        "relation_name,kwargs",
        [
            ("SPO", {"backend": "csr"}),
            ("SPO", {"backend": "dict"}),
            ("NNE", {}),
            ("SBPH", {}),
        ],
    )
    def test_matches_distance_to_set(self, relation_name, kwargs):
        rng = random.Random(7)
        graph, _ = planted_factions_graph(
            40, average_degree=4.0, sign_noise=0.2, seed=7
        )
        relation = make_relation(relation_name, graph, **kwargs)
        engine = CompatibilityEngine(relation)
        nodes = graph.nodes()
        for _ in range(4):
            team = rng.sample(nodes, rng.randint(1, 3))
            candidates = rng.sample(nodes, 10)
            batched = engine.distances_to_team_many(candidates, team)
            expected = [engine.oracle.distance_to_set(c, team) for c in candidates]
            assert batched == expected


class TestBatchedKernels:
    """Lockstep multi-source kernels are bit-identical to per-source runs."""

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_multi_source_signed_bfs_matches_single_source(self, seed):
        graph, _ = planted_factions_graph(
            45, average_degree=4.0, sign_noise=0.15, seed=seed
        )
        csr = graph.csr_view()
        rng = random.Random(seed)
        sources = rng.sample(graph.nodes(), 9)
        for chunk_size in (1, 4, 64):
            batched = multi_source_signed_bfs(csr, sources, chunk_size=chunk_size)
            for source, result in zip(sources, batched):
                single = signed_bfs_csr(csr, source)
                assert (result.lengths_array == single.lengths_array).all()
                assert (result.positive_array == single.positive_array).all()
                assert (result.negative_array == single.negative_array).all()
                reference = signed_bfs(graph, source)
                converted = result.to_signed_bfs_result()
                assert converted.lengths == reference.lengths
                assert converted.positive_counts == reference.positive_counts
                assert converted.negative_counts == reference.negative_counts

    def test_multi_source_signed_bfs_empty_and_duplicates(self, two_factions):
        csr = two_factions.csr_view()
        assert multi_source_signed_bfs(csr, []) == []
        results = multi_source_signed_bfs(csr, [0, 0, 3])
        assert results[0].source == results[1].source == 0
        assert (results[0].lengths_array == results[1].lengths_array).all()

    @pytest.mark.parametrize("seed", (0, 1))
    def test_multi_source_plain_lengths_match_dict(self, seed):
        graph, _ = planted_factions_graph(
            45, average_degree=4.0, sign_noise=0.15, seed=seed
        )
        csr = graph.csr_view()
        sources = graph.nodes()[:7]
        arrays = multi_source_shortest_path_lengths_csr(csr, sources, chunk_size=3)
        for source, lengths in zip(sources, arrays):
            view = CSRLengths(csr, lengths)
            assert dict(view.items()) == shortest_path_lengths(graph, source)

    def test_chunk_size_must_be_positive(self, two_factions):
        csr = two_factions.csr_view()
        with pytest.raises(ValueError):
            multi_source_signed_bfs(csr, [0], chunk_size=0)
        with pytest.raises(ValueError):
            multi_source_shortest_path_lengths_csr(csr, [0], chunk_size=-1)


class TestSBPHCSRSearch:
    """The (node, sign)-state CSR search is bit-identical to the dict search."""

    def _assert_identical(self, graph, sources=None, max_length=None):
        search = BalancedPathSearch(graph, max_length=max_length)
        csr = graph.csr_view()
        for source in sources if sources is not None else graph.nodes():
            expected = search.search_heuristic(source)
            got = balanced_heuristic_search_csr(csr, source, max_length=max_length)
            assert got.positive_lengths == expected.positive_lengths, source
            assert got.negative_lengths == expected.negative_lengths, source
            assert got.exact == expected.exact
            assert got.max_length == expected.max_length

    def test_figure_1b(self, figure_1b):
        self._assert_identical(figure_1b)

    def test_prefix_trap(self, prefix_trap_graph):
        self._assert_identical(prefix_trap_graph)

    def test_two_factions(self, two_factions):
        self._assert_identical(two_factions)

    def test_line_graph(self, line_graph):
        self._assert_identical(line_graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        graph, _ = planted_factions_graph(
            rng.randint(8, 50), average_degree=3.5, sign_noise=0.25, seed=seed
        )
        self._assert_identical(graph, sources=rng.sample(graph.nodes(), 6))

    @pytest.mark.parametrize("max_length", (0, 1, 2, 4))
    def test_with_length_cap(self, prefix_trap_graph, max_length):
        self._assert_identical(prefix_trap_graph, max_length=max_length)

    def test_negative_max_length_rejected(self, two_factions):
        with pytest.raises(ValueError):
            balanced_heuristic_search_csr(two_factions.csr_view(), 0, max_length=-1)

    @pytest.mark.parametrize("seed", (3, 4))
    def test_sbph_relation_backends_agree(self, seed):
        graph, _ = planted_factions_graph(
            40, average_degree=4.0, sign_noise=0.2, seed=seed
        )
        dict_rel = make_relation("SBPH", graph, backend="dict")
        csr_rel = make_relation("SBPH", graph, backend="csr")
        for node in graph.nodes():
            assert dict_rel.compatible_with(node) == csr_rel.compatible_with(node)
        nodes = graph.nodes()
        rng = random.Random(seed)
        for _ in range(20):
            u, v = rng.sample(nodes, 2)
            assert dict_rel.positive_balanced_distance(
                u, v
            ) == csr_rel.positive_balanced_distance(u, v)


class TestDiameterAdaptiveAuto:
    """backend="auto" counts probe BFS levels and falls back on high diameter."""

    def _path_graph(self, length):
        return SignedGraph.from_edges(
            [(i, i + 1, 1 if i % 3 else -1) for i in range(length)]
        )

    def test_path_graph_prefers_dict(self):
        graph = self._path_graph(CSR_AUTO_THRESHOLD + 200)
        relation = make_relation("SPO", graph)
        assert relation._use_csr() is False
        assert relation._auto_prefer_dict is True

    def test_low_diameter_graph_prefers_csr(self):
        graph, _ = synthetic_signed_network(
            CSR_AUTO_THRESHOLD + 200, average_degree=6.0, negative_fraction=0.2, seed=5
        )
        relation = make_relation("SPO", graph)
        assert relation._use_csr() is True
        assert relation._auto_prefer_dict is False

    def test_explicit_backends_skip_probe(self):
        graph = self._path_graph(CSR_AUTO_THRESHOLD + 100)
        assert make_relation("SPO", graph, backend="dict")._use_csr() is False
        assert make_relation("SPO", graph, backend="csr")._use_csr() is True

    def test_probe_decision_reset_by_clear_cache(self):
        graph = self._path_graph(CSR_AUTO_THRESHOLD + 100)
        relation = make_relation("SPO", graph)
        relation._use_csr()
        assert relation._auto_prefer_dict is not None
        relation.clear_cache()
        assert relation._auto_prefer_dict is None

    def test_small_graph_stays_dict_without_probe(self, two_factions):
        relation = make_relation("SPO", two_factions)
        assert relation._use_csr() is False
        assert relation._auto_prefer_dict is None

    def test_probe_result_lands_in_cache(self):
        graph, _ = synthetic_signed_network(
            CSR_AUTO_THRESHOLD + 50, average_degree=5.0, negative_fraction=0.2, seed=6
        )
        relation = make_relation("SPO", graph)
        relation._use_csr()
        probe_source = next(iter(graph))
        assert probe_source in relation._bfs_cache

    def test_threshold_is_reasonable(self):
        # Guard against accidental edits: the threshold separates social
        # networks (diameter < 20) from paths/grids (hundreds of levels).
        assert 16 <= CSR_AUTO_LEVEL_THRESHOLD <= 128

    def test_isolated_first_node_does_not_fool_probe(self):
        # The first inserted node is a leaf of a 2-node appendix; its
        # component says nothing about the dominant path component, so the
        # probe must keep sampling components before committing to CSR.
        graph = SignedGraph()
        graph.add_edge("appendix-a", "appendix-b", 1)
        for i in range(CSR_AUTO_THRESHOLD + 200):
            graph.add_edge(i, i + 1, 1)
        relation = make_relation("SPO", graph)
        assert relation._use_csr() is False
        assert relation._auto_prefer_dict is True


class TestByteAwareCacheBounds:
    """Default cache sizes scale with graph size; byte estimates are exposed."""

    def test_scaled_cache_size_small_graph_keeps_ceiling(self):
        assert scaled_cache_size(2048, 100) == 2048

    def test_scaled_cache_size_huge_graph_shrinks(self):
        bound = scaled_cache_size(2048, 3_000_000)
        assert bound < 2048
        assert bound * 3_000_000 * APPROX_BYTES_PER_NODE <= (
            DEFAULT_CACHE_BUDGET_BYTES * 2  # minimum-entries clamp may exceed budget
        ) or bound == 4
        assert bound >= 4

    def test_scaled_cache_size_none_passthrough(self):
        assert scaled_cache_size(None, 10**9) is None

    def test_lru_exposes_byte_estimate(self):
        cache = LRUCache(maxsize=4, bytes_per_entry=1000)
        assert cache.approx_bytes == 0
        cache["a"] = 1
        cache["b"] = 2
        assert cache.approx_bytes == 2000
        assert cache.bytes_per_entry == 1000
        assert "approx_bytes=2000" in repr(cache)

    def test_lru_without_hint_has_no_estimate(self):
        cache = LRUCache(maxsize=4)
        assert cache.approx_bytes is None

    def test_relation_default_scales_with_graph(self):
        big = SignedGraph()
        for node in range(2_000_000):
            big.add_node(node)
        relation = make_relation("SPO", big)
        assert relation._bfs_cache.maxsize < 2048
        assert relation._bfs_cache.bytes_per_entry == 2_000_000 * APPROX_BYTES_PER_NODE

    def test_explicit_cache_sizes_pass_through(self, two_factions):
        relation = make_relation("SPO", two_factions, bfs_cache_size=7)
        assert relation._bfs_cache.maxsize == 7
        unbounded = make_relation("SPO", two_factions, bfs_cache_size=None)
        assert unbounded._bfs_cache.maxsize is None

    def test_invalid_cache_size_string_rejected(self, two_factions):
        with pytest.raises(ValueError):
            make_relation("SPO", two_factions, bfs_cache_size="huge")

    def test_fetch_batched_single_compute_call_and_write_through(self):
        cache = LRUCache(maxsize=2)
        cache["a"] = 1
        calls = []

        def compute(missing):
            calls.append(list(missing))
            return [ord(key) for key in missing]

        values = fetch_batched(cache, ["a", "b", "b", "c", "a"], compute)
        assert values == [1, ord("b"), ord("b"), ord("c"), 1]
        assert calls == [["b", "c"]]  # one call, deduplicated
        assert "c" in cache  # written through (LRU may evict earlier keys)

    def test_fetch_batched_batch_larger_than_cache(self):
        cache = LRUCache(maxsize=1)
        keys = list("abcdef")
        computed = []

        def compute(missing):
            computed.extend(missing)
            return [key.upper() for key in missing]

        values = fetch_batched(cache, keys, compute)
        assert values == [key.upper() for key in keys]
        assert computed == keys  # each computed exactly once despite eviction


class TestEngineContracts:
    """Engine construction and statistics routing."""

    def test_engine_rejects_foreign_oracle(self, toy):
        relation = make_relation("SPO", toy.graph)
        other = make_relation("SPM", toy.graph)
        with pytest.raises(ValueError):
            CompatibilityEngine(relation, oracle=DistanceOracle(other))

    def test_problem_rejects_foreign_engine(self, toy):
        from repro.skills.task import Task

        relation = make_relation("SPO", toy.graph)
        other = make_relation("SPM", toy.graph)
        with pytest.raises(ValueError):
            TeamFormationProblem(
                toy.graph,
                toy.skills,
                relation,
                Task(["python"]),
                engine=CompatibilityEngine(other),
            )

    def test_problem_builds_engine_sharing_oracle(self, toy):
        from repro.skills.task import Task

        relation = make_relation("SPO", toy.graph)
        problem = TeamFormationProblem(toy.graph, toy.skills, relation, Task(["python"]))
        assert problem.engine.relation is relation
        assert problem.engine.oracle is problem.oracle

    def test_source_sampled_statistics_via_engine(self):
        graph, _ = planted_factions_graph(
            40, average_degree=4.0, sign_noise=0.2, seed=9
        )
        relation = make_relation("SPO", graph, backend="csr")
        engine = CompatibilityEngine(relation)
        direct = source_sampled_pair_statistics(relation, 8, seed=3)
        routed = source_sampled_pair_statistics(relation, 8, seed=3, engine=engine)
        assert direct == routed

    def test_source_sampled_statistics_rejects_foreign_engine(self, toy):
        relation = make_relation("SPO", toy.graph)
        other = make_relation("SPM", toy.graph)
        with pytest.raises(ValueError):
            source_sampled_pair_statistics(
                relation, 4, engine=CompatibilityEngine(other)
            )

    def test_clear_caches_refreshes_distances_after_mutation(self):
        graph = SignedGraph.from_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)])
        relation = make_relation("SPO", graph)
        engine = CompatibilityEngine(relation)
        assert engine.distance(0, 4) == 4.0  # caches the BFS map from 0
        graph.add_edge(0, 4, 1)
        engine.clear_caches()  # must drop the oracle's distance maps too
        assert engine.distance(0, 4) == 1.0

    def test_compatible_from_many_survives_stale_snapshot(self):
        # A mutation without clear_cache leaves cached BFS results bound to an
        # older CSR snapshot; the filter must fall back to per-pair checks on
        # the result's own index instead of mis-indexing the new snapshot.
        graph, _ = planted_factions_graph(
            30, average_degree=4.0, sign_noise=0.2, seed=61
        )
        relation = make_relation("SPO", graph, backend="csr")
        engine = CompatibilityEngine(relation)
        nodes = graph.nodes()
        team = nodes[:2]
        first = engine.compatible_from_many(nodes[2:12], team)
        new_node = max(n for n in nodes if isinstance(n, int)) + 1
        graph.add_edge(nodes[0], new_node, 1)
        # Same query, stale per-member caches: must not raise, and must agree
        # with the legacy per-pair loop over the same (stale) relation caches.
        again = engine.compatible_from_many(nodes[2:12], team)
        legacy = frozenset(
            c
            for c in nodes[2:12]
            if c not in team
            and all(relation.are_compatible(m, c) for m in team)
        )
        assert again == legacy
        engine.clear_caches()
        assert engine.compatible_from_many(nodes[2:12], team) is not None
        assert first is not None


class TestMostCompatibleUnderTinyCache:
    """The batched compatible-set prefetch must not depend on cache capacity."""

    @pytest.mark.parametrize("relation_name", ("SPO", "SBPH", "NNE"))
    def test_selection_identical_with_evicting_cache(self, relation_name):
        graph, _ = planted_factions_graph(
            50, average_degree=4.0, sign_noise=0.2, seed=71
        )
        skills = assign_skills_zipf(
            graph.nodes(), num_skills=6, skills_per_user=2.5, seed=72
        )
        tasks = random_tasks(skills, size=3, count=2, seed=73)
        # compatible_cache_size=1 models the byte-aware "auto" bound on a
        # huge graph: far smaller than the candidate list, so scoring must
        # use the batch's returned sets, not cache re-lookups.
        tiny = make_relation(relation_name, graph, compatible_cache_size=1)
        roomy = make_relation(relation_name, graph)
        for task in tasks:
            tiny_problem = TeamFormationProblem(graph, skills, tiny, task)
            roomy_problem = TeamFormationProblem(graph, skills, roomy, task)
            got = run_algorithm("LCMC", tiny_problem, max_seeds=4, seed=17)
            expected = run_algorithm("LCMC", roomy_problem, max_seeds=4, seed=17)
            assert got.team == expected.team
            assert got.cost == expected.cost


NUMPY_FREE_SCRIPT = textwrap.dedent(
    """
    import sys, warnings
    sys.modules["numpy"] = None  # simulate a numpy-free install
    import repro  # must import cleanly without numpy
    from repro.signed.graph import SignedGraph
    from repro.compatibility import CompatibilityEngine, make_relation

    graph = SignedGraph.from_edges(
        [(i, (i + 1) % 40, 1 if i % 4 else -1) for i in range(40)]
    )
    relation = make_relation("SPO", graph, backend="dict")
    assert relation.compatibility_degree(0) >= 0

    big = SignedGraph.from_edges(
        [(i, (i + 1) % 1500, 1) for i in range(1500)]
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        auto = make_relation("SPO", big)
        assert auto._use_csr() is False
        assert any("numpy" in str(w.message) for w in caught), caught

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sbph = make_relation("SBPH", big)
        assert sbph._use_csr_search() is False
        assert any("numpy" in str(w.message) for w in caught), caught

    engine = CompatibilityEngine(relation)
    team = [graph.nodes()[0]]
    filtered = engine.compatible_from_many(graph.nodes()[:10], team)
    assert all(relation.are_compatible(team[0], c) for c in filtered)

    try:
        make_relation("SPO", graph, backend="csr")
    except ImportError as exc:
        assert "numpy" in str(exc)
    else:
        raise AssertionError("backend='csr' should raise without numpy")
    print("numpy-free-ok")
    """
)


def test_numpy_free_degradation(tmp_path):
    """`import repro`, the dict backend and backend="auto" work without numpy."""
    src = Path(__file__).resolve().parent.parent / "src"
    completed = subprocess.run(
        [sys.executable, "-c", NUMPY_FREE_SCRIPT],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "numpy-free-ok" in completed.stdout
