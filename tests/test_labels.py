"""Tests for the distance-label index (:mod:`repro.signed.labels`).

The load-bearing guarantees, each checked here and property-tested below:

* **exact mode is exact** — 2-hop hub labels answer every pair bit-identically
  to the BFS backend, including unreachable pairs;
* **landmark mode never lies** — sketch values are upper bounds, and every
  entry flagged ``exact`` equals the true distance (the oracle only serves
  flagged entries without a BFS);
* **patching is invisible** — an index delta-refreshed through churn is
  structurally identical to one rebuilt from scratch;
* the oracle's ``distance_index`` policy modes return the same floats as the
  plain BFS oracle in every case, and degrade (with a warning) rather than
  fail when numpy is missing.
"""

from __future__ import annotations

import itertools
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compatibility import DistanceOracle, make_relation
from repro.datasets import synthetic_signed_network
from repro.exec import ExecutionPolicy, executor_for, shutdown_pools
from repro.signed import NEGATIVE, POSITIVE, SignedGraph
from repro.signed.paths import INFINITY

np = pytest.importorskip("numpy")

from repro.signed.csr import (  # noqa: E402  (needs numpy)
    UNREACHABLE,
    CSRSignedGraph,
    shortest_path_lengths_dense_batch,
)
from repro.signed.labels import (  # noqa: E402
    DEFAULT_NUM_LANDMARKS,
    LabelIndex,
    build_label_index,
    hub_order_for,
    labels_equal,
    refresh_label_index,
)
from repro.signed.store import load_labels, save_snapshot  # noqa: E402


SLOW_OK = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def signed_graphs(draw, min_nodes=2, max_nodes=9):
    """Small random signed graphs (same shape as test_property_based's)."""
    num_nodes = draw(st.integers(min_nodes, max_nodes))
    nodes = list(range(num_nodes))
    possible_edges = list(itertools.combinations(nodes, 2))
    chosen = (
        draw(
            st.lists(
                st.sampled_from(possible_edges),
                unique=True,
                max_size=len(possible_edges),
            )
        )
        if possible_edges
        else []
    )
    signs = draw(
        st.lists(
            st.sampled_from([POSITIVE, NEGATIVE]),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    return SignedGraph.from_edges(
        [(u, v, sign) for (u, v), sign in zip(chosen, signs)], nodes=nodes
    )


def bfs_matrix(csr: CSRSignedGraph):
    """The full sign-agnostic distance matrix via the BFS reference kernel."""
    return shortest_path_lengths_dense_batch(csr, list(range(csr.number_of_nodes())))


def assert_exact_index_matches_bfs(index: LabelIndex, csr: CSRSignedGraph) -> None:
    reference = bfs_matrix(csr)
    n = csr.number_of_nodes()
    ids = np.arange(n, dtype=np.int64)
    for source in range(n):
        assert np.array_equal(index.batch_query_from(source, ids), reference[source])
    # The single-pair spelling agrees with the batch.
    for u in range(min(n, 5)):
        for v in range(n):
            assert index.query(u, v) == int(reference[u][v])


def multi_component_graph(num_cliques=6, clique_size=5):
    """Several disjoint 5-cliques: churn inside one stays component-local."""
    edges = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j, POSITIVE if (i + j) % 2 else NEGATIVE))
    return SignedGraph.from_edges(edges)


# ------------------------------------------------------------------- building


class TestBuildExact:
    def test_matches_bfs_on_synthetic_graph(self):
        graph, _ = synthetic_signed_network(
            300, average_degree=5.0, negative_fraction=0.3, seed=7
        )
        csr = graph.csr_view()
        index = build_label_index(csr, mode="exact")
        assert index.mode == "exact"
        assert index.generation == csr.generation
        assert_exact_index_matches_bfs(index, csr)

    def test_auto_resolves_to_exact_when_small(self):
        graph, _ = synthetic_signed_network(
            120, average_degree=4.0, negative_fraction=0.2, seed=3
        )
        index = build_label_index(graph.csr_view(), mode="auto")
        assert index.mode == "exact"
        assert index.requested_mode == "auto"

    def test_exact_mode_raises_when_budget_infeasible(self):
        graph, _ = synthetic_signed_network(
            80, average_degree=4.0, negative_fraction=0.2, seed=1
        )
        with pytest.raises(ValueError, match="label_budget_bytes"):
            build_label_index(graph.csr_view(), mode="exact", budget_bytes=64)

    def test_auto_degrades_to_landmark_on_tight_budget(self):
        graph, _ = synthetic_signed_network(
            200, average_degree=5.0, negative_fraction=0.2, seed=2
        )
        index = build_label_index(graph.csr_view(), mode="auto", budget_bytes=4096)
        assert index.mode == "landmark"
        assert index.nbytes <= 4096

    def test_unknown_mode_rejected(self):
        graph, _ = synthetic_signed_network(
            20, average_degree=3.0, negative_fraction=0.2, seed=0
        )
        with pytest.raises(ValueError, match="mode"):
            build_label_index(graph.csr_view(), mode="bogus")

    def test_hub_order_is_degree_ranked(self):
        graph = SignedGraph.from_edges(
            [(0, 1, +1), (0, 2, +1), (0, 3, -1), (1, 2, +1)], nodes=[0, 1, 2, 3, 4]
        )
        order = hub_order_for(graph.csr_view())
        # Node 0 has degree 3; ties (1, 2) break by dense id; isolated last.
        assert list(order) == [0, 1, 2, 3, 4]


class TestBuildLandmark:
    def test_bounds_are_upper_bounds_and_exact_flags_true(self):
        graph, _ = synthetic_signed_network(
            400, average_degree=5.0, negative_fraction=0.25, seed=11
        )
        csr = graph.csr_view()
        index = build_label_index(csr, mode="landmark")
        assert index.mode == "landmark"
        assert index.num_hubs <= DEFAULT_NUM_LANDMARKS
        reference = bfs_matrix(csr)
        ids = np.arange(csr.number_of_nodes(), dtype=np.int64)
        for source in range(0, csr.number_of_nodes(), 37):
            upper, exact = index.batch_bounds_from(source, ids)
            true = reference[source]
            reachable = true != UNREACHABLE
            # Upper bounds: never below the true distance, UNREACHABLE only
            # when the pair really is disconnected.
            assert (upper[reachable] >= true[reachable]).all()
            assert (upper[~reachable] == UNREACHABLE).all()
            # Every exact-flagged entry is the true value.
            assert np.array_equal(upper[exact], true[exact])

    def test_landmark_sources_answer_exactly(self):
        graph, _ = synthetic_signed_network(
            300, average_degree=5.0, negative_fraction=0.2, seed=13
        )
        csr = graph.csr_view()
        index = build_label_index(csr, mode="landmark")
        ids = np.arange(csr.number_of_nodes(), dtype=np.int64)
        for landmark in np.asarray(index.landmark_ids)[:5]:
            _upper, exact = index.batch_bounds_from(int(landmark), ids)
            assert bool(exact.all())

    @pytest.mark.skipif(
        (__import__("os").cpu_count() or 1) < 2, reason="needs >= 2 CPUs"
    )
    def test_pool_built_rows_bit_identical_to_serial(self):
        graph, _ = synthetic_signed_network(
            600, average_degree=5.0, negative_fraction=0.2, seed=17
        )
        csr = graph.csr_view()
        serial = build_label_index(csr, mode="landmark")
        try:
            pooled = build_label_index(
                csr,
                mode="landmark",
                executor=executor_for(ExecutionPolicy(workers=2)),
            )
        finally:
            shutdown_pools()
        assert labels_equal(serial, pooled)


# --------------------------------------------------------------------- churn


class TestRefresh:
    def test_fresh_index_is_returned_unchanged(self):
        graph, _ = synthetic_signed_network(
            60, average_degree=4.0, negative_fraction=0.2, seed=5
        )
        index = build_label_index(graph.csr_view())
        refreshed, how = refresh_label_index(index, graph)
        assert how == "fresh"
        assert refreshed is index

    @pytest.mark.parametrize("mode", ["exact", "landmark"])
    def test_refresh_matches_rebuild_after_churn(self, mode):
        graph, _ = synthetic_signed_network(
            150, average_degree=4.0, negative_fraction=0.25, seed=9
        )
        rng = np.random.default_rng(42)
        index = build_label_index(graph.csr_view(), mode=mode)
        nodes = graph.nodes()
        for _round in range(6):
            for _ in range(int(rng.integers(1, 10))):
                u, v = rng.choice(len(nodes), size=2, replace=False)
                u, v = nodes[u], nodes[v]
                if graph.has_edge(u, v):
                    graph.remove_edge(u, v)
                else:
                    graph.add_edge(u, v, POSITIVE if rng.random() < 0.7 else NEGATIVE)
            index, how = refresh_label_index(index, graph)
            assert how in ("patched", "rebuilt")
            assert index.generation == graph.generation
            rebuilt = build_label_index(graph.csr_view(), mode=mode)
            assert labels_equal(index, rebuilt)

    @pytest.mark.parametrize("mode", ["exact", "landmark"])
    def test_component_local_churn_patches(self, mode):
        graph = multi_component_graph(num_cliques=8, clique_size=5)
        index = build_label_index(graph.csr_view(), mode=mode)
        # Touch a single clique: the affected sweep stays well under half the
        # node set, so the cheap patch path must be taken — and must still be
        # bit-identical to a rebuild.
        graph.remove_edge(0, 1)
        graph.add_edge(0, 1, NEGATIVE)
        index, how = refresh_label_index(index, graph)
        assert how == "patched"
        assert labels_equal(index, build_label_index(graph.csr_view(), mode=mode))
        if mode == "exact":
            assert_exact_index_matches_bfs(index, graph.csr_view())

    @pytest.mark.parametrize("mode", ["exact", "landmark"])
    def test_connected_graph_flip_only_churn_restamps(self, mode):
        # On a connected graph the affected-component sweep covers everything
        # (affected_nodes_since returns None), so the old refresh could only
        # rebuild.  Sign flips cannot move any distance or degree rank, so a
        # churn window containing nothing else must re-stamp the existing
        # arrays — O(1), sharing storage with the stale index — for *both*
        # modes, and stay bit-identical to a rebuild.
        from repro.datasets.synthetic import synthetic_csr_network

        csr, _ = synthetic_csr_network(400, average_degree=6.0, seed=17)
        graph = csr.to_signed_graph()
        index = build_label_index(graph.csr_view(), mode=mode)
        rng = np.random.default_rng(23)
        nodes = graph.nodes()
        flipped = 0
        while flipped < 10:
            u, v = (nodes[int(i)] for i in rng.choice(len(nodes), 2, replace=False))
            if graph.has_edge(u, v):
                graph.set_sign(u, v, -graph.sign(u, v))
                flipped += 1
        assert graph.affected_nodes_since(index.generation) is None
        refreshed, how = refresh_label_index(index, graph)
        assert how == "patched"
        assert refreshed.generation == graph.generation
        if mode == "exact":
            assert refreshed.label_hubs is index.label_hubs
            assert refreshed.label_dists is index.label_dists
        else:
            assert refreshed.landmark_rows is index.landmark_rows
        assert labels_equal(refreshed, build_label_index(graph.csr_view(), mode=mode))

    def test_connected_graph_topology_churn_stays_exact(self):
        # Topology events on an expander-like connected graph genuinely
        # perturb labels far beyond the mutation sites (degree-tie rank
        # crossings change prune decisions in the true rebuild), so the
        # bounded resweep is free to give up — but whichever path fires,
        # the result must be bit-identical to a rebuild.
        from repro.datasets.synthetic import synthetic_csr_network

        csr, _ = synthetic_csr_network(400, average_degree=6.0, seed=17)
        graph = csr.to_signed_graph()
        index = build_label_index(graph.csr_view(), mode="exact")
        rng = np.random.default_rng(23)
        nodes = graph.nodes()
        changed = 0
        while changed < 6:  # ~0.5% of ~1200 edges
            u, v = (nodes[int(i)] for i in rng.choice(len(nodes), 2, replace=False))
            if graph.has_edge(u, v):
                graph.set_sign(u, v, -graph.sign(u, v))
            else:
                graph.add_edge(u, v, POSITIVE if rng.random() < 0.8 else NEGATIVE)
            changed += 1
        assert graph.affected_nodes_since(index.generation) is None
        refreshed, how = refresh_label_index(index, graph)
        assert how in ("patched", "rebuilt")
        assert refreshed.generation == graph.generation
        assert labels_equal(refreshed, build_label_index(graph.csr_view(), mode="exact"))

    def test_connected_graph_local_removal_sweeps(self):
        # A topology event whose distance impact is confined to the mutation
        # site *does* survive the bounded resweep: removing one leaf edge of a
        # star isolates the leaf, drops it past its degree-tie peers in the
        # hub ranking (exercising the crossing masks), and changes no other
        # contribution — so refresh patches instead of rebuilding.
        graph = SignedGraph()
        for leaf in range(1, 41):
            graph.add_edge(0, leaf, POSITIVE if leaf % 3 else NEGATIVE)
        index = build_label_index(graph.csr_view(), mode="exact")
        graph.remove_edge(0, 20)
        assert graph.affected_nodes_since(index.generation) is None
        refreshed, how = refresh_label_index(index, graph)
        assert how == "patched"
        assert refreshed.generation == graph.generation
        assert labels_equal(refreshed, build_label_index(graph.csr_view(), mode="exact"))
        assert_exact_index_matches_bfs(refreshed, graph.csr_view())

    def test_connected_graph_landmark_topology_churn_rebuilds(self):
        # The re-stamp only covers distance-neutral churn; a topology event
        # in landmark mode has no resweep, so refresh falls back to rebuild.
        from repro.datasets.synthetic import synthetic_csr_network

        csr, _ = synthetic_csr_network(120, average_degree=5.0, seed=3)
        graph = csr.to_signed_graph()
        index = build_label_index(graph.csr_view(), mode="landmark")
        graph.add_edge(graph.nodes()[0], graph.nodes()[50], NEGATIVE)
        refreshed, how = refresh_label_index(index, graph)
        assert how == "rebuilt"
        assert labels_equal(
            refreshed, build_label_index(graph.csr_view(), mode="landmark")
        )

    def test_resweep_handles_removals_and_degree_rank_crossings(self):
        # Edge removals change hub degrees, so dirty hubs cross positions in
        # the degree ranking — the conservative pre-seeded change masks must
        # keep the resweep bit-identical to a rebuild.
        from repro.datasets.synthetic import synthetic_csr_network

        csr, _ = synthetic_csr_network(300, average_degree=5.0, seed=29)
        graph = csr.to_signed_graph()
        index = build_label_index(graph.csr_view(), mode="exact")
        rng = np.random.default_rng(31)
        nodes = graph.nodes()
        removed = 0
        for _ in range(200):
            if removed >= 5:
                break
            u, v = (nodes[int(i)] for i in rng.choice(len(nodes), 2, replace=False))
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
                removed += 1
        graph.add_edge(nodes[0], nodes[150], POSITIVE)
        refreshed, how = refresh_label_index(index, graph)
        assert how in ("patched", "rebuilt")
        assert labels_equal(refreshed, build_label_index(graph.csr_view(), mode="exact"))

    def test_node_set_change_rebuilds(self):
        graph = multi_component_graph(num_cliques=4, clique_size=5)
        index = build_label_index(graph.csr_view())
        graph.add_edge(100, 101, POSITIVE)  # new nodes
        index, how = refresh_label_index(index, graph)
        assert how == "rebuilt"
        assert index.num_nodes == graph.number_of_nodes()

    def test_heavy_churn_rebuilds(self):
        graph = multi_component_graph(num_cliques=4, clique_size=5)
        index = build_label_index(graph.csr_view())
        for step in range(60):  # far past the 5%-of-edges patch budget
            u = step % 20
            graph.add_edge(u, 20 + (step % 19), POSITIVE)
        index, how = refresh_label_index(index, graph)
        assert how == "rebuilt"
        assert labels_equal(index, build_label_index(graph.csr_view()))


# ------------------------------------------------------------------ policy


class TestPolicyKnobs:
    def test_distance_index_validation(self):
        for mode in ("auto", "labels", "bfs"):
            assert ExecutionPolicy(distance_index=mode).distance_index == mode
        with pytest.raises(ValueError, match="distance_index"):
            ExecutionPolicy(distance_index="hub")

    def test_label_budget_validation(self):
        assert ExecutionPolicy(label_budget_bytes=1024).label_budget_bytes == 1024
        with pytest.raises(ValueError, match="label_budget_bytes"):
            ExecutionPolicy(label_budget_bytes=0)
        with pytest.raises(ValueError, match="label_budget_bytes"):
            ExecutionPolicy(label_budget_bytes=True)


# ------------------------------------------------------------------ oracle


def _team_and_candidates(graph):
    nodes = graph.nodes()
    team = nodes[: min(3, len(nodes))]
    return nodes, team


class TestOracleIntegration:
    @pytest.mark.parametrize("relation_name", ["NNE", "SPA"])
    @pytest.mark.parametrize("index_mode", ["labels", "auto"])
    def test_equivalent_to_bfs_oracle_across_churn(self, relation_name, index_mode):
        graph, _ = synthetic_signed_network(
            200, average_degree=4.0, negative_fraction=0.25, seed=21
        )
        reference_graph = graph.copy()
        plain = DistanceOracle(make_relation(relation_name, reference_graph))
        indexed = DistanceOracle(
            make_relation(
                relation_name, graph, policy=ExecutionPolicy(distance_index=index_mode)
            )
        )
        rng = np.random.default_rng(4)
        nodes = graph.nodes()
        for _round in range(3):
            candidates, team = _team_and_candidates(graph)
            assert indexed.batch_distance_to_set(
                candidates, team
            ) == plain.batch_distance_to_set(candidates, team)
            for u in nodes[:10]:
                for v in nodes[:10]:
                    assert indexed.distance(u, v) == plain.distance(u, v)
            for _ in range(5):
                u, v = rng.choice(len(nodes), size=2, replace=False)
                u, v = nodes[u], nodes[v]
                for target in (graph, reference_graph):
                    if target.has_edge(u, v):
                        target.remove_edge(u, v)
                    else:
                        target.add_edge(u, v, POSITIVE)
        if index_mode == "labels":
            stats = indexed.index_stats()
            assert stats is not None
            assert stats["served"] > 0
            assert stats["builds"] >= 1

    def test_auto_defers_below_csr_threshold(self):
        graph, _ = synthetic_signed_network(
            120, average_degree=4.0, negative_fraction=0.2, seed=6
        )
        oracle = DistanceOracle(
            make_relation("NNE", graph, policy=ExecutionPolicy(distance_index="auto"))
        )
        nodes = graph.nodes()
        oracle.batch_distance_to_set(nodes, nodes[:2])
        # 120 nodes is below CSR_AUTO_THRESHOLD: auto must not build anything.
        assert oracle.index_stats() is None

    def test_balanced_relations_never_use_the_index(self, two_factions):
        oracle = DistanceOracle(
            make_relation(
                "SBPH", two_factions, policy=ExecutionPolicy(distance_index="labels")
            )
        )
        nodes = two_factions.nodes()
        oracle.batch_distance_to_set(nodes, nodes[:2])
        assert oracle.index_stats() is None
        with pytest.raises(ValueError, match="balanced"):
            oracle.build_index()

    def test_default_policy_leaves_index_off(self):
        graph, _ = synthetic_signed_network(
            80, average_degree=4.0, negative_fraction=0.2, seed=8
        )
        oracle = DistanceOracle(make_relation("NNE", graph))
        oracle.batch_distance_to_set(graph.nodes(), graph.nodes()[:2])
        assert oracle.index_stats() is None

    def test_numpy_free_labels_degrade_with_runtime_warning(self, monkeypatch):
        from repro.utils import optional

        graph, _ = synthetic_signed_network(
            40, average_degree=3.0, negative_fraction=0.2, seed=10
        )
        oracle = DistanceOracle(
            make_relation("NNE", graph, policy=ExecutionPolicy(distance_index="labels"))
        )
        plain = DistanceOracle(make_relation("NNE", graph))
        monkeypatch.setattr(
            "repro.compatibility.distance.numpy_available", lambda: False
        )
        monkeypatch.setattr(
            optional, "_WARNED_CONTEXTS", set(optional._WARNED_CONTEXTS)
        )
        optional._WARNED_CONTEXTS.discard("distance_index='labels'")
        nodes = graph.nodes()
        with pytest.warns(RuntimeWarning, match="distance_index='labels'"):
            degraded = oracle.batch_distance_to_set(nodes, nodes[:2])
        assert degraded == plain.batch_distance_to_set(nodes, nodes[:2])
        # The warning fires once, not per query.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            oracle.batch_distance_to_set(nodes, nodes[:2])

    def test_explicit_build_and_stale_per_pair_fallback(self):
        graph, _ = synthetic_signed_network(
            100, average_degree=4.0, negative_fraction=0.2, seed=12
        )
        oracle = DistanceOracle(
            make_relation("NNE", graph, policy=ExecutionPolicy(distance_index="labels"))
        )
        index = oracle.build_index()
        assert index.generation == graph.generation
        nodes = graph.nodes()
        assert oracle.distance(nodes[0], nodes[1]) >= 0
        assert oracle.index_stats()["served"] == 1
        # Mutate: the per-pair path must not rebuild, just fall back ...
        if graph.has_edge(nodes[0], nodes[2]):
            graph.remove_edge(nodes[0], nodes[2])
        else:
            graph.add_edge(nodes[0], nodes[2], POSITIVE)
        before = oracle.index_stats()["builds"]
        oracle.distance(nodes[0], nodes[1])
        stats = oracle.index_stats()
        assert stats["builds"] == before
        assert stats["fallbacks"] >= 1
        # ... while sync() delta-refreshes it for the new generation.
        oracle.sync()
        assert oracle.index_stats()["generation"] == graph.generation

    def test_attach_index_round_trip_through_store(self, tmp_path):
        graph, _ = synthetic_signed_network(
            90, average_degree=4.0, negative_fraction=0.2, seed=14
        )
        csr = graph.csr_view()
        path = str(tmp_path / "g.store")
        save_snapshot(csr, path, labels=build_label_index(csr, mode="exact"))
        loaded = load_labels(path)
        assert loaded is not None
        plain = DistanceOracle(make_relation("NNE", graph))
        oracle = DistanceOracle(
            make_relation("NNE", graph, policy=ExecutionPolicy(distance_index="labels"))
        )
        oracle.attach_index(loaded)
        nodes = graph.nodes()
        assert oracle.batch_distance_to_set(
            nodes, nodes[:3]
        ) == plain.batch_distance_to_set(nodes, nodes[:3])
        assert oracle.index_stats()["builds"] == 0

    def test_attach_index_rejects_wrong_graph(self):
        graph, _ = synthetic_signed_network(
            50, average_degree=4.0, negative_fraction=0.2, seed=15
        )
        other, _ = synthetic_signed_network(
            60, average_degree=4.0, negative_fraction=0.2, seed=16
        )
        index = build_label_index(other.csr_view())
        oracle = DistanceOracle(
            make_relation("NNE", graph, policy=ExecutionPolicy(distance_index="labels"))
        )
        with pytest.raises(ValueError, match="covers"):
            oracle.attach_index(index)

    def test_engine_index_stats_passthrough(self):
        from repro.compatibility.engine import CompatibilityEngine

        graph, _ = synthetic_signed_network(
            70, average_degree=4.0, negative_fraction=0.2, seed=18
        )
        relation = make_relation(
            "NNE", graph, policy=ExecutionPolicy(distance_index="labels")
        )
        engine = CompatibilityEngine(relation)
        nodes = graph.nodes()
        engine.distances_to_team_many(nodes[:5], nodes[:2])
        assert engine.index_stats() is not None


# -------------------------------------------------------------- properties


class TestLabelProperties:
    @SLOW_OK
    @given(graph=signed_graphs())
    def test_exact_labels_match_bfs(self, graph):
        csr = graph.csr_view()
        index = build_label_index(csr, mode="exact")
        assert_exact_index_matches_bfs(index, csr)

    @SLOW_OK
    @given(graph=signed_graphs(min_nodes=3))
    def test_landmark_bounds_sound_and_hub_adjacent_pairs_exact(self, graph):
        csr = graph.csr_view()
        index = build_label_index(csr, mode="landmark")
        reference = bfs_matrix(csr)
        n = csr.number_of_nodes()
        ids = np.arange(n, dtype=np.int64)
        landmarks = set(int(l) for l in np.asarray(index.landmark_ids))
        for source in range(n):
            upper, exact = index.batch_bounds_from(source, ids)
            true = reference[source]
            reachable = true != UNREACHABLE
            assert (upper[reachable] >= true[reachable]).all()
            assert (upper[~reachable] == UNREACHABLE).all()
            assert np.array_equal(upper[exact], true[exact])
            # Pairs touching a landmark (hub-adjacent) are always provably
            # exact: the landmark's own BFS row covers them directly.
            if source in landmarks:
                assert bool(exact.all())
            else:
                assert bool(exact[sorted(landmarks)].all())

    @SLOW_OK
    @given(
        graph=signed_graphs(min_nodes=3),
        mutations=st.lists(
            st.tuples(
                st.integers(0, 8), st.integers(0, 8), st.sampled_from([POSITIVE, NEGATIVE])
            ),
            max_size=12,
        ),
        mode=st.sampled_from(["exact", "landmark"]),
    )
    def test_refresh_equals_rebuild_under_arbitrary_interleavings(
        self, graph, mutations, mode
    ):
        index = build_label_index(graph.csr_view(), mode=mode)
        nodes = graph.nodes()
        for u_pick, v_pick, sign in mutations:
            u = nodes[u_pick % len(nodes)]
            v = nodes[v_pick % len(nodes)]
            if u == v:
                continue
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
            else:
                graph.add_edge(u, v, sign)
            index, _how = refresh_label_index(index, graph)
            assert labels_equal(index, build_label_index(graph.csr_view(), mode=mode))
