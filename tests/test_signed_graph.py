"""Tests for the SignedGraph data structure."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    InvalidSignError,
    NodeNotFoundError,
)
from repro.signed import NEGATIVE, POSITIVE, SignedEdge, SignedGraph


class TestSignedEdge:
    def test_endpoints_and_other(self):
        edge = SignedEdge("a", "b", POSITIVE)
        assert edge.endpoints() == ("a", "b")
        assert edge.other("a") == "b"
        assert edge.other("b") == "a"

    def test_other_with_foreign_node_raises(self):
        with pytest.raises(KeyError):
            SignedEdge("a", "b", POSITIVE).other("c")

    def test_sign_predicates(self):
        assert SignedEdge(1, 2, POSITIVE).is_positive()
        assert SignedEdge(1, 2, NEGATIVE).is_negative()

    def test_invalid_sign_rejected(self):
        with pytest.raises(InvalidSignError):
            SignedEdge(1, 2, 0)

    def test_equality_is_orientation_independent(self):
        assert SignedEdge(1, 2, POSITIVE) == SignedEdge(2, 1, POSITIVE)
        assert SignedEdge(1, 2, POSITIVE) != SignedEdge(1, 2, NEGATIVE)

    def test_hash_consistent_with_equality(self):
        assert len({SignedEdge(1, 2, POSITIVE), SignedEdge(2, 1, POSITIVE)}) == 1


class TestConstruction:
    def test_empty_graph(self):
        graph = SignedGraph()
        assert len(graph) == 0
        assert graph.number_of_edges() == 0

    def test_from_edges_counts(self):
        graph = SignedGraph.from_edges([(0, 1, +1), (1, 2, -1)])
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.number_of_positive_edges() == 1
        assert graph.number_of_negative_edges() == 1

    def test_from_edges_with_isolated_nodes(self):
        graph = SignedGraph.from_edges([(0, 1, +1)], nodes=[5, 6])
        assert graph.has_node(5)
        assert graph.degree(5) == 0

    def test_add_node_idempotent(self):
        graph = SignedGraph()
        graph.add_node("x")
        graph.add_node("x")
        assert graph.number_of_nodes() == 1

    def test_add_edge_adds_endpoints(self):
        graph = SignedGraph()
        graph.add_edge("a", "b", NEGATIVE)
        assert graph.has_node("a") and graph.has_node("b")

    def test_re_adding_same_edge_is_noop(self):
        graph = SignedGraph()
        graph.add_edge(1, 2, POSITIVE)
        graph.add_edge(1, 2, POSITIVE)
        assert graph.number_of_edges() == 1

    def test_re_adding_with_conflicting_sign_raises(self):
        graph = SignedGraph()
        graph.add_edge(1, 2, POSITIVE)
        with pytest.raises(ValueError):
            graph.add_edge(1, 2, NEGATIVE)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            SignedGraph().add_edge(1, 1, POSITIVE)

    def test_invalid_sign_rejected(self):
        with pytest.raises(InvalidSignError):
            SignedGraph().add_edge(1, 2, 2)


class TestQueries:
    def test_sign_lookup(self, line_graph):
        assert line_graph.sign(0, 1) == POSITIVE
        assert line_graph.sign(2, 1) == NEGATIVE

    def test_sign_missing_edge_raises(self, line_graph):
        with pytest.raises(EdgeNotFoundError):
            line_graph.sign(0, 3)

    def test_sign_missing_node_raises(self, line_graph):
        with pytest.raises(NodeNotFoundError):
            line_graph.sign(0, 99)

    def test_neighbors(self, line_graph):
        assert sorted(line_graph.neighbors(1)) == [0, 2]

    def test_neighbors_missing_node_raises(self, line_graph):
        with pytest.raises(NodeNotFoundError):
            list(line_graph.neighbors(42))

    def test_signed_neighbors(self, line_graph):
        assert dict(line_graph.signed_neighbors(1)) == {0: POSITIVE, 2: NEGATIVE}

    def test_positive_and_negative_neighbors(self, line_graph):
        assert line_graph.positive_neighbors(1) == [0]
        assert line_graph.negative_neighbors(1) == [2]

    def test_degree(self, line_graph):
        assert line_graph.degree(1) == 2
        assert line_graph.degree(0) == 1

    def test_contains_and_iter(self, line_graph):
        assert 0 in line_graph
        assert 99 not in line_graph
        assert sorted(line_graph) == [0, 1, 2, 3]

    def test_edges_iterated_once(self, two_factions):
        edges = list(two_factions.edges())
        assert len(edges) == two_factions.number_of_edges()
        assert len(set(edges)) == len(edges)

    def test_edge_triples_signs(self, line_graph):
        triples = {frozenset((u, v)): s for u, v, s in line_graph.edge_triples()}
        assert triples[frozenset((1, 2))] == NEGATIVE


class TestMutation:
    def test_set_sign_flips_counters(self, line_graph):
        line_graph.set_sign(0, 1, NEGATIVE)
        assert line_graph.sign(0, 1) == NEGATIVE
        assert line_graph.number_of_negative_edges() == 2

    def test_set_sign_same_value_is_noop(self, line_graph):
        before = line_graph.number_of_negative_edges()
        line_graph.set_sign(1, 2, NEGATIVE)
        assert line_graph.number_of_negative_edges() == before

    def test_remove_edge(self, line_graph):
        line_graph.remove_edge(1, 2)
        assert not line_graph.has_edge(1, 2)
        assert line_graph.number_of_edges() == 2
        assert line_graph.number_of_negative_edges() == 0

    def test_remove_missing_edge_raises(self, line_graph):
        with pytest.raises(EdgeNotFoundError):
            line_graph.remove_edge(0, 3)

    def test_remove_node_drops_incident_edges(self, line_graph):
        line_graph.remove_node(1)
        assert not line_graph.has_node(1)
        assert line_graph.number_of_edges() == 1

    def test_remove_missing_node_raises(self, line_graph):
        with pytest.raises(NodeNotFoundError):
            line_graph.remove_node(17)


class TestTransforms:
    def test_copy_is_independent(self, line_graph):
        clone = line_graph.copy()
        clone.remove_edge(0, 1)
        assert line_graph.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_copy_equality(self, two_factions):
        assert two_factions.copy() == two_factions

    def test_subgraph_keeps_internal_edges_only(self, two_factions):
        sub = two_factions.subgraph([0, 1, 2, 3])
        assert sub.number_of_nodes() == 4
        assert sub.has_edge(0, 1)
        assert sub.has_edge(2, 3)
        assert not sub.has_edge(0, 5)

    def test_subgraph_with_missing_node_raises(self, two_factions):
        with pytest.raises(NodeNotFoundError):
            two_factions.subgraph([0, 99])

    def test_path_sign(self, line_graph):
        assert line_graph.path_sign([0, 1]) == POSITIVE
        assert line_graph.path_sign([0, 1, 2]) == NEGATIVE
        assert line_graph.path_sign([0, 1, 2, 3]) == NEGATIVE
        assert line_graph.path_sign([2]) == POSITIVE

    def test_repr_mentions_counts(self, line_graph):
        assert "nodes=4" in repr(line_graph)
