"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["datasets"]).command == "datasets"
        assert parser.parse_args(["compatibility", "toy"]).command == "compatibility"
        assert parser.parse_args(["team", "toy", "python"]).command == "team"
        assert parser.parse_args(["reproduce", "--fast"]).fast is True
        assert parser.parse_args(["table2", "--fast"]).command == "table2"
        assert parser.parse_args(["figure2", "--panels", "ab"]).panels == "ab"

    def test_execution_flags_default_to_serial(self):
        parser = build_parser()
        for argv in (
            ["table2"],
            ["figure2"],
            ["reproduce"],
            ["streaming", "toy"],
        ):
            arguments = parser.parse_args(argv)
            assert arguments.workers == 0
            assert arguments.chunk_size is None

    def test_execution_flags_parse(self):
        parser = build_parser()
        arguments = parser.parse_args(
            ["table2", "--fast", "--workers", "4", "--chunk-size", "16"]
        )
        assert arguments.workers == 4
        assert arguments.chunk_size == 16
        arguments = parser.parse_args(["streaming", "toy", "--workers", "2"])
        assert arguments.workers == 2

    def test_execution_flags_reject_bad_values_at_parse_time(self, capsys):
        """Bad --workers/--chunk-size must exit 2 with an explanatory message
        instead of surfacing an opaque ValueError at first kernel dispatch."""
        parser = build_parser()
        cases = [
            (["table2", "--workers", "-5"], "workers must be -1"),
            (["table2", "--workers", "many"], "integer worker count"),
            (["streaming", "toy", "--chunk-size", "0"], "chunk-size must be a positive"),
            (["reproduce", "--chunk-size", "-4"], "chunk-size must be a positive"),
            (["figure2", "--chunk-size", "wide"], "integer chunk size"),
        ]
        for argv, fragment in cases:
            with pytest.raises(SystemExit) as excinfo:
                parser.parse_args(argv)
            assert excinfo.value.code == 2
            assert fragment in capsys.readouterr().err

    def test_serial_worker_spellings_stay_legal(self):
        parser = build_parser()
        assert parser.parse_args(["table2", "--workers", "0"]).workers == 0
        assert parser.parse_args(["table2", "--workers", "1"]).workers == 1
        assert parser.parse_args(["table2", "--workers", "-1"]).workers == -1


class TestDatasetsCommand:
    def test_lists_datasets(self, capsys):
        exit_code = main(["datasets", "--scale", "0.02"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "toy" in captured.out
        assert "slashdot" in captured.out

    def test_never_generates_on_demand_datasets(self, capsys, monkeypatch):
        import repro.datasets.registry as registry

        def explode(**kwargs):
            raise AssertionError("the listing must not generate 'million'")

        monkeypatch.setitem(registry._FACTORIES, "million", explode)
        exit_code = main(["datasets", "--scale", "0.02"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "not generated: 'million'" in captured.out


class TestCompatibilityCommand:
    def test_reports_relations(self, capsys):
        exit_code = main(["compatibility", "toy", "--relations", "SPA,SPO,NNE"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("SPA", "SPO", "NNE"):
            assert name in captured.out


class TestTeamCommand:
    def test_successful_team(self, capsys):
        exit_code = main(["team", "toy", "python,databases", "--relation", "SPO"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Team (" in captured.out

    def test_unsolvable_task_returns_one(self, capsys):
        exit_code = main(
            ["team", "toy", "python,databases,design,writing", "--relation", "DPE"]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "No compatible team" in captured.out

    def test_unknown_skill_returns_two(self, capsys):
        exit_code = main(["team", "toy", "quantum"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error" in captured.err.lower()

    def test_empty_skill_list_returns_two(self):
        assert main(["team", "toy", " , "]) == 2


class TestSnapshotCommand:
    def test_save_load_info_roundtrip(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        path = str(tmp_path / "toy.store")
        assert main(["snapshot", "save", "toy", path]) == 0
        saved = capsys.readouterr().out
        assert "Saved toy" in saved and path in saved

        assert main(["snapshot", "load", path]) == 0
        loaded = capsys.readouterr().out
        assert "memory-mapped" in loaded
        assert main(["snapshot", "load", path, "--no-mmap"]) == 0
        assert "read into memory" in capsys.readouterr().out

        assert main(["snapshot", "info", path]) == 0
        info = capsys.readouterr().out
        assert "plane:indptr" in info and "version" in info
        assert "labels" in info and "(none)" in info

    def test_save_with_labels_and_json_info(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        import json

        path = str(tmp_path / "toy.store")
        assert main(["snapshot", "save", "toy", path, "--labels", "auto"]) == 0
        saved = capsys.readouterr().out
        assert "Labels: mode=exact" in saved

        assert main(["snapshot", "info", "--json", path]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["version"] == 2
        assert info["labels"]["mode"] == "exact"
        assert info["labels"]["num_hubs"] > 0
        # Every plane (base and label) reports dtype/count/offset.
        for name in ("indptr", "label_indptr", "label_hubs", "hub_order"):
            plane = info["planes"][name]
            assert set(plane) >= {"dtype", "count", "offset"}
        assert info["file_nbytes"] == info["expected_nbytes"]

        # The table rendering names the label section too.
        assert main(["snapshot", "info", path]) == 0
        table = capsys.readouterr().out
        assert "mode=exact" in table and "plane:label_hubs" in table

    def test_snapshot_path_validators_exit_2(self, tmp_path, capsys):
        for argv, fragment in [
            (["snapshot", "info", str(tmp_path / "missing.store")], "does not exist"),
            (["snapshot", "load", str(tmp_path / "missing.store")], "does not exist"),
            (
                ["snapshot", "save", "toy", str(tmp_path / "nodir" / "x.store")],
                "output directory does not exist",
            ),
        ]:
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert fragment in capsys.readouterr().err

    def test_snapshot_store_flag_requires_existing_directory(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table2", "--snapshot-store", str(tmp_path / "missing")])
        assert excinfo.value.code == 2
        assert "directory does not exist" in capsys.readouterr().err
        # A valid directory parses and lands on the namespace.
        parser = build_parser()
        arguments = parser.parse_args(
            ["streaming", "toy", "--snapshot-store", str(tmp_path)]
        )
        assert arguments.snapshot_store == str(tmp_path)

    def test_snapshot_store_flag_routes_into_config(self, tmp_path):
        from repro.cli import _experiment_config

        parser = build_parser()
        arguments = parser.parse_args(
            ["table2", "--fast", "--snapshot-store", str(tmp_path)]
        )
        config = _experiment_config(arguments)
        for dataset in config.datasets:
            assert dataset.snapshot_store == str(tmp_path)
            assert dataset.execution_policy().snapshot_store == str(tmp_path)
