"""Tests for the snapshot store (:mod:`repro.signed.store`), the bitset
helpers, the word-parallel BFS kernels and the loader parse-once cache.

The load-bearing guarantee mirrors the execution layer's: a snapshot written
to disk and mapped back must be *bit-identical* to the in-memory index it was
built from — same dtypes, same values, same node order, same generation — so
every consumer (pool workers, the loader cache, the CLI) can treat the file
as the snapshot itself rather than a lossy export of it.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import synthetic_signed_network
from repro.signed import NEGATIVE, POSITIVE, SignedGraph
from repro.utils.bitset import (
    WORD_BITS,
    mask_nbytes,
    pack_mask,
    popcount,
    source_bits,
    set_bit_positions,
    unpack_mask,
    words_for,
)

np = pytest.importorskip("numpy")

from repro.signed.csr import (  # noqa: E402  (needs numpy)
    UNREACHABLE,
    CSRSignedGraph,
    multi_source_signed_bfs,
    shortest_path_lengths_dense_batch,
    shortest_path_lengths_dense_batch_into,
    signed_bfs_csr,
    signed_bfs_dense_batch,
    signed_bfs_dense_batch_into,
)
from repro.signed.store import (  # noqa: E402
    MAGIC,
    NODE_TABLE_PICKLE,
    NODE_TABLE_RANGE,
    VERSION,
    _HEADER,
    _TEMP_LEDGER,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)


# --------------------------------------------------------------------- helpers


@st.composite
def random_signed_graphs(draw, min_nodes=1, max_nodes=12, int_nodes=True):
    """Small random signed graphs, with int or string node labels."""
    num_nodes = draw(st.integers(min_nodes, max_nodes))
    if int_nodes:
        nodes = list(range(num_nodes))
    else:
        nodes = [f"user-{i}" for i in range(num_nodes)]
    graph = SignedGraph()
    for node in nodes:
        graph.add_node(node)
    pairs = [(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
    ) if pairs else []
    signs = draw(
        st.lists(
            st.sampled_from([POSITIVE, NEGATIVE]),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    for (i, j), sign in zip(chosen, signs):
        graph.add_edge(nodes[i], nodes[j], sign)
    return graph


def assert_snapshots_identical(left: CSRSignedGraph, right: CSRSignedGraph):
    """Planes, dtypes, node order and generation all equal."""
    for name in ("indptr", "indices", "signs"):
        a, b = getattr(left, name), getattr(right, name)
        assert a.dtype == b.dtype
        assert np.array_equal(np.asarray(a), np.asarray(b))
    assert list(left._nodes) == list(right._nodes)
    assert left.generation == right.generation


# ---------------------------------------------------------------------- bitset


class TestBitset:
    @given(st.lists(st.booleans(), max_size=200))
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_pack_unpack_roundtrip(self, bits):
        mask = np.array(bits, dtype=bool)
        packed = pack_mask(mask)
        assert len(packed) == mask_nbytes(len(bits))
        restored = unpack_mask(packed, len(bits))
        assert restored.dtype == np.bool_
        assert np.array_equal(restored, mask)
        assert popcount(packed) == int(mask.sum())

    def test_size_helpers(self):
        assert mask_nbytes(0) == 0
        assert mask_nbytes(1) == 1
        assert mask_nbytes(8) == 1
        assert mask_nbytes(9) == 2
        assert words_for(0) == 0
        assert words_for(64) == 1
        assert words_for(65) == 2

    def test_source_bits_and_positions(self):
        bits = source_bits(5)
        assert bits.dtype == np.uint64
        assert [int(b) for b in bits] == [1, 2, 4, 8, 16]
        word = int(bits[0] | bits[2] | bits[4])
        assert set_bit_positions(word) == [0, 2, 4]
        assert set_bit_positions(0) == []
        # The sign bit (position 63) must survive the Python-int round trip.
        assert set_bit_positions(1 << 63) == [63]
        with pytest.raises(ValueError):
            source_bits(WORD_BITS + 1)


# ---------------------------------------------------------------- store format


class TestStoreRoundtrip:
    @given(graph=random_signed_graphs())
    @settings(
        deadline=None,
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_int_node_roundtrip(self, graph, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("store") / "g.store")
        csr = CSRSignedGraph.from_signed_graph(graph)
        save_snapshot(csr, path)
        assert_snapshots_identical(csr, load_snapshot(path, mmap=True))
        assert_snapshots_identical(csr, load_snapshot(path, mmap=False))

    @given(graph=random_signed_graphs(int_nodes=False))
    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_string_node_roundtrip(self, graph, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("store") / "g.store")
        csr = CSRSignedGraph.from_signed_graph(graph)
        save_snapshot(csr, path)
        loaded = load_snapshot(path, mmap=True)
        assert_snapshots_identical(csr, loaded)
        # The rebuilt index answers the same lookups as the original's.
        for node in graph.nodes():
            assert loaded.index_of(node) == csr.index_of(node)

    def test_synthetic_graph_roundtrip_and_node_table_kinds(self, tmp_path):
        graph, _ = synthetic_signed_network(
            300, average_degree=5.0, negative_fraction=0.3, seed=11
        )
        csr = graph.csr_view()
        path = str(tmp_path / "synthetic.store")
        save_snapshot(csr, path)
        info = snapshot_info(path)
        # Synthetic graphs have dense int nodes: zero-byte range table.
        assert info["node_table_kind"] == "range"
        assert info["node_table_nbytes"] == 0
        assert info["num_nodes"] == 300
        assert info["file_nbytes"] == info["expected_nbytes"]
        assert_snapshots_identical(csr, load_snapshot(path))
        assert_snapshots_identical(csr, CSRSignedGraph.load(path))
        # save() is the method spelling of save_snapshot().
        other = str(tmp_path / "method.store")
        csr.save(other)
        assert Path(other).read_bytes() == Path(path).read_bytes()

    def test_node_table_skipped_for_worker_attach(self, tmp_path):
        graph = SignedGraph.from_edges([("a", "b", +1), ("b", "c", -1)])
        csr = CSRSignedGraph.from_signed_graph(graph)
        path = str(tmp_path / "g.store")
        save_snapshot(csr, path)
        assert snapshot_info(path)["node_table_kind"] == "pickle"
        attached = load_snapshot(path, node_table=False)
        # Placeholders: flat arrays intact, dense ids in place of nodes.
        assert attached._nodes == [0, 1, 2]
        assert np.array_equal(
            np.asarray(attached.indices), np.asarray(csr.indices)
        )

    def test_generation_survives(self, tmp_path):
        graph = SignedGraph.from_edges([(0, 1, +1)])
        graph.add_edge(1, 2, -1)
        csr = graph.csr_view()
        assert csr.generation > 0
        path = str(tmp_path / "g.store")
        save_snapshot(csr, path)
        assert load_snapshot(path).generation == csr.generation
        assert snapshot_info(path)["generation"] == csr.generation

    def test_mmap_views_are_readonly_and_file_deletable(self, tmp_path):
        graph, _ = synthetic_signed_network(50, average_degree=4.0, negative_fraction=0.2, seed=5)
        path = str(tmp_path / "g.store")
        save_snapshot(graph.csr_view(), path)
        mapped = load_snapshot(path, mmap=True)
        with pytest.raises(ValueError):
            np.asarray(mapped.indices)[0] = 0
        copied = load_snapshot(path, mmap=False)
        os.unlink(path)
        # The copied arrays do not depend on the file; the mapped ones keep
        # the unlinked inode alive (POSIX) so both stay readable.
        assert np.array_equal(np.asarray(copied.indices), np.asarray(mapped.indices))

    def test_to_signed_graph_reparse_is_bit_identical(self, tmp_path):
        """load → to_signed_graph → from_signed_graph reproduces the planes
        exactly (the loader cache depends on this for node-order-sensitive
        downstream results like Zipf skill assignment)."""
        graph, _ = synthetic_signed_network(
            200, average_degree=5.0, negative_fraction=0.25, seed=23
        )
        csr = CSRSignedGraph.from_signed_graph(graph)
        path = str(tmp_path / "g.store")
        save_snapshot(csr, path)
        rebuilt = load_snapshot(path).to_signed_graph()
        assert list(rebuilt.nodes()) == list(graph.nodes())
        assert rebuilt.number_of_edges() == graph.number_of_edges()
        assert rebuilt.number_of_positive_edges() == graph.number_of_positive_edges()
        # The rebuilt graph starts a fresh mutation history (generation 0),
        # but its planes reproduce the original's bit for bit.
        reindexed = CSRSignedGraph.from_signed_graph(rebuilt)
        for name in ("indptr", "indices", "signs"):
            assert np.array_equal(
                np.asarray(getattr(csr, name)), np.asarray(getattr(reindexed, name))
            )
        assert list(reindexed._nodes) == list(csr._nodes)


class TestStoreDiagnostics:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot(str(tmp_path / "nope.store"))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.store"
        path.write_bytes(b"NOTASTORE" + b"\0" * 64)
        with pytest.raises(ValueError, match="bad magic"):
            load_snapshot(str(path))
        with pytest.raises(ValueError, match="bad magic"):
            snapshot_info(str(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.store"
        path.write_bytes(MAGIC[:4])
        with pytest.raises(ValueError, match="truncated header"):
            load_snapshot(str(path))

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "future.store"
        path.write_bytes(
            _HEADER.pack(MAGIC, VERSION + 1, NODE_TABLE_RANGE, 0, 0, 0, 0)
        )
        with pytest.raises(ValueError, match=f"version {VERSION + 1}"):
            load_snapshot(str(path))

    def test_unknown_node_table_kind(self, tmp_path):
        path = tmp_path / "kind.store"
        path.write_bytes(_HEADER.pack(MAGIC, VERSION, 7, 0, 0, 0, 0))
        with pytest.raises(ValueError, match="unknown node-table kind"):
            load_snapshot(str(path))

    def test_negative_plane_size(self, tmp_path):
        path = tmp_path / "negative.store"
        path.write_bytes(
            _HEADER.pack(MAGIC, VERSION, NODE_TABLE_RANGE, -1, 0, 0, 0)
        )
        with pytest.raises(ValueError, match="negative plane size"):
            load_snapshot(str(path))

    def test_truncated_planes(self, tmp_path):
        graph, _ = synthetic_signed_network(40, average_degree=4.0, negative_fraction=0.2, seed=3)
        path = str(tmp_path / "g.store")
        save_snapshot(graph.csr_view(), path)
        data = Path(path).read_bytes()
        Path(path).write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_snapshot(path)

    def test_int64_header_fields_round_trip(self, tmp_path):
        """Counts beyond int32 fit the header (the i8 fields are what lets a
        billion-edge snapshot describe itself); the load then fails on size,
        not on a silently wrapped count."""
        path = tmp_path / "huge.store"
        huge = 2**40
        path.write_bytes(
            _HEADER.pack(MAGIC, VERSION, NODE_TABLE_RANGE, huge, huge, 0, 0)
        )
        with pytest.raises(ValueError, match="truncated"):
            load_snapshot(str(path))
        # snapshot_info reads the header only, so it reports the layout.
        info = snapshot_info(str(path))
        assert info["num_nodes"] == huge
        assert info["expected_nbytes"] > huge * 8

    def test_save_failure_cleans_temp_and_ledger(self, tmp_path, monkeypatch):
        graph, _ = synthetic_signed_network(30, average_degree=3.0, negative_fraction=0.2, seed=2)
        path = str(tmp_path / "g.store")

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            save_snapshot(graph.csr_view(), path)
        assert not os.path.exists(path)
        assert not _TEMP_LEDGER
        assert [f for f in os.listdir(tmp_path) if f.endswith(".tmp")] == []

    def test_save_is_atomic_over_existing_file(self, tmp_path, monkeypatch):
        graph, _ = synthetic_signed_network(30, average_degree=3.0, negative_fraction=0.2, seed=2)
        path = str(tmp_path / "g.store")
        save_snapshot(graph.csr_view(), path)
        before = Path(path).read_bytes()
        monkeypatch.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(OSError()))
        with pytest.raises(OSError):
            save_snapshot(graph.csr_view(), path)
        # The failed rewrite left the original file untouched.
        assert Path(path).read_bytes() == before

    def test_numpy_free_save_load_raise_clear_importerror(self, tmp_path, monkeypatch):
        import repro.utils.optional as optional

        graph, _ = synthetic_signed_network(20, average_degree=3.0, negative_fraction=0.2, seed=1)
        path = str(tmp_path / "g.store")
        save_snapshot(graph.csr_view(), path)
        monkeypatch.setattr(optional, "_NUMPY_AVAILABLE", False)
        with pytest.raises(ImportError, match="snapshot store requires numpy"):
            load_snapshot(path)
        with pytest.raises(ImportError, match="snapshot store requires numpy"):
            save_snapshot(graph.csr_view(), str(tmp_path / "other.store"))
        # The header-only inspection stays available without numpy.
        assert snapshot_info(path)["num_nodes"] == 20


# ------------------------------------------------------------- label section


class TestStoreLabels:
    """The optional trailing label section: round-trip, compat, diagnostics."""

    @staticmethod
    def _graph(seed=31):
        graph, _ = synthetic_signed_network(
            120, average_degree=4.0, negative_fraction=0.25, seed=seed
        )
        return graph

    @pytest.mark.parametrize("mode", ["exact", "landmark"])
    @pytest.mark.parametrize("mmap", [True, False])
    def test_label_round_trip(self, tmp_path, mode, mmap):
        from repro.signed.labels import build_label_index, labels_equal
        from repro.signed.store import load_labels

        csr = self._graph().csr_view()
        index = build_label_index(csr, mode=mode)
        path = str(tmp_path / "g.store")
        save_snapshot(csr, path, labels=index)
        info = snapshot_info(path)
        assert info["version"] == VERSION
        assert info["labels"]["mode"] == mode
        assert info["labels"]["generation"] == csr.generation
        assert info["file_nbytes"] == info["expected_nbytes"]
        # The base snapshot loads exactly as if no labels were present.
        assert_snapshots_identical(csr, load_snapshot(path, mmap=mmap))
        loaded = load_labels(path, mmap=mmap)
        assert labels_equal(index, loaded)
        assert loaded.generation == csr.generation

    def test_label_planes_reported_by_info(self, tmp_path):
        from repro.signed.labels import build_label_index

        csr = self._graph().csr_view()
        path = str(tmp_path / "g.store")
        save_snapshot(csr, path, labels=build_label_index(csr, mode="exact"))
        planes = snapshot_info(path)["planes"]
        for name in ("label_indptr", "label_hubs", "label_dists", "hub_order"):
            assert name in planes
            assert planes[name]["offset"] % 8 == 0

    def test_label_free_file_has_no_section(self, tmp_path):
        from repro.signed.store import load_labels

        csr = self._graph().csr_view()
        path = str(tmp_path / "g.store")
        save_snapshot(csr, path)
        assert snapshot_info(path)["labels"] is None
        assert load_labels(path) is None

    def test_version1_file_still_loads(self, tmp_path):
        """A v2 file without labels patched to version 1 reads unchanged —
        exactly the bytes an old library version wrote."""
        from repro.signed.store import load_labels

        csr = self._graph().csr_view()
        path = str(tmp_path / "g.store")
        save_snapshot(csr, path)
        data = bytearray(Path(path).read_bytes())
        fields = list(_HEADER.unpack_from(data))
        assert fields[1] == VERSION
        fields[1] = 1
        data[: _HEADER.size] = _HEADER.pack(*fields)
        Path(path).write_bytes(bytes(data))
        assert snapshot_info(path)["version"] == 1
        assert snapshot_info(path)["labels"] is None
        assert load_labels(path) is None
        assert_snapshots_identical(csr, load_snapshot(path))

    def test_save_rejects_mismatched_labels(self, tmp_path):
        from repro.signed.labels import build_label_index

        graph = self._graph()
        csr = graph.csr_view()
        index = build_label_index(csr)
        path = str(tmp_path / "g.store")
        # Stale generation: the index no longer describes the snapshot.
        graph.add_edge(0, 118, POSITIVE)
        with pytest.raises(ValueError, match="generation"):
            save_snapshot(graph.csr_view(), path, labels=index)
        # Wrong graph entirely.
        other, _ = synthetic_signed_network(
            60, average_degree=4.0, negative_fraction=0.2, seed=77
        )
        with pytest.raises(ValueError, match="nodes"):
            save_snapshot(other.csr_view(), path, labels=index)

    def test_corrupt_label_section_rejected(self, tmp_path):
        from repro.signed.store import load_labels

        csr = self._graph().csr_view()
        path = str(tmp_path / "g.store")
        save_snapshot(csr, path)
        with open(path, "ab") as handle:
            handle.write(b"\x00" * 24)  # trailing garbage, not a label header
        with pytest.raises(ValueError, match="label"):
            load_labels(path)
        with pytest.raises(ValueError, match="label"):
            snapshot_info(path)


# ------------------------------------------------------------- word parallel


@pytest.fixture(scope="module")
def wp_graph():
    graph, _ = synthetic_signed_network(
        400, average_degree=5.0, negative_fraction=0.3, seed=41
    )
    return graph.csr_view()


class TestWordParallelKernels:
    """Forced word-parallel runs must be bit-identical to the per-source
    reference, across chunk boundaries (more than 64 sources)."""

    SOURCES = 150  # three word chunks: 64 + 64 + 22

    def test_signed_bfs_batch_identical(self, wp_graph):
        sources = list(range(self.SOURCES))
        fast = signed_bfs_dense_batch(wp_graph, sources, wordparallel=True)
        slow = signed_bfs_dense_batch(wp_graph, sources, wordparallel=False)
        assert len(fast) == len(slow) == self.SOURCES
        for f, s in zip(fast, slow):
            for a, b in zip(f, s):
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)

    def test_signed_bfs_into_identical(self, wp_graph):
        sources = list(range(self.SOURCES))
        n = wp_graph.number_of_nodes()

        def run(flag):
            lengths = np.empty((self.SOURCES, n), dtype=np.int32)
            positive = np.empty((self.SOURCES, n), dtype=np.int64)
            negative = np.empty((self.SOURCES, n), dtype=np.int64)
            tokens = signed_bfs_dense_batch_into(
                wp_graph, sources, lengths, positive, negative, wordparallel=flag
            )
            return tokens, lengths, positive, negative

        tokens_fast, *fast = run(True)
        tokens_slow, *slow = run(False)
        assert tokens_fast == tokens_slow
        for a, b in zip(fast, slow):
            assert np.array_equal(a, b)

    def test_path_lengths_batch_identical(self, wp_graph):
        sources = list(range(self.SOURCES))
        fast = shortest_path_lengths_dense_batch(wp_graph, sources, wordparallel=True)
        slow = shortest_path_lengths_dense_batch(wp_graph, sources, wordparallel=False)
        for a, b in zip(fast, slow):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    def test_path_lengths_into_identical(self, wp_graph):
        sources = list(range(self.SOURCES))
        n = wp_graph.number_of_nodes()
        fast = np.empty((self.SOURCES, n), dtype=np.int32)
        slow = np.empty((self.SOURCES, n), dtype=np.int32)
        shortest_path_lengths_dense_batch_into(
            wp_graph, sources, fast, wordparallel=True
        )
        shortest_path_lengths_dense_batch_into(
            wp_graph, sources, slow, wordparallel=False
        )
        assert np.array_equal(fast, slow)

    def test_noncontiguous_output_rows(self, wp_graph):
        """Word-parallel writes go row-by-row, so strided output views (an
        arena whose row block belongs to a larger allocation) work too."""
        sources = list(range(70))
        n = wp_graph.number_of_nodes()
        backing = np.empty((140, n), dtype=np.int32)
        view = backing[::2]
        shortest_path_lengths_dense_batch_into(
            wp_graph, sources, view, wordparallel=True
        )
        dense = np.empty((70, n), dtype=np.int32)
        shortest_path_lengths_dense_batch_into(
            wp_graph, sources, dense, wordparallel=False
        )
        assert np.array_equal(view, dense)

    def test_disconnected_sources_unreachable_marker(self):
        graph = SignedGraph.from_edges([(0, 1, +1), (2, 3, -1)])
        for node in range(4, 70):
            graph.add_node(node)
        csr = graph.csr_view()
        sources = list(range(csr.number_of_nodes()))
        fast = shortest_path_lengths_dense_batch(csr, sources, wordparallel=True)
        slow = shortest_path_lengths_dense_batch(csr, sources, wordparallel=False)
        for a, b in zip(fast, slow):
            assert np.array_equal(a, b)
        assert fast[0][2] == UNREACHABLE

    def test_adaptive_heuristic_engages_above_threshold(self, wp_graph, monkeypatch):
        import repro.signed.csr as csr_module

        calls = []
        original = csr_module._wordparallel_path_lengths_into

        def recording(csr, chunk, out):
            calls.append(len(chunk))
            return original(csr, chunk, out)

        monkeypatch.setattr(
            csr_module, "_wordparallel_path_lengths_into", recording
        )
        sources = list(range(100))
        # Below the node threshold: stays on the batched/lockstep path.
        shortest_path_lengths_dense_batch(wp_graph, sources)
        assert calls == []
        # Above it (threshold forced down): word-parallel chunks of <= 64.
        shortest_path_lengths_dense_batch(wp_graph, sources, lockstep_threshold=10)
        assert calls == [64, 36]
        calls.clear()
        # Too few sources to pay the bitmap setup: per-source path.
        shortest_path_lengths_dense_batch(
            wp_graph, sources[:4], lockstep_threshold=10
        )
        assert calls == []

    def test_overflow_falls_back_per_source(self):
        """A doubling ladder pushes shortest-path counts past int64 inside
        the word-parallel kernel; the chunk must re-run per source and land
        on the identical skip/raise behaviour as the reference."""
        edges = []
        previous = ["s"]
        for layer in range(66):
            current = [(layer, 0), (layer, 1)]
            for node in current:
                for parent in previous:
                    edges.append((parent, node, +1))
            previous = current
        graph = SignedGraph.from_edges(edges)
        csr = graph.csr_view()
        sources = [csr.index_of("s"), csr.index_of((0, 0)), csr.index_of((65, 0))]
        with pytest.raises(OverflowError):
            signed_bfs_dense_batch(csr, sources, wordparallel=True)
        fast = signed_bfs_dense_batch(
            csr, sources, wordparallel=True, skip_overflow=True
        )
        slow = signed_bfs_dense_batch(
            csr, sources, wordparallel=False, skip_overflow=True
        )
        assert [r is None for r in fast] == [r is None for r in slow]
        for f, s in zip(fast, slow):
            if f is None:
                continue
            for a, b in zip(f, s):
                assert np.array_equal(a, b)

    def test_multi_source_wrapper_unaffected(self, wp_graph):
        """The node-keyed wrapper sits above the dense batch and must agree
        with the per-node reference regardless of the kernel choice."""
        nodes = [wp_graph._nodes[i] for i in range(20)]
        results = multi_source_signed_bfs(wp_graph, nodes)
        assert len(results) == len(nodes)
        for node, result in zip(nodes, results):
            reference = signed_bfs_csr(wp_graph, node)
            assert np.array_equal(result.lengths_array, reference.lengths_array)
            assert np.array_equal(result.positive_array, reference.positive_array)


# ----------------------------------------------------------------- loader cache


class TestLoaderCache:
    @pytest.fixture()
    def edge_file(self, tmp_path):
        import random

        rng = random.Random(77)
        lines = ["# synthetic edge list"]
        for _ in range(600):
            u, v = rng.randrange(120), rng.randrange(120)
            if u != v:
                lines.append(f"{u}\t{v}\t{rng.choice(['1', '-1'])}")
        path = tmp_path / "edges.txt"
        path.write_text("\n".join(lines))
        return path

    @staticmethod
    def _signature(dataset):
        graph = dataset.graph
        return (
            list(graph.nodes()),
            sorted((min(e.u, e.v), max(e.u, e.v), e.sign) for e in graph.edges()),
            {u: sorted(map(str, dataset.skills.skills_of(u))) for u in graph.nodes()},
        )

    def test_hit_is_bit_identical_to_cold_parse(self, edge_file, tmp_path):
        from repro.datasets.loaders import load_snap_dataset

        cache = tmp_path / "cache"
        cold = load_snap_dataset("t", edge_file, seed=9)
        miss = load_snap_dataset("t", edge_file, seed=9, snapshot_cache_dir=cache)
        assert len(list(cache.glob("parse-*.store"))) == 1
        hit = load_snap_dataset("t", edge_file, seed=9, snapshot_cache_dir=cache)
        assert (
            self._signature(cold) == self._signature(miss) == self._signature(hit)
        )

    def test_source_edit_invalidates(self, edge_file, tmp_path):
        from repro.datasets.loaders import load_snap_dataset

        cache = tmp_path / "cache"
        load_snap_dataset("t", edge_file, snapshot_cache_dir=cache)
        stat = edge_file.stat()
        edge_file.write_text(edge_file.read_text() + "\n0\t1\t1")
        os.utime(
            edge_file, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000_000)
        )
        load_snap_dataset("t", edge_file, snapshot_cache_dir=cache)
        assert len(list(cache.glob("parse-*.store"))) == 2

    def test_parse_options_key_separate_entries(self, edge_file, tmp_path):
        from repro.datasets.loaders import load_snap_dataset

        cache = tmp_path / "cache"
        full = load_snap_dataset(
            "t", edge_file, snapshot_cache_dir=cache, restrict_to_lcc=False
        )
        lcc = load_snap_dataset(
            "t", edge_file, snapshot_cache_dir=cache, restrict_to_lcc=True
        )
        assert len(list(cache.glob("parse-*.store"))) == 2
        assert full.graph.number_of_nodes() >= lcc.graph.number_of_nodes()

    def test_skill_parameters_share_one_entry(self, edge_file, tmp_path):
        from repro.datasets.loaders import load_snap_dataset

        cache = tmp_path / "cache"
        load_snap_dataset("t", edge_file, seed=1, snapshot_cache_dir=cache)
        load_snap_dataset(
            "t", edge_file, seed=2, num_synthetic_skills=50, snapshot_cache_dir=cache
        )
        assert len(list(cache.glob("parse-*.store"))) == 1

    def test_env_var_enables_cache(self, edge_file, tmp_path, monkeypatch):
        from repro.datasets.loaders import SNAPSHOT_CACHE_ENV, load_snap_dataset

        cache = tmp_path / "envcache"
        monkeypatch.setenv(SNAPSHOT_CACHE_ENV, str(cache))
        first = load_snap_dataset("t", edge_file, seed=4)
        assert len(list(cache.glob("parse-*.store"))) == 1
        second = load_snap_dataset("t", edge_file, seed=4)
        assert self._signature(first) == self._signature(second)

    def test_corrupt_entry_falls_back_to_parse(self, edge_file, tmp_path):
        from repro.datasets.loaders import load_snap_dataset

        cache = tmp_path / "cache"
        cold = load_snap_dataset("t", edge_file, seed=6)
        load_snap_dataset("t", edge_file, seed=6, snapshot_cache_dir=cache)
        (entry,) = cache.glob("parse-*.store")
        entry.write_bytes(b"garbage")
        recovered = load_snap_dataset(
            "t", edge_file, seed=6, snapshot_cache_dir=cache
        )
        assert self._signature(cold) == self._signature(recovered)
        # The bad entry was rewritten as a valid store file.
        assert snapshot_info(str(entry))["num_nodes"] > 0

    def test_no_cache_dir_means_no_files(self, edge_file, tmp_path, monkeypatch):
        from repro.datasets.loaders import SNAPSHOT_CACHE_ENV, load_snap_dataset

        monkeypatch.delenv(SNAPSHOT_CACHE_ENV, raising=False)
        load_snap_dataset("t", edge_file)
        assert list(tmp_path.glob("**/*.store")) == []
