"""Tests for structural-balance analysis."""

from __future__ import annotations

import pytest

from repro.signed import (
    NEGATIVE,
    POSITIVE,
    SignedGraph,
    harary_bipartition,
    induced_subgraph_is_balanced,
    is_balanced,
    path_is_balanced,
    triangle_census,
)
from repro.signed.balance import balanced_triangle_fraction, frustration_index_greedy


class TestHararyBipartition:
    def test_all_positive_graph_is_balanced(self, triangle_balanced):
        report = harary_bipartition(triangle_balanced)
        assert report.balanced
        camp_a, camp_b = report.partition
        assert camp_a | camp_b == {0, 1, 2}
        assert camp_b == frozenset()

    def test_unbalanced_triangle_detected(self, triangle_unbalanced):
        report = harary_bipartition(triangle_unbalanced)
        assert not report.balanced
        assert report.violating_edge is not None
        u, v = report.violating_edge
        assert triangle_unbalanced.has_edge(u, v)

    def test_two_faction_graph_partition_matches_factions(self, two_factions):
        report = harary_bipartition(two_factions)
        assert report.balanced
        camps = {frozenset(camp) for camp in report.partition}
        assert frozenset({0, 1, 2}) in camps
        assert frozenset({3, 4, 5}) in camps

    def test_all_negative_triangle_is_unbalanced(self):
        graph = SignedGraph.from_edges([(0, 1, -1), (1, 2, -1), (0, 2, -1)])
        assert not is_balanced(graph)

    def test_two_negative_one_positive_triangle_is_balanced(self):
        graph = SignedGraph.from_edges([(0, 1, -1), (1, 2, -1), (0, 2, +1)])
        assert is_balanced(graph)

    def test_disconnected_components_handled(self):
        graph = SignedGraph.from_edges([(0, 1, +1), (2, 3, -1)])
        assert is_balanced(graph)

    def test_empty_graph_is_balanced(self):
        assert is_balanced(SignedGraph())

    def test_negative_cycle_of_even_length_balanced(self):
        graph = SignedGraph.from_edges([(0, 1, -1), (1, 2, -1), (2, 3, -1), (3, 0, -1)])
        assert is_balanced(graph)

    def test_negative_cycle_of_odd_length_unbalanced(self):
        graph = SignedGraph.from_edges(
            [(0, 1, -1), (1, 2, -1), (2, 3, -1), (3, 4, -1), (4, 0, -1)]
        )
        assert not is_balanced(graph)


class TestInducedBalance:
    def test_induced_subset_of_unbalanced_graph_can_be_balanced(self, triangle_unbalanced):
        assert induced_subgraph_is_balanced(triangle_unbalanced, [0, 1])
        assert not induced_subgraph_is_balanced(triangle_unbalanced, [0, 1, 2])

    def test_path_is_balanced_uses_shortcut_edges(self, figure_1a):
        # The positive path (u, x2, x1, v) is NOT balanced because the shortcut
        # edge (u, x1) closes an unbalanced triangle.
        assert not path_is_balanced(figure_1a, ["u", "x2", "x1", "v"])
        # The longer positive path is balanced (its induced subgraph is a tree).
        assert path_is_balanced(figure_1a, ["u", "x2", "x3", "x4", "v"])

    def test_single_node_path_is_balanced(self, figure_1a):
        assert path_is_balanced(figure_1a, ["u"])


class TestTriangleCensus:
    def test_census_counts_types(self, two_factions):
        census = triangle_census(two_factions)
        assert census["+++"] == 2  # one all-positive triangle per faction
        assert sum(census.values()) == 2

    def test_unbalanced_triangle_counted(self, triangle_unbalanced):
        census = triangle_census(triangle_unbalanced)
        assert census["++-"] == 1
        assert sum(census.values()) == 1

    def test_balanced_fraction_no_triangles(self, line_graph):
        assert balanced_triangle_fraction(line_graph) == 1.0

    def test_balanced_fraction_mixed(self):
        graph = SignedGraph.from_edges(
            [
                (0, 1, +1), (1, 2, +1), (0, 2, +1),       # balanced (+++)
                (3, 4, +1), (4, 5, +1), (3, 5, -1),       # unbalanced (++-)
            ]
        )
        assert balanced_triangle_fraction(graph) == pytest.approx(0.5)


class TestFrustrationIndex:
    def test_balanced_graph_has_zero_frustration(self, two_factions):
        count, assignment = frustration_index_greedy(two_factions, seed=1)
        assert count == 0
        assert set(assignment) == set(two_factions.nodes())

    def test_unbalanced_triangle_has_one_frustrated_edge(self, triangle_unbalanced):
        count, _ = frustration_index_greedy(triangle_unbalanced, iterations=5, seed=3)
        assert count == 1

    def test_invalid_iterations_rejected(self, triangle_balanced):
        with pytest.raises(ValueError):
            frustration_index_greedy(triangle_balanced, iterations=0)

    def test_deterministic_given_seed(self, small_random_graph):
        first, _ = frustration_index_greedy(small_random_graph, seed=11)
        second, _ = frustration_index_greedy(small_random_graph, seed=11)
        assert first == second
