"""Tests for the indexed CSR backend: construction, kernels, backend equivalence.

The load-bearing guarantee is *bit-identical equivalence*: every CSR algorithm
must return exactly the counts / lengths the dict reference implementation
returns, on synthetic random graphs (connected and disconnected, every
topology) and on loader-built datasets with string node ids.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.compatibility import (
    make_relation,
    source_sampled_pair_statistics,
)
from repro.datasets import load_dataset, synthetic_signed_network
from repro.exceptions import NodeNotFoundError
from repro.signed import (
    CSRSignedGraph,
    SignedGraph,
    multi_source_signed_bfs,
    shortest_path_lengths,
    shortest_path_lengths_csr,
    shortest_signed_walk_lengths,
    shortest_signed_walk_lengths_csr,
    signed_bfs,
    signed_bfs_csr,
)
from repro.signed.csr import UNREACHABLE, CSRLengths


def random_signed_graph(seed: int, num_nodes: int = 30, edge_prob: float = 0.12) -> SignedGraph:
    """A random signed graph that may be disconnected and has isolated nodes."""
    rng = random.Random(seed)
    nodes = list(range(num_nodes))
    edges = []
    for u in nodes:
        for v in nodes[u + 1 :]:
            if rng.random() < edge_prob:
                edges.append((u, v, rng.choice([1, -1])))
    return SignedGraph.from_edges(edges, nodes=nodes)


@pytest.fixture(scope="module")
def loader_graph() -> SignedGraph:
    """A loader-built graph with non-integer node ids."""
    return load_dataset("slashdot", seed=3, scale=0.25).graph


class TestConstruction:
    def test_round_trip_preserves_structure(self, two_factions):
        csr = CSRSignedGraph.from_signed_graph(two_factions)
        assert csr.number_of_nodes() == two_factions.number_of_nodes()
        assert csr.number_of_edges() == two_factions.number_of_edges()
        assert csr.nodes() == two_factions.nodes()
        degrees = csr.degrees()
        for node in two_factions.nodes():
            assert degrees[csr.index_of(node)] == two_factions.degree(node)

    def test_signs_match_adjacency(self, two_factions):
        csr = CSRSignedGraph.from_signed_graph(two_factions)
        for node in two_factions.nodes():
            dense = csr.index_of(node)
            start, end = csr.indptr[dense], csr.indptr[dense + 1]
            for neighbor_id, sign in zip(csr.indices[start:end], csr.signs[start:end]):
                neighbor = csr.node_at(int(neighbor_id))
                assert two_factions.sign(node, neighbor) == sign

    def test_unknown_node_raises(self, two_factions):
        csr = CSRSignedGraph.from_signed_graph(two_factions)
        with pytest.raises(NodeNotFoundError):
            csr.index_of("ghost")
        assert "ghost" not in csr
        assert 0 in csr

    def test_from_edges(self):
        csr = CSRSignedGraph.from_edges([(0, 1, +1), (1, 2, -1)])
        assert csr.number_of_nodes() == 3
        assert csr.number_of_edges() == 2

    def test_empty_graph(self):
        csr = CSRSignedGraph.from_signed_graph(SignedGraph())
        assert csr.number_of_nodes() == 0
        assert len(csr.indices) == 0


class TestCSRView:
    def test_view_is_cached(self, two_factions):
        assert two_factions.csr_view() is two_factions.csr_view()

    def test_view_invalidated_by_mutation(self, two_factions):
        before = two_factions.csr_view()
        two_factions.set_sign(2, 3, +1)
        after = two_factions.csr_view()
        assert after is not before
        dense_u, dense_v = after.index_of(2), after.index_of(3)
        start, end = after.indptr[dense_u], after.indptr[dense_u + 1]
        slot = list(after.indices[start:end]).index(dense_v)
        assert after.signs[start + slot] == +1

    def test_noop_add_node_keeps_view(self, two_factions):
        before = two_factions.csr_view()
        two_factions.add_node(0)  # already present
        assert two_factions.csr_view() is before


class TestSignedBFSEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_bit_identical(self, seed):
        graph = random_signed_graph(seed)
        csr = graph.csr_view()
        for source in graph.nodes()[::5]:
            expected = signed_bfs(graph, source)
            actual = signed_bfs_csr(csr, source).to_signed_bfs_result()
            assert actual.lengths == expected.lengths
            assert actual.positive_counts == expected.positive_counts
            assert actual.negative_counts == expected.negative_counts

    @pytest.mark.parametrize(
        "topology", ["scale_free", "small_world", "erdos_renyi"]
    )
    def test_synthetic_topologies(self, topology):
        graph, _ = synthetic_signed_network(
            120, average_degree=5.0, negative_fraction=0.3, topology=topology, seed=11
        )
        csr = graph.csr_view()
        for source in graph.nodes()[:10]:
            expected = signed_bfs(graph, source)
            actual = signed_bfs_csr(csr, source).to_signed_bfs_result()
            assert actual.lengths == expected.lengths
            assert actual.positive_counts == expected.positive_counts
            assert actual.negative_counts == expected.negative_counts

    def test_high_diameter_path_graph(self):
        # A path graph maximises BFS depth: exercises the small-frontier
        # (sort-based) branch of the next-frontier rebuild on every level.
        rng = random.Random(31)
        num_nodes = 600
        edges = [(i, i + 1, rng.choice([1, -1])) for i in range(num_nodes - 1)]
        graph = SignedGraph.from_edges(edges)
        csr = graph.csr_view()
        for source in (0, num_nodes // 2, num_nodes - 1):
            expected = signed_bfs(graph, source)
            actual = signed_bfs_csr(csr, source).to_signed_bfs_result()
            assert actual.lengths == expected.lengths
            assert actual.positive_counts == expected.positive_counts
            assert actual.negative_counts == expected.negative_counts
            pos_expected, neg_expected = shortest_signed_walk_lengths(graph, source)
            pos, neg = shortest_signed_walk_lengths_csr(csr, source)
            nodes = csr.nodes()
            assert {nodes[i]: int(pos[i]) for i in np.flatnonzero(pos != UNREACHABLE)} == pos_expected
            assert {nodes[i]: int(neg[i]) for i in np.flatnonzero(neg != UNREACHABLE)} == neg_expected

    def test_loader_built_graph_with_string_ids(self, loader_graph):
        csr = loader_graph.csr_view()
        for source in loader_graph.nodes()[:5]:
            expected = signed_bfs(loader_graph, source)
            actual = signed_bfs_csr(csr, source).to_signed_bfs_result()
            assert actual.lengths == expected.lengths
            assert actual.positive_counts == expected.positive_counts
            assert actual.negative_counts == expected.negative_counts

    def test_array_result_queries_match_dict_result(self):
        graph = random_signed_graph(99)
        source = graph.nodes()[0]
        expected = signed_bfs(graph, source)
        actual = signed_bfs_csr(graph.csr_view(), source)
        for node in graph.nodes():
            assert actual.reachable(node) == expected.reachable(node)
            assert actual.length(node) == expected.length(node)
            assert actual.counts(node) == expected.counts(node)
        assert actual.reachable_count() == len(expected.lengths)

    def test_missing_source_raises(self, two_factions):
        with pytest.raises(NodeNotFoundError):
            signed_bfs_csr(two_factions.csr_view(), "ghost")

    def test_overflow_guard_raises_before_wrapping(self):
        # A doubling ladder: layer k is reached by 2**k shortest paths, so 66
        # layers push the counts past int64.  The guard must raise (not wrap)
        # and the relation must transparently fall back to the dict backend,
        # whose big integers agree with brute maths.
        edges = []
        previous = ["s"]
        for layer in range(66):
            current = [(layer, 0), (layer, 1)]
            for node in current:
                for parent in previous:
                    edges.append((parent, node, 1))
            previous = current
        edges.append((previous[0], "t", 1))
        edges.append((previous[1], "t", 1))
        graph = SignedGraph.from_edges(edges)
        with pytest.raises(OverflowError):
            signed_bfs_csr(graph.csr_view(), "s")
        relation = make_relation("SPO", graph, backend="csr")
        assert relation.are_compatible("s", "t")  # falls back, no crash
        expected = signed_bfs(graph, "s")
        assert expected.positive_counts["t"] == 2**66  # needs big ints
        assert relation.batch_compatibility_degrees(["s"]) == [
            len(relation.compatible_with("s")) - 1
        ]

    def test_result_equality_is_identity_not_a_crash(self, two_factions):
        # Array-field dataclasses must not inherit the value __eq__ (ambiguous
        # truth value); equality is identity, membership checks work.
        csr = two_factions.csr_view()
        first = signed_bfs_csr(csr, 0)
        second = signed_bfs_csr(csr, 0)
        assert first == first
        assert first != second
        assert first in [first, second]

    def test_multi_source_preserves_order(self):
        graph = random_signed_graph(5)
        sources = graph.nodes()[:6]
        results = multi_source_signed_bfs(graph.csr_view(), sources)
        assert [result.source for result in results] == sources


class TestOtherKernels:
    @pytest.mark.parametrize("seed", range(5))
    def test_shortest_path_lengths_equivalence(self, seed):
        graph = random_signed_graph(seed)
        csr = graph.csr_view()
        for source in graph.nodes()[::7]:
            expected = shortest_path_lengths(graph, source)
            lengths = shortest_path_lengths_csr(csr, source)
            view = CSRLengths(csr, lengths)
            assert dict(view.items()) == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_signed_walk_lengths_equivalence(self, seed):
        graph = random_signed_graph(seed, edge_prob=0.15)
        csr = graph.csr_view()
        for source in graph.nodes()[::7]:
            expected_pos, expected_neg = shortest_signed_walk_lengths(graph, source)
            pos, neg = shortest_signed_walk_lengths_csr(csr, source)
            nodes = csr.nodes()
            actual_pos = {
                nodes[i]: int(pos[i]) for i in np.flatnonzero(pos != UNREACHABLE)
            }
            actual_neg = {
                nodes[i]: int(neg[i]) for i in np.flatnonzero(neg != UNREACHABLE)
            }
            assert actual_pos == expected_pos
            assert actual_neg == expected_neg

    def test_csr_lengths_mapping_protocol(self):
        graph = SignedGraph.from_edges([(0, 1, +1)], nodes=["iso"])
        csr = graph.csr_view()
        view = CSRLengths(csr, shortest_path_lengths_csr(csr, 0))
        assert view[1] == 1
        assert view.get("iso") is None
        assert "iso" not in view
        assert view.get("ghost", -7) == -7
        with pytest.raises(KeyError):
            view["iso"]
        assert len(view) == 2
        # Iteration behaves like the dict the small-graph code path returns.
        assert sorted(view, key=repr) == [0, 1]
        assert sorted(view.keys(), key=repr) == [0, 1]

    @pytest.mark.parametrize("seed", range(3))
    def test_write_into_batches_match_allocating_batches(self, seed):
        """The ``*_into`` cores (result shipping) fill caller buffers with the
        exact bytes the allocating batches return — including through
        non-contiguous buffers, which must route around the lockstep reshape
        instead of silently writing into a copy."""
        from repro.signed.csr import (
            shortest_path_lengths_dense_batch,
            shortest_path_lengths_dense_batch_into,
            signed_bfs_dense_batch,
            signed_bfs_dense_batch_into,
        )

        graph = random_signed_graph(seed)
        csr = graph.csr_view()
        n = csr.number_of_nodes()
        dense = list(range(0, n, 3))
        k = len(dense)
        expected = signed_bfs_dense_batch(csr, dense)
        buffers = [
            (  # contiguous: the lockstep fast path
                np.empty((k, n), dtype=np.int32),
                np.empty((k, n), dtype=np.int64),
                np.empty((k, n), dtype=np.int64),
            ),
            (  # non-contiguous column slices: must take the per-source path
                np.empty((k, n + 3), dtype=np.int32)[:, :n],
                np.empty((k, n + 3), dtype=np.int64)[:, :n],
                np.empty((k, n + 3), dtype=np.int64)[:, :n],
            ),
        ]
        for lengths, positive, negative in buffers:
            tokens = signed_bfs_dense_batch_into(csr, dense, lengths, positive, negative)
            assert tokens == [True] * k
            for row, triple in enumerate(expected):
                assert np.array_equal(lengths[row], triple[0])
                assert np.array_equal(positive[row], triple[1])
                assert np.array_equal(negative[row], triple[2])
        expected_lengths = shortest_path_lengths_dense_batch(csr, dense)
        for out in (
            np.empty((k, n), dtype=np.int32),
            np.empty((k, n + 5), dtype=np.int32)[:, :n],
        ):
            assert shortest_path_lengths_dense_batch_into(csr, dense, out) == [True] * k
            for row, arr in enumerate(expected_lengths):
                assert np.array_equal(out[row], arr)

    def test_nodes_returns_defensive_copy(self, two_factions):
        csr = CSRSignedGraph.from_signed_graph(two_factions)
        mutated = csr.nodes()
        mutated.reverse()
        # The snapshot's dense-id mapping is untouched by caller mutation.
        assert csr.nodes() == two_factions.nodes()
        assert csr.node_at(csr.index_of(0)) == 0


class TestRelationBackendEquivalence:
    @pytest.mark.parametrize("name", ["SPA", "SPM", "SPO"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_compatible_sets_identical(self, name, seed):
        graph = random_signed_graph(seed, num_nodes=40, edge_prob=0.1)
        dict_relation = make_relation(name, graph, backend="dict")
        csr_relation = make_relation(name, graph, backend="csr")
        for node in graph.nodes():
            assert dict_relation.compatible_with(node) == csr_relation.compatible_with(node)

    @pytest.mark.parametrize("name", ["SPA", "SPM", "SPO"])
    def test_pair_queries_identical(self, name):
        graph = random_signed_graph(7, num_nodes=25, edge_prob=0.15)
        dict_relation = make_relation(name, graph, backend="dict")
        csr_relation = make_relation(name, graph, backend="csr")
        nodes = graph.nodes()
        for u in nodes[::3]:
            for v in nodes[::4]:
                assert dict_relation.are_compatible(u, v) == csr_relation.are_compatible(u, v)

    @pytest.mark.parametrize("name", ["SPA", "SPM", "SPO"])
    def test_batch_degrees_identical(self, name):
        graph = random_signed_graph(3, num_nodes=35)
        dict_relation = make_relation(name, graph, backend="dict")
        csr_relation = make_relation(name, graph, backend="csr")
        sources = graph.nodes()[::2]
        assert (
            dict_relation.batch_compatibility_degrees(sources)
            == csr_relation.batch_compatibility_degrees(sources)
        )

    def test_batch_degrees_correct_under_cache_eviction(self):
        # A sample larger than the BFS LRU must still be one batched pass with
        # correct counts (results are held locally, not read back through the
        # evicting cache).
        graph = random_signed_graph(23, num_nodes=30)
        small_cache = make_relation("SPO", graph, backend="csr", bfs_cache_size=2)
        reference = make_relation("SPO", graph, backend="dict")
        sources = graph.nodes()
        assert small_cache.batch_compatibility_degrees(sources) == [
            reference.compatibility_degree(source) for source in sources
        ]

    def test_distance_oracle_follows_relation_backend(self):
        # A relation pinned to the dict backend keeps its oracle on the dict
        # BFS regardless of graph size; a csr-pinned one opts in immediately.
        from repro.compatibility import DistanceOracle

        graph = random_signed_graph(29, num_nodes=20)
        dict_oracle = DistanceOracle(make_relation("SPO", graph, backend="dict"))
        csr_oracle = DistanceOracle(make_relation("SPO", graph, backend="csr"))
        assert not dict_oracle._use_csr()
        assert csr_oracle._use_csr()
        for u in graph.nodes()[::4]:
            for v in graph.nodes()[::5]:
                assert dict_oracle.distance(u, v) == csr_oracle.distance(u, v)

    def test_balanced_batch_degrees_match_compatible_with(self):
        # The balanced relations' streaming batch path must agree with the
        # per-source symmetric closure used by compatible_with.
        graph = random_signed_graph(17, num_nodes=25, edge_prob=0.15)
        batch_relation = make_relation("SBPH", graph)
        set_relation = make_relation("SBPH", graph)
        sources = graph.nodes()[::3]
        batched = batch_relation.batch_compatibility_degrees(sources)
        expected = [len(set_relation.compatible_with(s)) - 1 for s in sources]
        assert batched == expected

    def test_balanced_batch_sets_warm_the_compatible_cache(self):
        # batch_compatible_sets returns exactly compatible_with's sets and
        # seeds the per-source cache so follow-up queries are hits.
        graph = random_signed_graph(11, num_nodes=20, edge_prob=0.2)
        relation = make_relation("SBPH", graph)
        sources = graph.nodes()[::4]
        batched = relation.batch_compatible_sets(sources)
        for source, found in zip(sources, batched):
            assert source in found
            assert relation.compatible_with(source) == found
        # Fresh-relation comparison: same sets without the batch warm-up.
        reference = make_relation("SBPH", graph)
        for source, found in zip(sources, batched):
            assert reference.compatible_with(source) == found

    def test_source_sampled_statistics_identical_for_sbph(self):
        # The sampled estimator routes SBPH through the batch entry point; its
        # counts must match summing the symmetric compatible sets by hand.
        from repro.utils import ensure_rng

        graph = random_signed_graph(19, num_nodes=30, edge_prob=0.12)
        batch_stats = source_sampled_pair_statistics(make_relation("SBPH", graph), 8, seed=4)
        relation = make_relation("SBPH", graph)
        sampled = ensure_rng(4).sample(graph.nodes(), 8)
        compatible = sum(len(relation.compatible_with(s)) - 1 for s in sampled)
        assert batch_stats.compatible_pairs == compatible

    def test_source_sampled_statistics_identical(self):
        graph = random_signed_graph(13, num_nodes=50, edge_prob=0.08)
        dict_stats = source_sampled_pair_statistics(
            make_relation("SPO", graph, backend="dict"), 12, seed=21
        )
        csr_stats = source_sampled_pair_statistics(
            make_relation("SPO", graph, backend="csr"), 12, seed=21
        )
        assert dict_stats.compatible_pairs == csr_stats.compatible_pairs
        assert dict_stats.evaluated_pairs == csr_stats.evaluated_pairs

    def test_auto_backend_picks_dict_on_small_graphs(self, two_factions):
        relation = make_relation("SPO", two_factions)  # backend="auto"
        assert not relation._use_csr()
        assert relation.are_compatible(0, 1)

    def test_invalid_backend_rejected(self, two_factions):
        with pytest.raises(ValueError):
            make_relation("SPO", two_factions, backend="gpu")

    def test_csr_backend_on_loader_graph(self, loader_graph):
        dict_relation = make_relation("SPA", loader_graph, backend="dict")
        csr_relation = make_relation("SPA", loader_graph, backend="csr")
        for node in loader_graph.nodes()[:8]:
            assert dict_relation.compatible_with(node) == csr_relation.compatible_with(node)
