"""CSR-first ingestion: bit-identity with the dict parser, the lazy facade,
the ``csr_only`` loader path, label carry-through and the scale helpers.

The load-bearing guarantee is that the vectorised path is *bit-identical* to
the reference dict pipeline — same node order, same CSR planes, same skills —
or it declines (returns ``None``) and the caller falls back to the dict
parser.  Anything in between would silently change experiment results.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compatibility import CompatibilityEngine, DistanceOracle, make_relation
from repro.datasets import (
    attach_cached_labels,
    cache_stats,
    load_snap_dataset,
    million_scale_dataset,
    reset_cache_stats,
    synthetic_csr_network,
)
from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.signed import (
    CSRSignedGraph,
    SignedGraph,
    as_signed_graph,
    parse_edge_list_csr,
)
from repro.signed.components import largest_connected_component
from repro.signed.io import read_edge_list
from repro.signed.ingest import component_labels, read_edge_arrays, read_edge_tokens
from repro.signed.labels import (
    build_label_index,
    labels_equal,
    register_snapshot_labels,
    snapshot_labels_for,
)
from repro.signed.lazy import CSRBackedSignedGraph
from repro.signed.store import load_labels
from repro.utils.timing import measure_peak_rss, peak_rss_bytes

POLICIES = ("keep_first", "negative_wins")


def write_edges(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="ascii")
    return path


def random_edge_lines(seed, num_nodes=40, num_lines=160):
    """Messy but vectorisable edge lines: duplicates, reversals, self-loops."""
    rng = random.Random(seed)
    lines = []
    for _ in range(num_lines):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        sign = rng.choice((1, -1))
        lines.append(f"{u} {v} {sign}")
        if rng.random() < 0.25:  # reciprocal edge, possibly conflicting
            lines.append(f"{v} {u} {rng.choice((1, -1))}")
    return lines


def dict_reference(path, policy="keep_first", lcc=False):
    """The reference parse: dict pipeline, optionally LCC-restricted."""
    graph = read_edge_list(path, directed_to_undirected=policy)
    return largest_connected_component(graph) if lcc else graph


def assert_csr_equal(left: CSRSignedGraph, right: CSRSignedGraph):
    assert left._nodes == right._nodes
    assert np.array_equal(left.indptr, right.indptr)
    assert np.array_equal(left.indices, right.indices)
    assert np.array_equal(left.signs, right.signs)


class TestVectorisedParseEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("lcc", (False, True))
    def test_random_edge_lists_bit_identical(self, tmp_path, policy, lcc):
        for seed in range(6):
            path = write_edges(tmp_path / f"r{seed}.edges", random_edge_lines(seed))
            reference = dict_reference(path, policy, lcc)
            vectorised = parse_edge_list_csr(
                path, directed_to_undirected=policy, restrict_to_lcc=lcc
            )
            assert vectorised is not None
            assert_csr_equal(vectorised, CSRSignedGraph.from_signed_graph(reference))

    def test_comments_separators_and_blank_lines(self, tmp_path):
        path = write_edges(
            tmp_path / "messy.edges",
            [
                "# a comment",
                "",
                "1\t2\t1",
                "2,3,-1",
                "   % another comment",
                "3 1 +1",
                "  4 1 -1  ",
            ],
        )
        reference = dict_reference(path)
        vectorised = parse_edge_list_csr(path)
        assert vectorised is not None
        assert_csr_equal(vectorised, CSRSignedGraph.from_signed_graph(reference))

    def test_empty_and_comment_only_files(self, tmp_path):
        for name, text in (("empty.edges", ""), ("comments.edges", "# nothing\n")):
            path = tmp_path / name
            path.write_text(text, encoding="ascii")
            vectorised = parse_edge_list_csr(path)
            assert vectorised is not None
            assert vectorised.number_of_nodes() == 0
            assert vectorised.number_of_edges() == 0

    @pytest.mark.parametrize(
        "line",
        [
            "1 2 01",  # "01" is not a valid sign token to the dict parser
            "01 2 1",  # int("01") == int("1"): non-bijective label coercion
            "1 2",  # missing sign column
            "1 2 2",  # sign outside ±1
            "a b",  # short line in token mode
            "1_0 2 1",  # underscore int literal: int("1_0") == 10
        ],
    )
    def test_unsupported_inputs_fall_back(self, tmp_path, line):
        path = write_edges(tmp_path / "odd.edges", ["1 2 1", line])
        assert parse_edge_list_csr(path) is None

    @pytest.mark.parametrize(
        "lines",
        [
            ["a b 1", "b c -1"],  # string labels via the token-mode scanner
            ["1 2 +", "2 3 -"],  # bare sign characters
            ["1 2 1 3", "2 3 -1 weight"],  # extra columns (dict takes first 3)
            ["1 12345678901234567890 1"],  # >int64 but canonical decimal
            ["1-2 3 1"],  # glued sign: a string label to both parsers
        ],
    )
    def test_token_mode_inputs_match_dict_parser(self, tmp_path, lines):
        path = write_edges(tmp_path / "tok.edges", ["1 2 1"] + lines)
        vectorised = parse_edge_list_csr(path)
        assert vectorised is not None
        assert_csr_equal(
            vectorised, CSRSignedGraph.from_signed_graph(dict_reference(path))
        )

    def test_error_policy_conflict_falls_back(self, tmp_path):
        path = write_edges(tmp_path / "conflict.edges", ["1 2 1", "2 1 -1"])
        assert parse_edge_list_csr(path, directed_to_undirected="error") is None
        # ... and without a conflict the error policy vectorises fine.
        clean = write_edges(tmp_path / "clean.edges", ["1 2 1", "2 3 -1"])
        vectorised = parse_edge_list_csr(clean, directed_to_undirected="error")
        reference = dict_reference(clean, policy="error")
        assert_csr_equal(vectorised, CSRSignedGraph.from_signed_graph(reference))

    def test_invalid_policy_message_matches_dict_parser(self, tmp_path):
        path = write_edges(tmp_path / "p.edges", ["1 2 1"])
        with pytest.raises(ValueError) as vector_error:
            parse_edge_list_csr(path, directed_to_undirected="bogus")
        with pytest.raises(ValueError) as dict_error:
            read_edge_list(path, directed_to_undirected="bogus")
        assert str(vector_error.value) == str(dict_error.value)

    def test_read_edge_arrays_round_trip(self, tmp_path):
        path = write_edges(tmp_path / "raw.edges", ["0 1 1", "1 2 -1", "2 0 1"])
        u, v, s = read_edge_arrays(path)
        assert u.tolist() == [0, 1, 2]
        assert v.tolist() == [1, 2, 0]
        assert s.tolist() == [1, -1, 1]

    def test_chunk_boundaries_do_not_change_the_result(self, tmp_path):
        path = write_edges(tmp_path / "chunks.edges", random_edge_lines(99))
        whole = parse_edge_list_csr(path)
        for chunk_bytes in (16, 64, 257):
            chunked = parse_edge_list_csr(path, chunk_bytes=chunk_bytes)
            assert chunked is not None
            assert_csr_equal(whole, chunked)

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(0, 12),
                st.integers(0, 12),
                st.sampled_from((1, -1)),
            ),
            max_size=40,
        ),
        policy=st.sampled_from(POLICIES),
        lcc=st.booleans(),
    )
    def test_hypothesis_bit_identity(self, tmp_path, edges, policy, lcc):
        path = write_edges(
            tmp_path / "h.edges", [f"{u} {v} {s}" for u, v, s in edges] or [""]
        )
        reference = dict_reference(path, policy, lcc)
        vectorised = parse_edge_list_csr(
            path, directed_to_undirected=policy, restrict_to_lcc=lcc
        )
        assert vectorised is not None
        assert_csr_equal(vectorised, CSRSignedGraph.from_signed_graph(reference))


class TestTokenModeIngest:
    """String/quoted node labels through the bytes-token ``np.unique`` pass."""

    def random_name_lines(self, seed, num_lines=140):
        rng = random.Random(seed)
        names = (
            [f"user{i}" for i in range(20)]
            + [f'"quoted {i}"'.replace(" ", "_") for i in range(6)]
            + [str(i) for i in range(8)]  # mixed int labels
        )
        signs = ("1", "+1", "-1", "+", "-")
        return [
            f"{rng.choice(names)} {rng.choice(names)} {rng.choice(signs)}"
            for _ in range(num_lines)
        ]

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("lcc", (False, True))
    def test_string_labels_bit_identical(self, tmp_path, policy, lcc):
        for seed in range(4):
            path = write_edges(
                tmp_path / f"s{seed}.edges", self.random_name_lines(seed)
            )
            reference = dict_reference(path, policy, lcc)
            vectorised = parse_edge_list_csr(
                path, directed_to_undirected=policy, restrict_to_lcc=lcc
            )
            assert vectorised is not None
            assert_csr_equal(vectorised, CSRSignedGraph.from_signed_graph(reference))

    def test_chunk_boundaries_do_not_change_the_result(self, tmp_path):
        path = write_edges(tmp_path / "tchunk.edges", self.random_name_lines(42))
        whole = parse_edge_list_csr(path)
        assert whole is not None
        for chunk_bytes in (16, 64, 257):
            chunked = parse_edge_list_csr(path, chunk_bytes=chunk_bytes)
            assert chunked is not None
            assert_csr_equal(whole, chunked)

    def test_read_edge_tokens_round_trip(self, tmp_path):
        path = write_edges(
            tmp_path / "raw.edges", ["a b 1", "b 5 -", "5 a +1", "# done"]
        )
        u, v, s, labels = read_edge_tokens(path)
        resolve = lambda ids: [labels[i] for i in ids.tolist()]
        assert resolve(u) == ["a", "b", 5]
        assert resolve(v) == ["b", 5, "a"]
        assert s.tolist() == [1, -1, 1]

    def test_comments_and_separators(self, tmp_path):
        path = write_edges(
            tmp_path / "messy.edges",
            [
                "# led by a comment",
                "alice\tbob\t+",
                "bob,carol,-1",
                "   % mid comment",
                "  carol alice 1  ",
                "",
            ],
        )
        vectorised = parse_edge_list_csr(path)
        assert vectorised is not None
        assert_csr_equal(
            vectorised, CSRSignedGraph.from_signed_graph(dict_reference(path))
        )
        assert vectorised._nodes == ["alice", "bob", "carol"]

    def test_non_bijective_int_coercion_falls_back(self, tmp_path):
        # int("+5") == int("5"): the dict parser merges the two spellings into
        # one node, which byte-distinct vocab ids cannot reproduce.
        path = write_edges(tmp_path / "coerce.edges", ["a 5 1", "+5 a -1"])
        assert parse_edge_list_csr(path) is None

    def test_non_ascii_and_overlong_labels_fall_back(self, tmp_path):
        utf8 = tmp_path / "utf8.edges"
        utf8.write_text("héllo wörld 1\n", encoding="utf-8")
        assert parse_edge_list_csr(utf8) is None
        overlong = write_edges(tmp_path / "long.edges", ["x" * 80 + " y 1"])
        assert parse_edge_list_csr(overlong) is None

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        edges=st.lists(
            st.tuples(
                st.sampled_from([f"n{i}" for i in range(8)] + ["3", "7"]),
                st.sampled_from([f"n{i}" for i in range(8)] + ["3", "7"]),
                st.sampled_from(("1", "+1", "-1", "+", "-")),
            ),
            max_size=30,
        ),
        policy=st.sampled_from(POLICIES),
        lcc=st.booleans(),
    )
    def test_hypothesis_bit_identity(self, tmp_path, edges, policy, lcc):
        path = write_edges(
            tmp_path / "ht.edges", [f"{u} {v} {s}" for u, v, s in edges] or [""]
        )
        reference = dict_reference(path, policy, lcc)
        vectorised = parse_edge_list_csr(
            path, directed_to_undirected=policy, restrict_to_lcc=lcc
        )
        assert vectorised is not None
        assert_csr_equal(vectorised, CSRSignedGraph.from_signed_graph(reference))


def small_csr(seed=5):
    """A small random CSR snapshot with a dict twin for comparison."""
    path_free_lines = random_edge_lines(seed, num_nodes=30, num_lines=90)
    reference = SignedGraph()
    for line in path_free_lines:
        u, v, s = line.split()
        if u != v:
            if not reference.has_edge(int(u), int(v)):
                reference.add_edge(int(u), int(v), int(s))
    return CSRSignedGraph.from_signed_graph(reference), reference


class TestLazyFacade:
    def test_as_signed_graph_is_canonical_and_typed(self):
        csr, reference = small_csr()
        wrapper = as_signed_graph(csr)
        assert isinstance(wrapper, CSRBackedSignedGraph)
        assert as_signed_graph(csr) is wrapper
        assert as_signed_graph(reference) is reference
        with pytest.raises(TypeError):
            as_signed_graph([1, 2, 3])

    def test_query_surface_matches_dict_graph(self):
        csr, reference = small_csr()
        wrapper = as_signed_graph(csr)
        assert len(wrapper) == len(reference)
        assert list(wrapper) == list(reference)
        assert wrapper.number_of_edges() == reference.number_of_edges()
        for node in reference.nodes():
            assert node in wrapper
            assert wrapper.degree(node) == reference.degree(node)
            assert sorted(wrapper.neighbors(node), key=repr) == sorted(
                reference.neighbors(node), key=repr
            )
            assert dict(wrapper.signed_neighbors(node)) == dict(
                reference.signed_neighbors(node)
            )
        with pytest.raises(NodeNotFoundError):
            wrapper.sign("missing", 0)
        some = next(iter(reference))
        with pytest.raises(EdgeNotFoundError):
            wrapper.sign(some, some)
        assert not wrapper.materialised  # reads never built dict adjacency

    @pytest.mark.parametrize("name", ("SPA", "SPM", "SPO", "SBPH", "NNE"))
    def test_relations_identical_on_bare_csr(self, name):
        csr, reference = small_csr()
        kwargs = {"max_expansions": 2_000} if name == "SBPH" else {}
        bare = make_relation(name, csr, **kwargs)
        dictionary = make_relation(name, reference, **kwargs)
        for node in reference.nodes():
            assert set(bare.compatible_with(node)) == set(
                dictionary.compatible_with(node)
            )

    def test_spa_stack_never_materialises(self):
        csr, reference = small_csr()
        relation = make_relation("SPA", csr)
        oracle = DistanceOracle(relation)
        engine = CompatibilityEngine(relation, oracle=oracle)
        nodes = list(reference.nodes())
        engine.compatible_sets(nodes)
        twin_oracle = DistanceOracle(make_relation("SPA", reference))
        for u in nodes[:4]:
            for v in nodes[:4]:
                assert oracle.distance(u, v) == twin_oracle.distance(u, v)
        assert relation.graph.materialised is False

    def test_mutation_stays_dict_free_and_keeps_csr_in_sync(self):
        csr, reference = small_csr()
        wrapper = as_signed_graph(csr)
        new_node = max(reference.nodes()) + 1
        anchor = next(iter(reference))
        for graph in (wrapper, reference):
            graph.add_edge(anchor, new_node, -1)
            graph.set_sign(anchor, new_node, +1)
            victim = next(iter(graph.neighbors(anchor)))
            graph.remove_edge(anchor, victim)
        assert not wrapper.materialised
        assert wrapper.generation == reference.generation
        assert_csr_equal(
            wrapper.csr_view(), CSRSignedGraph.from_signed_graph(reference)
        )
        assert not wrapper.materialised  # snapshotting churn is dict-free too

    def test_remove_node_materialises_and_stays_in_sync(self):
        csr, reference = small_csr()
        wrapper = as_signed_graph(csr)
        anchor = next(iter(reference))
        for graph in (wrapper, reference):
            graph.remove_node(anchor)
        assert wrapper.materialised
        assert_csr_equal(
            wrapper.csr_view(), CSRSignedGraph.from_signed_graph(reference)
        )


class TestCsrOnlyLoader:
    def test_cache_hit_serves_mmap_without_reparse(self, tmp_path):
        path = write_edges(tmp_path / "d.edges", random_edge_lines(11))
        cache = tmp_path / "cache"
        cache.mkdir()
        kwargs = dict(
            snapshot_cache_dir=cache, num_synthetic_skills=8, seed=3, csr_only=True
        )
        reset_cache_stats()
        first = load_snap_dataset("c", path, **kwargs)
        second = load_snap_dataset("c", path, **kwargs)
        assert cache_stats() == {"hits": 1, "misses": 1, "reparses": 0}
        for dataset in (first, second):
            assert isinstance(dataset.graph, CSRBackedSignedGraph)
            assert not dataset.graph.materialised
        assert list(first.graph) == list(second.graph)

    def test_csr_only_bit_identical_to_dict_path(self, tmp_path):
        path = write_edges(tmp_path / "d.edges", random_edge_lines(12))
        kwargs = dict(num_synthetic_skills=8, seed=3)
        dictionary = load_snap_dataset("c", path, **kwargs)
        bare = load_snap_dataset("c", path, csr_only=True, **kwargs)
        assert list(bare.graph) == list(dictionary.graph)
        assert_csr_equal(
            bare.graph.csr_view(),
            CSRSignedGraph.from_signed_graph(dictionary.graph),
        )
        for user in dictionary.skills.users():
            assert bare.skills.skills_of(user) == dictionary.skills.skills_of(user)

    def test_label_section_round_trip(self, tmp_path):
        path = write_edges(tmp_path / "d.edges", random_edge_lines(13))
        cache = tmp_path / "cache"
        cache.mkdir()
        kwargs = dict(
            snapshot_cache_dir=cache, num_synthetic_skills=8, seed=3, csr_only=True
        )
        first = load_snap_dataset("c", path, **kwargs)
        assert first.label_index is None
        labels = build_label_index(first.graph.csr_view(), mode="exact")
        assert attach_cached_labels(path, labels, snapshot_cache_dir=cache)
        reloaded = load_snap_dataset("c", path, **kwargs)
        assert reloaded.label_index is not None
        assert labels_equal(reloaded.label_index, labels)
        oracle = DistanceOracle(make_relation("SPA", reloaded.graph))
        oracle.attach_index(reloaded.label_index)
        twin = DistanceOracle(make_relation("SPA", first.graph))
        probe = list(first.graph)[:4]
        for u in probe:
            for v in probe:
                assert oracle.distance(u, v) == twin.distance(u, v)

    def test_attach_cached_labels_without_entry_is_false(self, tmp_path):
        path = write_edges(tmp_path / "d.edges", random_edge_lines(14))
        cache = tmp_path / "cache"
        cache.mkdir()
        labels = build_label_index(
            parse_edge_list_csr(path, restrict_to_lcc=True), mode="exact"
        )
        assert attach_cached_labels(path, labels, snapshot_cache_dir=cache) is False


class TestSnapshotLabelRegistry:
    def test_register_and_recover(self):
        csr, _ = small_csr()
        labels = build_label_index(csr, mode="exact")
        register_snapshot_labels(csr, labels)
        assert snapshot_labels_for(csr) is labels
        other, _ = small_csr(seed=6)
        assert snapshot_labels_for(other) is None

    def test_pool_store_publish_carries_labels(self, tmp_path):
        from repro.exec import ExecutionPolicy, executor_for, reset_executors
        from repro.exec import pool as pool_module

        csr, _ = small_csr()
        labels = build_label_index(csr, mode="exact")
        register_snapshot_labels(csr, labels)
        reset_executors()
        try:
            executor = executor_for(
                ExecutionPolicy(
                    backend="csr",
                    workers=2,
                    min_parallel_sources=1,
                    snapshot_store=str(tmp_path),
                )
            )
            sources = np.arange(min(4, csr.number_of_nodes()), dtype=np.int64)
            executor.map_kernel("csr_path_lengths", csr, sources, {})
            descriptor = executor._handle.published[id(csr)].descriptor
            assert descriptor.kind == "store"
            assert labels_equal(load_labels(descriptor.store_path), labels)
        finally:
            pool_module.shutdown_pools()
            reset_executors()


class TestSyntheticCsrScale:
    def test_structure_and_determinism(self):
        csr, factions = synthetic_csr_network(600, average_degree=6.0, seed=9)
        again, _ = synthetic_csr_network(600, average_degree=6.0, seed=9)
        assert_csr_equal(csr, again)
        assert csr._nodes == list(range(600))
        assert factions.shape == (600,)
        # The permutation-path backbone keeps the graph connected.
        assert np.unique(component_labels(csr.indptr, csr.indices)).size == 1
        edges = csr.number_of_edges()
        assert abs(edges - 600 * 3) <= 0.02 * 600 * 3  # duplicates are rare
        negative = int(np.count_nonzero(csr.signs < 0)) // 2
        assert abs(negative / edges - 0.17) < 0.01

    def test_signs_prefer_cross_faction_edges(self):
        csr, factions = synthetic_csr_network(
            500, average_degree=8.0, cross_faction_bias=1.0, seed=4
        )
        src = np.repeat(
            np.arange(500, dtype=np.int64), np.diff(csr.indptr).astype(np.int64)
        )
        negative = csr.signs < 0
        cross = factions[src] != factions[csr.indices]
        negative_rate_cross = np.count_nonzero(negative & cross) / max(
            1, np.count_nonzero(cross)
        )
        negative_rate_intra = np.count_nonzero(negative & ~cross) / max(
            1, np.count_nonzero(~cross)
        )
        assert negative_rate_cross > negative_rate_intra

    def test_million_dataset_small_scale(self):
        dataset = million_scale_dataset(seed=1, scale=0.001)
        assert dataset.name == "million"
        assert isinstance(dataset.graph, CSRBackedSignedGraph)
        assert not dataset.graph.materialised
        assert dataset.graph.number_of_nodes() == 1000
        assert set(dataset.skills.users()) == set(range(1000))
        assert all(
            dataset.skills.skills_of(user) for user in list(dataset.skills.users())[:50]
        )


class TestPeakRssHelpers:
    def test_peak_rss_bytes_positive(self):
        peak = peak_rss_bytes()
        assert peak is not None and peak > 0

    def test_measure_peak_rss_runs_in_child(self):
        result, peak, elapsed = measure_peak_rss(sum, range(100))
        assert result == 4950
        assert peak is not None and peak > 0
        assert elapsed >= 0.0

    def test_measure_peak_rss_propagates_errors(self):
        with pytest.raises(RuntimeError, match="ZeroDivisionError"):
            measure_peak_rss(_divide_by_zero)


def _divide_by_zero():
    return 1 / 0
