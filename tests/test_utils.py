"""Tests for the shared utilities (rng, validation, tables, timing)."""

from __future__ import annotations

import random
import time

import pytest

from repro.utils import (
    LRUCache,
    Timer,
    ensure_rng,
    format_percentage,
    format_table,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
    spawn_rngs,
)


class TestEnsureRng:
    def test_none_returns_random_instance(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_existing_rng_is_returned_unchanged(self):
        rng = random.Random(7)
        assert ensure_rng(rng) is rng

    def test_bool_seed_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count_respected(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_deterministic_given_seed(self):
        first = [rng.random() for rng in spawn_rngs(3, 4)]
        second = [rng.random() for rng in spawn_rngs(3, 4)]
        assert first == second

    def test_spawned_rngs_are_independent(self):
        rng_a, rng_b = spawn_rngs(9, 2)
        assert rng_a.random() != rng_b.random()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count_gives_empty_list(self):
        assert spawn_rngs(0, 0) == []


class TestValidation:
    def test_require_positive_accepts_positive(self):
        require_positive(3, "x")
        require_positive(0.1, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_require_positive_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            require_positive(value, "x")

    def test_require_positive_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            require_positive("3", "x")

    def test_require_positive_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive(True, "x")

    def test_require_non_negative_accepts_zero(self):
        require_non_negative(0, "y")

    def test_require_non_negative_rejects_negative(self):
        with pytest.raises(ValueError, match="y"):
            require_non_negative(-0.001, "y")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_require_probability_accepts_unit_interval(self, value):
        require_probability(value, "p")

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_require_probability_rejects_outside(self, value):
        with pytest.raises(ValueError, match="p"):
            require_probability(value, "p")

    def test_require_in_range_bounds_inclusive(self):
        require_in_range(5, "z", 5, 10)
        require_in_range(10, "z", 5, 10)
        with pytest.raises(ValueError):
            require_in_range(11, "z", 5, 10)


class TestFormatTable:
    def test_basic_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "22" in lines[-1]

    def test_none_rendered_as_dash(self):
        text = format_table(["a", "b"], [["x", None]])
        assert text.splitlines()[-1].endswith("-")

    def test_title_is_first_line(self):
        text = format_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_percentage(self):
        assert format_percentage(0.4472) == "44.72"
        assert format_percentage(1.0, decimals=0) == "100"


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer() as timer:
            time.sleep(0.001)
        assert timer.elapsed >= 0.001

    def test_elapsed_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().elapsed

    def test_elapsed_inside_block_is_live(self):
        with Timer() as timer:
            first = timer.elapsed
            time.sleep(0.001)
            assert timer.elapsed >= first


class TestLRUCache:
    def test_acts_as_mapping(self):
        cache = LRUCache()
        cache["a"] = 1
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 7) == 7

    def test_unbounded_by_default(self):
        cache = LRUCache()
        for i in range(10_000):
            cache[i] = i
        assert len(cache) == 10_000
        assert cache.evictions == 0

    def test_evicts_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1  # refresh "a"
        cache["c"] = 3              # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_overwrite_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"] = 10  # refresh + overwrite, no eviction
        cache["c"] = 3   # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_size_never_exceeds_maxsize(self):
        cache = LRUCache(maxsize=5)
        for i in range(50):
            cache[i] = i
        assert len(cache) == 5
        assert sorted(cache) == list(range(45, 50))

    def test_clear_and_statistics(self):
        cache = LRUCache(maxsize=3)
        cache["a"] = 1
        cache.get("a")
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.misses == 1
        assert "LRUCache" in repr(cache)

    def test_items_iterates_pairs(self):
        cache = LRUCache(maxsize=4)
        cache["a"] = 1
        cache["b"] = 2
        assert dict(cache.items()) == {"a": 1, "b": 2}

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)
        with pytest.raises(ValueError):
            LRUCache(maxsize=-3)
