"""Tests for the dataset generators, registry, loaders and statistics."""

from __future__ import annotations

import pytest

from repro.datasets import (
    PAPER_DATASETS,
    SignedDataset,
    available,
    dataset_statistics,
    epinions_like,
    faction_biased_signs,
    figure_1a_graph,
    figure_1b_graph,
    load_dataset,
    load_snap_dataset,
    register_dataset,
    slashdot_like,
    synthetic_signed_network,
    toy_dataset,
    wikipedia_like,
)
from repro.exceptions import DatasetError, UnknownDatasetError
from repro.signed import is_connected
from repro.signed.io import write_edge_list
from repro.skills.io import write_assignment


class TestSyntheticGenerators:
    def test_toy_dataset_structure(self):
        dataset = toy_dataset()
        assert dataset.name == "toy"
        assert dataset.graph.number_of_nodes() == 12
        assert is_connected(dataset.graph)
        assert dataset.skills.number_of_skills() > 0
        assert set(dataset.skills.users()) == set(dataset.graph.nodes())

    def test_slashdot_like_matches_paper_shape(self):
        dataset = slashdot_like(seed=13)
        graph = dataset.graph
        assert 180 <= graph.number_of_nodes() <= 260
        fraction = graph.number_of_negative_edges() / graph.number_of_edges()
        assert 0.25 <= fraction <= 0.33
        assert is_connected(graph)
        assert dataset.skills.number_of_skills() >= 500

    def test_epinions_like_scaled(self):
        dataset = epinions_like(seed=17, scale=0.01)
        graph = dataset.graph
        assert 200 <= graph.number_of_nodes() <= 300
        fraction = graph.number_of_negative_edges() / graph.number_of_edges()
        assert 0.12 <= fraction <= 0.22
        assert dataset.skills.number_of_skills() <= 523

    def test_wikipedia_like_scaled(self):
        dataset = wikipedia_like(seed=19, scale=0.03)
        fraction = (
            dataset.graph.number_of_negative_edges() / dataset.graph.number_of_edges()
        )
        assert 0.16 <= fraction <= 0.27
        assert is_connected(dataset.graph)

    def test_generators_are_deterministic(self):
        assert slashdot_like(seed=5).graph == slashdot_like(seed=5).graph
        assert epinions_like(seed=5, scale=0.01).graph == epinions_like(seed=5, scale=0.01).graph

    def test_different_seeds_differ(self):
        assert slashdot_like(seed=1).graph != slashdot_like(seed=2).graph

    def test_synthetic_signed_network_negative_fraction(self):
        graph, factions = synthetic_signed_network(
            300, average_degree=8.0, negative_fraction=0.25, seed=3
        )
        fraction = graph.number_of_negative_edges() / graph.number_of_edges()
        assert abs(fraction - 0.25) < 0.05
        assert set(factions) == set(graph.nodes())
        assert is_connected(graph)

    def test_faction_biased_signs_exact_count(self):
        edges = [(i, i + 1) for i in range(20)]
        factions = {i: i % 2 for i in range(21)}
        graph = faction_biased_signs(edges, factions, negative_fraction=0.5, seed=1)
        assert graph.number_of_negative_edges() == 10

    def test_faction_biased_signs_bias_toward_cross_edges(self):
        # Edges: 10 intra-faction and 10 cross-faction.
        intra = [(i, i + 100) for i in range(10)]
        cross = [(i + 200, i + 300) for i in range(10)]
        factions = {}
        for i in range(10):
            factions[i] = 0
            factions[i + 100] = 0
            factions[i + 200] = 0
            factions[i + 300] = 1
        graph = faction_biased_signs(
            intra + cross, factions, negative_fraction=0.5, cross_faction_bias=1.0, seed=2
        )
        negative_cross = sum(
            1 for u, v in cross if graph.sign(u, v) == -1
        )
        assert negative_cross == 10  # all negatives land on cross-faction edges

    def test_figure_graphs_shape(self):
        graph_a = figure_1a_graph()
        assert graph_a.number_of_nodes() == 6
        assert graph_a.number_of_edges() == 7
        assert graph_a.number_of_negative_edges() == 3
        graph_b = figure_1b_graph()
        assert graph_b.number_of_nodes() == 7
        assert graph_b.number_of_edges() == 8
        assert graph_b.number_of_negative_edges() == 1


class TestRegistry:
    def test_paper_datasets_registered(self):
        assert set(PAPER_DATASETS) <= set(available())
        assert "toy" in available()

    def test_load_dataset_by_name(self):
        dataset = load_dataset("toy")
        assert isinstance(dataset, SignedDataset)
        assert dataset.name == "toy"

    def test_load_dataset_with_overrides(self):
        dataset = load_dataset("epinions", seed=3, scale=0.01)
        assert 150 <= dataset.graph.number_of_nodes() <= 320

    def test_unknown_dataset_raises(self):
        with pytest.raises(UnknownDatasetError):
            load_dataset("imaginary")

    def test_register_custom_dataset(self):
        register_dataset("custom-test", lambda seed=0, scale=1.0: toy_dataset())
        assert "custom-test" in available()
        assert load_dataset("custom-test").name == "toy"


class TestLoaders:
    def test_load_snap_dataset_with_skill_json(self, tmp_path, toy):
        edges_path = tmp_path / "net.edges"
        skills_path = tmp_path / "skills.json"
        write_edge_list(toy.graph, edges_path)
        write_assignment(toy.skills, skills_path)
        dataset = load_snap_dataset("custom", edges_path, skills_path)
        assert dataset.name == "custom"
        assert dataset.graph.number_of_edges() == toy.graph.number_of_edges()
        assert dataset.skills.skills_of("ana") == frozenset({"python", "statistics"})

    def test_load_snap_dataset_synthetic_skills(self, tmp_path, toy):
        edges_path = tmp_path / "net.edges"
        write_edge_list(toy.graph, edges_path)
        dataset = load_snap_dataset("no-skills", edges_path, num_synthetic_skills=10, seed=1)
        assert dataset.skills.number_of_skills() <= 10
        assert all(dataset.skills.skills_of(node) for node in dataset.graph.nodes())

    def test_load_snap_dataset_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_snap_dataset("missing", tmp_path / "absent.edges")

    def test_load_snap_dataset_restricts_to_lcc(self, tmp_path):
        edges_path = tmp_path / "net.edges"
        edges_path.write_text("0 1 1\n1 2 -1\n10 11 1\n")
        dataset = load_snap_dataset("lcc", edges_path, num_synthetic_skills=5)
        assert set(dataset.graph.nodes()) == {0, 1, 2}


class TestLoaderCacheStats:
    @pytest.fixture(autouse=True)
    def _isolated_counters(self):
        from repro.datasets import reset_cache_stats

        reset_cache_stats()
        yield
        reset_cache_stats()

    def test_hit_miss_reparse_counters(self, tmp_path, toy):
        pytest.importorskip("numpy")
        from repro.datasets import cache_stats

        edges_path = tmp_path / "net.edges"
        write_edge_list(toy.graph, edges_path)
        cache_dir = tmp_path / "cache"
        kwargs = dict(snapshot_cache_dir=cache_dir, num_synthetic_skills=5, seed=1)

        load_snap_dataset("c", edges_path, **kwargs)
        assert cache_stats() == {"hits": 0, "misses": 1, "reparses": 0}
        load_snap_dataset("c", edges_path, **kwargs)
        assert cache_stats() == {"hits": 1, "misses": 1, "reparses": 0}

        # Corrupting the entry forces a reparse (counted as a miss too) that
        # rewrites the cache; the next load hits again.
        entry = next(cache_dir.glob("parse-*.store"))
        entry.write_bytes(b"garbage")
        load_snap_dataset("c", edges_path, **kwargs)
        assert cache_stats() == {"hits": 1, "misses": 2, "reparses": 1}
        load_snap_dataset("c", edges_path, **kwargs)
        assert cache_stats() == {"hits": 2, "misses": 2, "reparses": 1}

    def test_disabled_cache_counts_misses(self, tmp_path, toy):
        from repro.datasets import cache_stats

        edges_path = tmp_path / "net.edges"
        write_edge_list(toy.graph, edges_path)
        load_snap_dataset("c", edges_path, num_synthetic_skills=5)
        load_snap_dataset("c", edges_path, num_synthetic_skills=5)
        stats = cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_cache_stats_returns_a_copy(self):
        from repro.datasets import cache_stats

        snapshot = cache_stats()
        snapshot["hits"] = 999
        assert cache_stats()["hits"] == 0

    def test_debug_logging_names_the_cache_file(self, tmp_path, toy, caplog):
        pytest.importorskip("numpy")
        import logging

        edges_path = tmp_path / "net.edges"
        write_edge_list(toy.graph, edges_path)
        with caplog.at_level(logging.DEBUG, logger="repro.datasets.loaders"):
            load_snap_dataset(
                "c", edges_path, snapshot_cache_dir=tmp_path / "cache",
                num_synthetic_skills=5,
            )
        assert any("snapshot cache miss" in record.message for record in caplog.records)


class TestDatasetStatistics:
    def test_statistics_row_shape(self, toy):
        stats = dataset_statistics(toy)
        row = stats.as_row()
        assert row[0] == "toy"
        assert row[1] == toy.graph.number_of_nodes()
        assert "(" in row[3]  # negative edges rendered with a percentage

    def test_statistics_values(self, toy):
        stats = dataset_statistics(toy)
        assert stats.num_edges == toy.graph.number_of_edges()
        assert stats.num_negative_edges == toy.graph.number_of_negative_edges()
        assert stats.diameter is not None
        assert stats.num_skills == toy.skills.number_of_skills()
