"""Property-based tests (hypothesis) on the core data structures and invariants.

Strategies generate small random signed graphs (and skill assignments) so the
invariants are checked on hundreds of structurally diverse inputs:

* SignedGraph bookkeeping (edge/sign counters, copies, subgraphs);
* Algorithm 1 (signed BFS) against brute-force path enumeration;
* structural-balance characterisations (two-colouring vs triangle parity);
* the required properties and containment chain of the compatibility relations;
* team-formation outputs (coverage, compatibility, cost consistency).
"""

from __future__ import annotations

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compatibility import DistanceOracle, make_relation
from repro.signed import (
    NEGATIVE,
    POSITIVE,
    SignedGraph,
    all_shortest_paths,
    harary_bipartition,
    is_balanced,
    signed_bfs,
    signed_bfs_csr,
)
from repro.signed.balance import triangle_census
from repro.signed.components import largest_connected_component
from repro.skills import SkillAssignment, Task
from repro.teams import TeamFormationProblem, run_algorithm, team_covers_task, team_is_compatible

# --------------------------------------------------------------------------- strategies


@st.composite
def signed_graphs(draw, min_nodes=2, max_nodes=9, connected=False):
    """Generate a small random signed graph (optionally its largest component)."""
    num_nodes = draw(st.integers(min_nodes, max_nodes))
    nodes = list(range(num_nodes))
    possible_edges = list(itertools.combinations(nodes, 2))
    chosen = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=len(possible_edges))
    ) if possible_edges else []
    signs = draw(
        st.lists(st.sampled_from([POSITIVE, NEGATIVE]), min_size=len(chosen), max_size=len(chosen))
    )
    graph = SignedGraph.from_edges(
        [(u, v, sign) for (u, v), sign in zip(chosen, signs)], nodes=nodes
    )
    if connected:
        graph = largest_connected_component(graph)
    return graph


@st.composite
def graphs_with_skills(draw):
    """A connected signed graph plus a random skill assignment over 3 skills."""
    graph = draw(signed_graphs(min_nodes=3, max_nodes=8, connected=True))
    skills = ["s1", "s2", "s3"]
    assignment = SkillAssignment()
    for node in graph.nodes():
        node_skills = draw(
            st.lists(st.sampled_from(skills), min_size=1, max_size=3, unique=True)
        )
        assignment.add_user(node, node_skills)
    return graph, assignment


SLOW_OK = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------- graph invariants


class TestGraphInvariants:
    @SLOW_OK
    @given(signed_graphs())
    def test_edge_counters_consistent(self, graph):
        edges = list(graph.edges())
        assert len(edges) == graph.number_of_edges()
        positives = sum(1 for edge in edges if edge.is_positive())
        assert positives == graph.number_of_positive_edges()
        assert graph.number_of_edges() - positives == graph.number_of_negative_edges()

    @SLOW_OK
    @given(signed_graphs())
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @SLOW_OK
    @given(signed_graphs(min_nodes=3))
    def test_subgraph_edges_are_subset(self, graph):
        nodes = graph.nodes()[: max(1, len(graph.nodes()) // 2)]
        sub = graph.subgraph(nodes)
        for u, v, sign in sub.edge_triples():
            assert graph.sign(u, v) == sign
        assert set(sub.nodes()) == set(nodes)

    @SLOW_OK
    @given(signed_graphs())
    def test_degree_sum_is_twice_edges(self, graph):
        assert sum(graph.degree(node) for node in graph.nodes()) == 2 * graph.number_of_edges()


# ------------------------------------------------------------------- Algorithm 1 / paths


class TestSignedBFSProperties:
    @SLOW_OK
    @given(signed_graphs(min_nodes=3, max_nodes=8, connected=True))
    def test_counts_match_brute_force_enumeration(self, graph):
        nodes = graph.nodes()
        source = nodes[0]
        result = signed_bfs(graph, source)
        for target in nodes[1:]:
            paths = all_shortest_paths(graph, source, target)
            expected_positive = sum(1 for p in paths if graph.path_sign(p) == POSITIVE)
            expected_negative = len(paths) - expected_positive
            assert result.counts(target) == (expected_positive, expected_negative)
            if paths:
                assert result.length(target) == len(paths[0]) - 1

    @SLOW_OK
    @given(signed_graphs(min_nodes=2, max_nodes=9))
    def test_csr_backend_matches_dict_backend(self, graph):
        # The indexed CSR BFS must be bit-identical to the dict reference on
        # arbitrary random graphs, including disconnected ones.
        csr = graph.csr_view()
        for source in graph.nodes():
            expected = signed_bfs(graph, source)
            actual = signed_bfs_csr(csr, source).to_signed_bfs_result()
            assert actual.lengths == expected.lengths
            assert actual.positive_counts == expected.positive_counts
            assert actual.negative_counts == expected.negative_counts

    @SLOW_OK
    @given(signed_graphs(min_nodes=3, max_nodes=8, connected=True))
    def test_total_counts_equal_number_of_shortest_paths(self, graph):
        nodes = graph.nodes()
        result = signed_bfs(graph, nodes[0])
        for target in nodes[1:]:
            positive, negative = result.counts(target)
            assert positive + negative == len(all_shortest_paths(graph, nodes[0], target))


# ------------------------------------------------------------------------ balance theory


class TestBalanceProperties:
    @SLOW_OK
    @given(signed_graphs())
    def test_two_colouring_matches_triangle_parity_for_complete_graphs(self, graph):
        # For any graph: if balanced, every triangle must have an even number
        # of negative edges (the converse only holds for complete graphs).
        if is_balanced(graph):
            census = triangle_census(graph)
            assert census["++-"] == 0 and census["---"] == 0

    @SLOW_OK
    @given(signed_graphs())
    def test_partition_witnesses_balance(self, graph):
        report = harary_bipartition(graph)
        if not report.balanced:
            return
        camp_a, camp_b = report.partition
        camp = {node: 0 for node in camp_a}
        camp.update({node: 1 for node in camp_b})
        for u, v, sign in graph.edge_triples():
            if sign == POSITIVE:
                assert camp[u] == camp[v]
            else:
                assert camp[u] != camp[v]

    @SLOW_OK
    @given(signed_graphs(min_nodes=3))
    def test_flipping_all_signs_of_balanced_graph_keeps_even_cycles(self, graph):
        # Balance is preserved by flipping the signs of all edges incident to
        # one node (a "switching"): a classic signed-graph invariant.
        if graph.number_of_nodes() == 0:
            return
        node = graph.nodes()[0]
        switched = graph.copy()
        for neighbor in list(switched.neighbors(node)):
            switched.set_sign(node, neighbor, -switched.sign(node, neighbor))
        assert is_balanced(switched) == is_balanced(graph)


# ------------------------------------------------------------------ compatibility chain


class TestCompatibilityProperties:
    @SLOW_OK
    @given(signed_graphs(min_nodes=3, max_nodes=7, connected=True))
    def test_required_properties_for_every_relation(self, graph):
        for name in ("DPE", "SPA", "SPM", "SPO", "SBPH", "SBP", "NNE"):
            relation = make_relation(name, graph)
            assert relation.satisfies_positive_edge_compatibility()
            assert relation.satisfies_negative_edge_incompatibility()

    @SLOW_OK
    @given(signed_graphs(min_nodes=3, max_nodes=7, connected=True))
    def test_containment_chain(self, graph):
        nodes = graph.nodes()
        pairs = {}
        for name in ("DPE", "SPA", "SPM", "SPO", "SBPH", "SBP", "NNE"):
            relation = make_relation(name, graph)
            pairs[name] = {
                (u, v)
                for i, u in enumerate(nodes)
                for v in nodes[i + 1 :]
                if relation.are_compatible(u, v)
            }
        assert pairs["DPE"] <= pairs["SPA"]
        assert pairs["SPA"] <= pairs["SPM"]
        assert pairs["SPM"] <= pairs["SPO"]
        assert pairs["SBPH"] <= pairs["SBP"]
        assert pairs["SBP"] <= pairs["NNE"]

    @SLOW_OK
    @given(signed_graphs(min_nodes=3, max_nodes=7, connected=True))
    def test_symmetry_of_sp_relations(self, graph):
        # SBPH included: its directional heuristic search is symmetrised by
        # the relation (the historic symmetry violation of the seed code).
        nodes = graph.nodes()
        for name in ("SPA", "SPM", "SPO", "SBP", "SBPH"):
            relation = make_relation(name, graph)
            for u, v in itertools.combinations(nodes, 2):
                assert relation.are_compatible(u, v) == relation.are_compatible(v, u)

    @SLOW_OK
    @given(
        signed_graphs(min_nodes=3, max_nodes=7, connected=True),
        st.randoms(use_true_random=False),
    )
    def test_symmetry_under_randomized_query_orders(self, graph, rng):
        # Query pairs in a random interleaving so the per-source caches are in
        # different states when each direction of a pair is evaluated — this
        # exercises the cache-dependent source selection in the SP relations
        # and the search-direction handling in SBP/SBPH.  Whatever the order,
        # both directions of every pair must agree.
        nodes = graph.nodes()
        ordered_pairs = [
            pair
            for u, v in itertools.combinations(nodes, 2)
            for pair in ((u, v), (v, u))
        ]
        for name in ("SPA", "SPM", "SPO", "SBP", "SBPH"):
            relation = make_relation(name, graph)
            shuffled = list(ordered_pairs)
            rng.shuffle(shuffled)
            answers = {pair: relation.are_compatible(*pair) for pair in shuffled}
            for u, v in itertools.combinations(nodes, 2):
                assert answers[(u, v)] == answers[(v, u)], (name, u, v)

    @SLOW_OK
    @given(signed_graphs(min_nodes=3, max_nodes=7, connected=True))
    def test_balanced_relation_distance_consistency(self, graph):
        relation = make_relation("SBP", graph)
        oracle = DistanceOracle(relation)
        nodes = graph.nodes()
        for u, v in itertools.combinations(nodes, 2):
            distance = oracle.distance(u, v)
            if relation.are_compatible(u, v):
                # Compatible pairs have a finite positive-balanced-path distance
                # at least as long as the unsigned shortest path.
                assert distance < float("inf")
            else:
                assert distance == float("inf")


# ------------------------------------------------------------------------ team formation


class TestTeamFormationProperties:
    @SLOW_OK
    @given(graphs_with_skills(), st.sampled_from(["LCMD", "RFMD", "RANDOM"]))
    def test_returned_teams_are_always_valid(self, graph_and_skills, algorithm):
        graph, assignment = graph_and_skills
        task = Task(["s1", "s2"])
        if not task.is_coverable(assignment):
            return
        relation = make_relation("SPO", graph)
        problem = TeamFormationProblem(graph, assignment, relation, task)
        result = run_algorithm(algorithm, problem, seed=0)
        if result.solved:
            assert team_covers_task(result.team, task, assignment)
            assert team_is_compatible(result.team, relation)
            assert result.cost == problem.oracle.max_pairwise_distance(result.team)
        else:
            assert result.cost == float("inf")
