"""The invariant analyzer: framework, every rule, suppressions, baseline, CLI.

Each rule gets at least one violating and one clean fixture snippet, analyzed
in memory via :func:`repro.analysis.analyze_source` /
:func:`~repro.analysis.analyze_sources` (no temp files, no imports of the
code under test).  The self-scan test at the bottom is the same gate CI runs:
``repro-teams analyze --strict`` over the real source tree must exit 0.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    analyze_source,
    analyze_sources,
    filter_baselined,
)
from repro.analysis.core import all_rules, suppressed_rules


def rule_ids(findings):
    return {finding.rule for finding in findings}


def snippet(text: str) -> str:
    return textwrap.dedent(text)


# --------------------------------------------------------------- framework


def test_all_rules_registered_and_documented():
    rules = all_rules()
    assert len(rules) >= 8
    ids = {rule.id for rule in rules}
    assert ids >= {
        "mutation-discipline",
        "cache-key-discipline",
        "ledger-discipline",
        "lazy-numpy",
        "no-materialise",
        "kernel-registry-parity",
        "policy-shim",
        "dtype-discipline",
    }
    for rule in rules:
        assert rule.contract, f"rule {rule.id} has no contract line"


def test_syntax_error_becomes_parse_error_finding():
    findings = analyze_source("def broken(:\n", module="repro.broken")
    assert rule_ids(findings) == {"parse-error"}


def test_findings_are_deterministically_sorted():
    source = snippet(
        """
        import numpy
        import numpy as np
        """
    )
    findings = analyze_source(source, module="repro.example")
    assert findings == sorted(
        findings, key=lambda f: (f.path, f.line, f.rule, f.message)
    )


# ------------------------------------------------------------ suppressions


def test_suppression_comment_parsing():
    assert suppressed_rules("x = 1") is None
    assert suppressed_rules("import numpy  # repro: ignore") == frozenset()
    assert suppressed_rules("import numpy  # repro: ignore[lazy-numpy]") == {
        "lazy-numpy"
    }
    assert suppressed_rules("x  # repro: ignore[a, b]") == {"a", "b"}


def test_inline_suppression_silences_named_rule():
    assert rule_ids(
        analyze_source("import numpy\n", module="repro.example")
    ) == {"lazy-numpy"}
    assert (
        analyze_source(
            "import numpy  # repro: ignore[lazy-numpy]\n", module="repro.example"
        )
        == []
    )
    # A bare ignore silences everything on the line.
    assert (
        analyze_source("import numpy  # repro: ignore\n", module="repro.example")
        == []
    )


def test_suppression_for_other_rule_does_not_apply():
    findings = analyze_source(
        "import numpy  # repro: ignore[dtype-discipline]\n", module="repro.example"
    )
    assert rule_ids(findings) == {"lazy-numpy"}


# ------------------------------------------------------- mutation-discipline

_MUTATION_VIOLATION = snippet(
    """
    class SignedGraph:
        def add_edge(self, u, v, sign):
            self._adjacency[u][v] = sign
            self._num_edges += 1
    """
)

_MUTATION_CLEAN = snippet(
    """
    class SignedGraph:
        def add_edge(self, u, v, sign):
            self._adjacency[u][v] = sign
            self._num_edges += 1
            self._record_mutation(u, v)
            if self._delta is not None:
                self._delta.record_edge_added(u, v, sign)

        def set_sign(self, u, v, sign):
            self._adjacency[u][v] = sign
            self._record_mutation(u, v, topology=False)
            if self._delta is not None:
                self._delta.record_sign_changed(u, v, sign)

        def __init__(self):
            self._num_edges = 0


    class CSRBackedSignedGraph(SignedGraph):
        def add_edge(self, u, v, sign):
            return SignedGraph.add_edge(self, u, v, sign)
    """
)


def test_mutation_rule_flags_unrecorded_mutator():
    findings = analyze_source(_MUTATION_VIOLATION, module="repro.signed.example")
    messages = [f.message for f in findings if f.rule == "mutation-discipline"]
    assert any("_record_mutation" in message for message in messages)
    assert any("record_edge_added" in message for message in messages)


def test_mutation_rule_accepts_recorded_and_delegating_mutators():
    findings = analyze_source(_MUTATION_CLEAN, module="repro.signed.example")
    assert "mutation-discipline" not in rule_ids(findings)


def test_mutation_rule_flags_wrong_topology_flag():
    source = snippet(
        """
        class SignedGraph:
            def set_sign(self, u, v, sign):
                self._record_mutation(u, v)
                self._delta.record_sign_changed(u, v, sign)

            def remove_edge(self, u, v):
                self._record_mutation(u, v, topology=False)
                self._delta.record_edge_removed(u, v)
        """
    )
    findings = analyze_source(source, module="repro.signed.example")
    messages = [f.message for f in findings if f.rule == "mutation-discipline"]
    assert any("set_sign must pass topology=False" in m for m in messages)
    assert any("remove_edge passes topology=False" in m for m in messages)


def test_mutation_rule_flags_counter_write_outside_named_mutators():
    source = snippet(
        """
        class SignedGraph:
            def bulk_load(self, edges):
                self._num_edges = len(edges)
        """
    )
    findings = analyze_source(source, module="repro.signed.example")
    assert "mutation-discipline" in rule_ids(findings)


def test_mutation_rule_ignores_unrelated_classes_and_init():
    source = snippet(
        """
        class NotAGraph:
            def add_edge(self, u, v, sign):
                self.edges.append((u, v, sign))


        class SignedGraph:
            def __init__(self):
                self._num_edges = 0
        """
    )
    findings = analyze_source(source, module="repro.signed.example")
    assert "mutation-discipline" not in rule_ids(findings)


# ----------------------------------------------------- cache-key-discipline


def test_cache_rule_flags_graphless_generational_cache():
    findings = analyze_source(
        "cache = GenerationalLRUCache(maxsize=128)\n",
        module="repro.compatibility.example",
    )
    assert "cache-key-discipline" in rule_ids(findings)


def test_cache_rule_flags_plain_lru_in_compatibility():
    findings = analyze_source(
        "cache = LRUCache(128)\n", module="repro.compatibility.example"
    )
    assert "cache-key-discipline" in rule_ids(findings)


def test_cache_rule_accepts_graph_keyed_cache_and_lru_elsewhere():
    clean = analyze_source(
        snippet(
            """
            cache = GenerationalLRUCache(graph, maxsize=128)
            other = GenerationalLRUCache(graph=graph)
            """
        ),
        module="repro.compatibility.example",
    )
    assert "cache-key-discipline" not in rule_ids(clean)
    elsewhere = analyze_source("cache = LRUCache(16)\n", module="repro.utils.example")
    assert "cache-key-discipline" not in rule_ids(elsewhere)


# -------------------------------------------------------- ledger-discipline


def test_ledger_rule_flags_unregistered_segment():
    source = snippet(
        """
        def publish(blob):
            shm = shared_memory.SharedMemory(create=True, size=len(blob))
            return shm
        """
    )
    findings = analyze_source(source, module="repro.exec.example")
    assert "ledger-discipline" in rule_ids(findings)


def test_ledger_rule_accepts_same_function_registration():
    source = snippet(
        """
        def publish(blob):
            shm = shared_memory.SharedMemory(create=True, size=len(blob))
            _SEGMENT_LEDGER[shm.name] = shm
            return shm


        def attach(name):
            return shared_memory.SharedMemory(name=name)
        """
    )
    findings = analyze_source(source, module="repro.exec.example")
    assert "ledger-discipline" not in rule_ids(findings)


def test_ledger_rule_covers_temp_paths_and_store_files():
    source = snippet(
        """
        def save(path):
            temp = _temp_path(path)
            return temp


        def republish(payload, path):
            save_snapshot(payload, path)
        """
    )
    findings = analyze_source(source, module="repro.exec.example")
    messages = [f.message for f in findings if f.rule == "ledger-discipline"]
    assert any("_TEMP_LEDGER" in m for m in messages)
    assert any("_STORE_FILE_LEDGER" in m for m in messages)
    clean = snippet(
        """
        def save(path):
            temp = _temp_path(path)
            with _TEMP_LOCK:
                _TEMP_LEDGER[temp] = None
            return temp


        def republish(payload, path):
            save_snapshot(payload, path)
            _STORE_FILE_LEDGER[path] = None
        """
    )
    assert "ledger-discipline" not in rule_ids(
        analyze_source(clean, module="repro.exec.example")
    )


# --------------------------------------------------------------- lazy-numpy


def test_lazy_numpy_flags_top_level_import():
    findings = analyze_source("import numpy as np\n", module="repro.teams.example")
    assert "lazy-numpy" in rule_ids(findings)


def test_lazy_numpy_flags_gated_module_import():
    findings = analyze_source(
        "from repro.signed.csr import CSRSignedGraph\n", module="repro.example"
    )
    assert "lazy-numpy" in rule_ids(findings)
    findings = analyze_source(
        "from repro.signed import csr\n", module="repro.example"
    )
    assert "lazy-numpy" in rule_ids(findings)


def test_lazy_numpy_accepts_gated_modules_and_escape_hatches():
    assert "lazy-numpy" not in rule_ids(
        analyze_source("import numpy as np\n", module="repro.signed.csr")
    )
    escape_hatches = snippet(
        """
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from repro.signed.csr import CSRSignedGraph

        try:
            import numpy as np
        except ImportError:
            np = None


        def kernel(csr):
            import numpy as np

            return np.zeros(1)
        """
    )
    assert "lazy-numpy" not in rule_ids(
        analyze_source(escape_hatches, module="repro.example")
    )


def test_lazy_numpy_ignores_non_repro_modules():
    assert "lazy-numpy" not in rule_ids(
        analyze_source("import numpy\n", module="scripts.example")
    )


# ------------------------------------------------------------ no-materialise


def test_no_materialise_flags_escape_hatch_and_adjacency():
    source = snippet(
        """
        def ship(graph):
            graph._materialise()
            return list(graph._adjacency)
        """
    )
    findings = analyze_source(source, module="repro.exec.example")
    messages = [f.message for f in findings if f.rule == "no-materialise"]
    assert len(messages) == 2


def test_no_materialise_allows_owner_and_signed_internals():
    assert "no-materialise" not in rule_ids(
        analyze_source(
            "def inflate(self):\n    self._materialise()\n",
            module="repro.signed.lazy",
        )
    )
    assert "no-materialise" not in rule_ids(
        analyze_source(
            "def degree(self, node):\n    return len(self._adjacency[node])\n",
            module="repro.signed.graph",
        )
    )


# ---------------------------------------------------- kernel-registry-parity

_KERNELS_CLEAN = snippet(
    """
    KERNELS = {}


    def register_kernel(name, fn=None):
        def decorator(f):
            KERNELS[name] = f
            return f

        return decorator


    @register_kernel("csr_thing")
    def csr_thing(csr, sources, params):
        return []


    @register_kernel("dict_thing")
    def dict_thing(graph, sources, params):
        return []


    SERIAL_EQUIVALENTS = {"csr_thing": "dict_thing"}
    """
)

_ARENA_CLEAN = snippet(
    """
    _ARENA_KERNELS = frozenset({"csr_thing"})


    def _write_thing(planes, start, csr, sources, params):
        from repro.signed.csr import thing_dense_batch_into

        return thing_dense_batch_into(csr, sources, planes[0])


    _WRITERS = {"csr_thing": _write_thing}
    """
)

_CSR_CLEAN = snippet(
    """
    def thing_dense_batch_into(csr, sources, out):
        return [True] * len(sources)
    """
)


def test_kernel_parity_accepts_consistent_registry():
    findings = analyze_sources(
        {
            "repro.exec.kernels": _KERNELS_CLEAN,
            "repro.exec.arena": _ARENA_CLEAN,
            "repro.signed.csr": _CSR_CLEAN,
        }
    )
    assert "kernel-registry-parity" not in rule_ids(findings)


def test_kernel_parity_requires_serial_equivalents_table():
    source = _KERNELS_CLEAN.replace(
        'SERIAL_EQUIVALENTS = {"csr_thing": "dict_thing"}', ""
    )
    findings = analyze_sources({"repro.exec.kernels": source})
    messages = [
        f.message for f in findings if f.rule == "kernel-registry-parity"
    ]
    assert any("SERIAL_EQUIVALENTS" in m for m in messages)


def test_kernel_parity_flags_uncovered_and_unregistered_kernels():
    source = _KERNELS_CLEAN.replace(
        '{"csr_thing": "dict_thing"}',
        '{"csr_thing": "dict_missing", "csr_ghost": "dict_thing"}',
    )
    findings = analyze_sources({"repro.exec.kernels": source})
    messages = [
        f.message for f in findings if f.rule == "kernel-registry-parity"
    ]
    assert any("dict_missing" in m for m in messages)
    assert any("csr_ghost" in m for m in messages)


def test_kernel_parity_flags_arena_without_writer():
    arena = snippet(
        """
        _ARENA_KERNELS = frozenset({"csr_thing", "csr_orphan"})


        def _write_thing(planes, start, csr, sources, params):
            planes[0][start] = 1
            return [True]


        _WRITERS = {"csr_thing": _write_thing}
        """
    )
    findings = analyze_sources(
        {"repro.exec.kernels": _KERNELS_CLEAN, "repro.exec.arena": arena}
    )
    messages = [
        f.message for f in findings if f.rule == "kernel-registry-parity"
    ]
    assert any("csr_orphan" in m and "_WRITERS" in m for m in messages)
    # csr_orphan is also not a registered kernel.
    assert any("not a" in m and "registered" in m for m in messages)


def test_kernel_parity_flags_missing_into_core():
    findings = analyze_sources(
        {
            "repro.exec.kernels": _KERNELS_CLEAN,
            "repro.exec.arena": _ARENA_CLEAN,
            "repro.signed.csr": "def unrelated():\n    pass\n",
        }
    )
    messages = [
        f.message for f in findings if f.rule == "kernel-registry-parity"
    ]
    assert any("thing_dense_batch_into" in m for m in messages)


def test_kernel_parity_skips_partial_projects():
    findings = analyze_sources({"repro.exec.arena": _ARENA_CLEAN})
    assert "kernel-registry-parity" not in rule_ids(findings)


# ---------------------------------------------------------------- policy-shim


def test_policy_shim_flags_loose_knob():
    source = snippet(
        """
        class Engine:
            def __init__(self, graph, workers=0, chunk_size=None):
                self._graph = graph
                self._workers = workers
        """
    )
    findings = analyze_source(source, module="repro.compatibility.example")
    messages = [f.message for f in findings if f.rule == "policy-shim"]
    assert messages and "workers" in messages[0] and "chunk_size" in messages[0]


def test_policy_shim_accepts_resolved_knobs_and_private_classes():
    source = snippet(
        """
        class Engine:
            def __init__(self, graph, workers=0, cache_size=None):
                self._policy = resolve_policy(
                    workers=workers, cache_size=cache_size
                )


        class _WorkerState:
            def __init__(self, workers):
                self.workers = workers


        class Plain:
            def __init__(self, graph, name):
                self._graph = graph
        """
    )
    findings = analyze_source(source, module="repro.compatibility.example")
    assert "policy-shim" not in rule_ids(findings)


# ------------------------------------------------------------ dtype-discipline


def test_dtype_rule_flags_wrong_plane_dtype():
    source = snippet(
        """
        def build(n, np):
            indptr = np.zeros(n + 1, dtype=np.int32)
            indices = np.zeros(n, dtype="int64")
            signs = np.zeros(n, dtype="<i4")
            return indptr, indices, signs
        """
    )
    findings = analyze_source(source, module="repro.signed.example")
    assert len([f for f in findings if f.rule == "dtype-discipline"]) == 3


def test_dtype_rule_accepts_declared_dtypes():
    source = snippet(
        """
        def build(n, np):
            indptr = np.zeros(n + 1, dtype=np.int64)
            out_indptr = np.asarray(raw, dtype="<i8")
            indices = np.zeros(n, dtype="int32")
            more_indices = np.array(raw, dtype=np.dtype("<i4"))
            signs = np.zeros(n, dtype="|i1")
            other = np.zeros(n, dtype=np.float64)
            return indptr, indices, signs
        """
    )
    findings = analyze_source(source, module="repro.signed.example")
    assert "dtype-discipline" not in rule_ids(findings)


def test_dtype_rule_only_applies_inside_repro_signed():
    source = "indptr = np.zeros(4, dtype=np.int32)\n"
    assert "dtype-discipline" in rule_ids(
        analyze_source(source, module="repro.signed.example")
    )
    assert "dtype-discipline" not in rule_ids(
        analyze_source(source, module="repro.exec.example")
    )


# ------------------------------------------------------------------- baseline


def test_baseline_round_trip(tmp_path):
    findings = analyze_source("import numpy\n", module="repro.example")
    assert findings
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(str(path))
    loaded = Baseline.load(str(path))
    assert len(loaded) == len(findings)
    fresh, waived, stale = filter_baselined(findings, loaded)
    assert fresh == [] and len(waived) == len(findings) and stale == []


def test_baseline_fingerprint_survives_line_moves(tmp_path):
    before = analyze_source("import numpy\n", module="repro.example")
    after = analyze_source("\n\n\nimport numpy\n", module="repro.example")
    assert before[0].line != after[0].line
    assert before[0].fingerprint() == after[0].fingerprint()


def test_baseline_reports_stale_entries(tmp_path):
    findings = analyze_source("import numpy\n", module="repro.example")
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(str(path))
    fresh, waived, stale = filter_baselined([], Baseline.load(str(path)))
    assert fresh == [] and waived == [] and len(stale) == len(findings)


def test_baseline_rejects_foreign_files(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"something": "else"}))
    with pytest.raises(ValueError):
        Baseline.load(str(path))
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError):
        Baseline.load(str(path))


def test_checked_in_baseline_is_empty():
    # Policy: fix true positives, suppress deliberate exceptions inline; the
    # baseline only parks stragglers while a new rule lands, then burns down.
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline = Baseline.load(os.path.join(repo_root, "analysis-baseline.json"))
    assert len(baseline) == 0


# ------------------------------------------------------------------------ CLI


def test_cli_clean_run_exits_zero(tmp_path, capsys):
    from repro.analysis.cli import main

    target = tmp_path / "clean.py"
    target.write_text("VALUE = 1\n")
    assert main([str(target)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_findings_exit_one_and_json_reports(tmp_path, capsys):
    from repro.analysis.cli import main

    target = tmp_path / "bad.py"
    target.write_text(_MUTATION_VIOLATION)
    assert main([str(target)]) == 1
    capsys.readouterr()
    assert main(["--json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] >= 1
    assert {entry["id"] for entry in payload["rules"]} >= {"mutation-discipline"}


def test_cli_write_baseline_then_gate_passes(tmp_path, capsys):
    from repro.analysis.cli import main

    target = tmp_path / "bad.py"
    target.write_text(_MUTATION_VIOLATION)
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(baseline), str(target)]) == 0
    capsys.readouterr()
    assert main(["--baseline", str(baseline), str(target)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # Strict still passes while the entries match; once the file is clean,
    # the now-stale entries fail the strict gate so the baseline must shrink.
    assert main(["--strict", "--baseline", str(baseline), str(target)]) == 0
    target.write_text("VALUE = 1\n")
    capsys.readouterr()
    assert main(["--baseline", str(baseline), str(target)]) == 0
    assert main(["--strict", "--baseline", str(baseline), str(target)]) == 1


def test_cli_list_rules(capsys):
    from repro.analysis.cli import main

    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "mutation-discipline:" in out
    assert "dtype-discipline:" in out


# ---------------------------------------------------------------- self-scan


def test_self_scan_is_clean(capsys):
    """The CI gate: ``repro-teams analyze --strict`` exits 0 on this repo."""
    from repro.cli import main

    assert main(["analyze", "--strict"]) == 0
    assert "0 findings" in capsys.readouterr().out
