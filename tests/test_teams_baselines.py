"""Tests for the unsigned RarestFirst baseline and the graph projections."""

from __future__ import annotations

import pytest

from repro.compatibility import make_relation
from repro.skills import SkillAssignment, Task
from repro.skills.task import random_tasks
from repro.teams import (
    PROJECTION_NAMES,
    RarestFirstBaseline,
    fraction_of_compatible_teams,
    project_graph,
    run_unsigned_baseline,
    team_covers_task,
)


class TestProjections:
    def test_projection_names(self):
        assert set(PROJECTION_NAMES) == {"ignore_sign", "delete_negative"}

    def test_ignore_sign_keeps_all_edges(self, two_factions):
        projected = project_graph(two_factions, "ignore_sign")
        assert projected.number_of_edges() == two_factions.number_of_edges()

    def test_delete_negative_removes_negative_edges(self, two_factions):
        projected = project_graph(two_factions, "delete_negative")
        assert projected.number_of_edges() == two_factions.number_of_positive_edges()

    def test_unknown_projection_rejected(self, two_factions):
        with pytest.raises(ValueError):
            project_graph(two_factions, "something")


class TestRarestFirst:
    def test_covers_task_on_toy(self, toy):
        baseline = RarestFirstBaseline(project_graph(toy.graph, "ignore_sign"), toy.skills)
        task = Task(["python", "databases", "writing"])
        result = baseline.solve(task)
        assert result.solved
        assert team_covers_task(result.team, task, toy.skills)
        assert result.diameter < float("inf")

    def test_single_owner_task(self, toy):
        baseline = RarestFirstBaseline(project_graph(toy.graph, "ignore_sign"), toy.skills)
        result = baseline.solve(Task(["python", "databases"]))
        assert result.solved
        # bob covers both skills, so the optimal baseline team is {bob} with diameter 0.
        assert result.team == frozenset({"bob"})
        assert result.diameter == 0.0

    def test_unknown_skill_unsolvable(self, toy):
        baseline = RarestFirstBaseline(project_graph(toy.graph, "ignore_sign"), toy.skills)
        result = baseline.solve(Task(["quantum"]))
        assert not result.solved
        assert result.diameter == float("inf")

    def test_disconnected_positive_projection_can_fail(self, two_factions):
        # After deleting negative edges the two factions are disconnected, so a
        # task whose skills live in different factions cannot be solved.
        skills = SkillAssignment({0: {"a"}, 5: {"b"}})
        baseline = RarestFirstBaseline(project_graph(two_factions, "delete_negative"), skills)
        assert not baseline.solve(Task(["a", "b"])).solved

    def test_ignore_sign_can_produce_incompatible_teams(self, two_factions):
        # The same task is solvable when signs are ignored, but the resulting
        # team spans both factions and is incompatible under SPA — the point of
        # the paper's Table 3.
        skills = SkillAssignment({0: {"a"}, 5: {"b"}})
        baseline = RarestFirstBaseline(project_graph(two_factions, "ignore_sign"), skills)
        result = baseline.solve(Task(["a", "b"]))
        assert result.solved
        relation = make_relation("SPA", two_factions)
        assert fraction_of_compatible_teams([result.team], relation) == 0.0

    def test_run_unsigned_baseline_batch(self, toy):
        tasks = random_tasks(toy.skills, size=3, count=4, seed=1)
        results = run_unsigned_baseline(toy.graph, toy.skills, tasks, "ignore_sign")
        assert len(results) == 4
        for task, result in zip(tasks, results):
            if result.solved:
                assert team_covers_task(result.team, task, toy.skills)

    def test_delete_negative_never_worse_compatibility_than_ignore_sign(self, toy):
        # Statistical sanity check mirroring the paper's Table 3 ordering.
        tasks = random_tasks(toy.skills, size=3, count=6, seed=3)
        relation = make_relation("SPO", toy.graph)
        fractions = {}
        for projection in PROJECTION_NAMES:
            results = run_unsigned_baseline(toy.graph, toy.skills, tasks, projection)
            fractions[projection] = fraction_of_compatible_teams(
                [entry.team for entry in results], relation
            )
        assert fractions["delete_negative"] >= fractions["ignore_sign"] - 1e-9
