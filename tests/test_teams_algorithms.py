"""Tests for Algorithm 2, the named algorithms, the exact solver and validation."""

from __future__ import annotations

import pytest

from repro.compatibility import DistanceOracle, make_relation
from repro.skills import SkillAssignment, Task
from repro.teams import (
    ALGORITHM_NAMES,
    LeastCompatibleSkillFirst,
    MinimumDistanceUser,
    RarestSkillFirst,
    TeamFormationProblem,
    exists_compatible_team,
    form_team,
    lcmc,
    lcmd,
    random_team,
    rfmd,
    run_algorithm,
    solve_exact,
    team_covers_task,
    team_is_compatible,
    validate_team,
)
from repro.teams.validation import fraction_of_compatible_teams


def make_problem(dataset, relation_name, skills, **kwargs):
    relation = make_relation(relation_name, dataset.graph)
    return TeamFormationProblem(dataset.graph, dataset.skills, relation, Task(skills), **kwargs)


class TestFormTeam:
    def test_solution_is_valid(self, toy):
        problem = make_problem(toy, "SPO", ["python", "databases", "design", "writing"])
        result = form_team(problem, LeastCompatibleSkillFirst(), MinimumDistanceUser())
        assert result.solved
        assert team_covers_task(result.team, problem.task, toy.skills)
        assert team_is_compatible(result.team, problem.relation)
        assert result.cost == problem.oracle.max_pairwise_distance(result.team)

    def test_single_user_team_when_one_user_covers_all(self, toy):
        problem = make_problem(toy, "SPO", ["python", "databases"])
        result = form_team(problem, RarestSkillFirst(), MinimumDistanceUser())
        assert result.solved
        assert result.team == frozenset({"bob"})
        assert result.cost == 0.0

    def test_unsolvable_under_dpe(self, toy):
        # No clique of direct friends covers these four skills.
        problem = make_problem(toy, "DPE", ["python", "databases", "design", "writing"])
        result = form_team(problem, LeastCompatibleSkillFirst(), MinimumDistanceUser())
        assert not result.solved
        assert result.cost == float("inf")
        assert result.team is None

    def test_max_seeds_limits_seed_loop(self, toy):
        problem = make_problem(toy, "SPO", ["python", "databases"])
        result = form_team(
            problem,
            RarestSkillFirst(),
            MinimumDistanceUser(),
            max_seeds=1,
            seed=3,
        )
        assert result.seeds_tried == 1

    def test_algorithm_name_recorded(self, toy):
        problem = make_problem(toy, "SPO", ["python"])
        result = form_team(
            problem, RarestSkillFirst(), MinimumDistanceUser(), algorithm_name="CUSTOM"
        )
        assert result.algorithm == "CUSTOM"

    def test_team_members_never_incompatible_with_each_other(self, toy):
        for relation_name in ("SPA", "SPO", "SBPH", "NNE"):
            problem = make_problem(
                toy, relation_name, ["python", "databases", "statistics", "frontend"]
            )
            result = form_team(problem, LeastCompatibleSkillFirst(), MinimumDistanceUser())
            if result.solved:
                assert team_is_compatible(result.team, problem.relation)


class TestNamedAlgorithms:
    def test_all_names_run(self, toy):
        problem = make_problem(toy, "SPO", ["python", "databases", "writing"])
        for name in ALGORITHM_NAMES:
            result = run_algorithm(name, problem, seed=11)
            assert result.algorithm == name
            assert result.solved

    def test_unknown_algorithm_rejected(self, toy):
        problem = make_problem(toy, "SPO", ["python"])
        with pytest.raises(KeyError):
            run_algorithm("BOGUS", problem)

    def test_wrappers_match_run_algorithm(self, toy):
        problem = make_problem(toy, "SPO", ["python", "writing"])
        assert lcmd(problem).team == run_algorithm("LCMD", problem).team
        assert rfmd(problem).team == run_algorithm("RFMD", problem).team

    def test_random_team_deterministic_with_seed(self, toy):
        problem = make_problem(toy, "SPO", ["python", "databases", "design"])
        assert random_team(problem, seed=5).team == random_team(problem, seed=5).team

    def test_lcmc_also_produces_compatible_team(self, toy):
        problem = make_problem(toy, "SBPH", ["python", "databases", "design", "writing"])
        result = lcmc(problem)
        if result.solved:
            assert team_is_compatible(result.team, problem.relation)

    def test_lcmd_cost_not_worse_than_random_on_average(self, toy):
        # A weak statistical sanity check on the toy dataset: LCMD should not
        # systematically produce larger teams' diameters than RANDOM.
        tasks = [
            ["python", "databases", "writing"],
            ["frontend", "statistics", "databases"],
            ["design", "devops", "python"],
        ]
        lcmd_costs, random_costs = [], []
        for skills in tasks:
            problem = make_problem(toy, "SPO", skills)
            lcmd_result = lcmd(problem)
            random_result = random_team(problem, seed=1)
            if lcmd_result.solved and random_result.solved:
                lcmd_costs.append(lcmd_result.cost)
                random_costs.append(random_result.cost)
        assert sum(lcmd_costs) <= sum(random_costs) + 1e-9


class TestExactSolver:
    def test_exact_matches_greedy_feasibility_on_toy(self, toy):
        problem = make_problem(toy, "SPO", ["python", "databases", "writing"])
        exact = solve_exact(problem)
        greedy = lcmd(problem)
        assert exact.solved
        assert greedy.solved
        # The greedy solution can never beat the optimum.
        assert exact.cost <= greedy.cost

    def test_exact_detects_infeasibility(self, two_factions):
        skills = SkillAssignment({0: {"a"}, 5: {"b"}})
        relation = make_relation("SPA", two_factions)
        problem = TeamFormationProblem(two_factions, skills, relation, Task(["a", "b"]))
        assert not solve_exact(problem).solved
        assert not exists_compatible_team(problem)

    def test_exact_finds_feasible_team_greedy_misses(self, two_factions):
        # Greedy seeded on skill "a" (user 0 or 3) can fail under SPA if it
        # pairs user 0 with a "b" holder from the other faction; the exact
        # solver must still find {0, 1} or {3, 4}.
        skills = SkillAssignment({0: {"a"}, 3: {"a"}, 1: {"b"}, 4: {"b"}})
        relation = make_relation("SPA", two_factions)
        problem = TeamFormationProblem(two_factions, skills, relation, Task(["a", "b"]))
        result = solve_exact(problem)
        assert result.solved
        assert result.team in (frozenset({0, 1}), frozenset({3, 4}))
        assert result.cost == 1.0

    def test_exact_pool_cap(self, toy):
        problem = make_problem(toy, "SPO", ["python", "databases"])
        with pytest.raises(ValueError):
            solve_exact(problem, max_pool_size=2)

    def test_greedy_never_solves_what_exact_proves_infeasible(self, two_factions):
        skills = SkillAssignment({0: {"a"}, 5: {"b"}, 2: {"c"}})
        relation = make_relation("SPA", two_factions)
        problem = TeamFormationProblem(
            two_factions, skills, relation, Task(["a", "b", "c"])
        )
        assert not exists_compatible_team(problem)
        for name in ALGORITHM_NAMES:
            assert not run_algorithm(name, problem, seed=1).solved


class TestValidation:
    def test_validate_team_full_report(self, toy):
        relation = make_relation("SPO", toy.graph)
        oracle = DistanceOracle(relation)
        task = Task(["python", "databases"])
        report = validate_team(["ana", "bob"], task, toy.skills, relation, oracle=oracle)
        assert report.is_valid
        assert report.covers_task
        assert report.is_compatible
        assert report.missing_skills == frozenset()
        assert report.cost == 1.0

    def test_validate_team_missing_skill(self, toy):
        relation = make_relation("SPO", toy.graph)
        report = validate_team(["ana"], Task(["design"]), toy.skills, relation)
        assert not report.covers_task
        assert report.missing_skills == frozenset({"design"})
        assert not report.is_valid

    def test_validate_team_incompatible_pair(self, toy):
        relation = make_relation("DPE", toy.graph)
        report = validate_team(["ana", "kim"], Task(["python"]), toy.skills, relation)
        assert not report.is_compatible
        assert ("ana", "kim") in report.incompatible_pairs or ("kim", "ana") in report.incompatible_pairs

    def test_fraction_of_compatible_teams(self, toy):
        relation = make_relation("DPE", toy.graph)
        teams = [["ana", "bob"], ["ana", "kim"], None]
        assert fraction_of_compatible_teams(teams, relation) == pytest.approx(1 / 3)
        assert fraction_of_compatible_teams([], relation) == 0.0
