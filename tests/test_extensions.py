"""Tests for the future-work extensions: clustering, sign prediction, top-k teams."""

from __future__ import annotations

import pytest

from repro.compatibility import make_relation
from repro.datasets import toy_dataset
from repro.signed import (
    NEGATIVE,
    POSITIVE,
    AlwaysPositivePredictor,
    CompatibilityPredictor,
    ShortestPathSignPredictor,
    SignedGraph,
    TriangleVotePredictor,
    compare_predictors,
    evaluate_predictor,
    greedy_balance_partition,
    partition_agreement,
    partition_quality,
    propagate_balance_partition,
)
from repro.signed.generators import planted_factions_graph
from repro.skills import Task
from repro.teams import (
    LeastCompatibleSkillFirst,
    MinimumDistanceUser,
    TeamFormationProblem,
    diverse_top_k_teams,
    team_covers_task,
    team_is_compatible,
    top_k_teams,
)


class TestPartitionQuality:
    def test_perfect_partition_has_zero_frustration(self, two_factions):
        partition = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
        quality = partition_quality(two_factions, partition)
        assert quality.frustrated_edges == 0
        assert quality.agreement_ratio == 1.0
        assert quality.num_clusters == 2

    def test_single_cluster_counts_negative_within(self, two_factions):
        partition = {node: 0 for node in two_factions.nodes()}
        quality = partition_quality(two_factions, partition)
        assert quality.negative_within == 2
        assert quality.positive_cut == 0
        assert quality.frustration_ratio == pytest.approx(2 / 8)

    def test_missing_node_rejected(self, two_factions):
        with pytest.raises(ValueError):
            partition_quality(two_factions, {0: 0})

    def test_empty_graph(self):
        quality = partition_quality(SignedGraph(), {})
        assert quality.frustration_ratio == 0.0


class TestPropagatePartition:
    def test_recovers_balanced_two_factions(self, two_factions):
        partition = propagate_balance_partition(two_factions)
        assert partition_quality(two_factions, partition).frustrated_edges == 0
        planted = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
        assert partition_agreement(partition, planted) == 1.0

    def test_handles_disconnected_graphs(self):
        graph = SignedGraph.from_edges([(0, 1, +1), (5, 6, -1)])
        partition = propagate_balance_partition(graph)
        assert set(partition) == {0, 1, 5, 6}


class TestGreedyPartition:
    def test_zero_frustration_on_balanced_graph(self, two_factions):
        partition, quality = greedy_balance_partition(two_factions, seed=1)
        assert quality.frustrated_edges == 0
        assert partition_quality(two_factions, partition) == quality

    def test_recovers_planted_factions_approximately(self):
        graph, factions = planted_factions_graph(
            80, average_degree=6.0, sign_noise=0.05, seed=3
        )
        partition, quality = greedy_balance_partition(graph, restarts=4, seed=3)
        assert quality.frustration_ratio < 0.15
        assert partition_agreement(partition, factions) > 0.8

    def test_initial_assignment_is_used(self, two_factions):
        planted = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
        partition, quality = greedy_balance_partition(
            two_factions, restarts=1, seed=1, initial=planted
        )
        assert quality.frustrated_edges == 0

    def test_more_clusters_never_hurt_frustration(self, small_random_graph):
        _, two = greedy_balance_partition(small_random_graph, num_clusters=2, restarts=3, seed=2)
        _, four = greedy_balance_partition(small_random_graph, num_clusters=4, restarts=3, seed=2)
        assert four.frustrated_edges <= two.frustrated_edges + 2

    def test_invalid_arguments(self, two_factions):
        with pytest.raises(ValueError):
            greedy_balance_partition(two_factions, num_clusters=0)
        with pytest.raises(ValueError):
            greedy_balance_partition(two_factions, restarts=0)

    def test_empty_graph(self):
        partition, quality = greedy_balance_partition(SignedGraph(), seed=1)
        assert partition == {}
        assert quality.total_edges == 0


class TestPartitionAgreement:
    def test_identical_partitions(self):
        partition = {0: 0, 1: 1, 2: 0}
        assert partition_agreement(partition, partition) == 1.0

    def test_label_permutation_is_ignored(self):
        first = {0: 0, 1: 0, 2: 1}
        second = {0: 5, 1: 5, 2: 9}
        assert partition_agreement(first, second) == 1.0

    def test_disagreement_detected(self):
        first = {0: 0, 1: 0, 2: 0}
        second = {0: 0, 1: 1, 2: 2}
        assert partition_agreement(first, second) == 0.0

    def test_single_common_node(self):
        assert partition_agreement({0: 0}, {0: 1}) == 1.0


class TestSignPredictors:
    @pytest.fixture
    def balanced_graph(self):
        graph, _ = planted_factions_graph(60, average_degree=6.0, sign_noise=0.0, seed=11)
        return graph

    def test_always_positive(self, two_factions):
        predictor = AlwaysPositivePredictor(two_factions)
        assert predictor.predict(0, 3) == POSITIVE

    def test_triangle_vote_completes_balanced_triangle(self):
        graph = SignedGraph.from_edges([(0, 1, +1), (1, 2, -1)])
        assert TriangleVotePredictor(graph).predict(0, 2) == NEGATIVE
        graph2 = SignedGraph.from_edges([(0, 1, -1), (1, 2, -1)])
        assert TriangleVotePredictor(graph2).predict(0, 2) == POSITIVE

    def test_triangle_vote_falls_back_to_default(self):
        graph = SignedGraph.from_edges([(0, 1, +1), (2, 3, +1)])
        assert TriangleVotePredictor(graph, default=NEGATIVE).predict(0, 2) == NEGATIVE

    def test_shortest_path_sign_predictor(self, line_graph):
        predictor = ShortestPathSignPredictor(line_graph)
        assert predictor.predict(0, 1) == POSITIVE
        assert predictor.predict(0, 2) == NEGATIVE

    def test_compatibility_predictor_uses_relation(self, two_factions):
        predictor = CompatibilityPredictor(
            two_factions, lambda graph: make_relation("SPA", graph)
        )
        assert predictor.predict(0, 1) == POSITIVE
        assert predictor.predict(0, 4) == NEGATIVE
        assert predictor.name == "compatibility-SPA"

    def test_evaluate_predictor_accuracy_on_balanced_graph(self, balanced_graph):
        report = evaluate_predictor(
            balanced_graph,
            lambda graph: ShortestPathSignPredictor(graph),
            test_fraction=0.2,
            seed=5,
        )
        assert report.evaluated_edges > 0
        assert report.accuracy > 0.7
        assert 0.0 <= report.positive_recall <= 1.0
        assert 0.0 <= report.negative_recall <= 1.0

    def test_structure_aware_beats_always_positive_on_negative_recall(self, balanced_graph):
        reports = compare_predictors(
            balanced_graph,
            [
                lambda graph: AlwaysPositivePredictor(graph),
                lambda graph: TriangleVotePredictor(graph),
            ],
            test_fraction=0.2,
            seed=7,
        )
        always_positive, triangle = reports
        assert always_positive.negative_recall == 0.0
        assert triangle.negative_recall >= always_positive.negative_recall

    def test_evaluate_predictor_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            evaluate_predictor(SignedGraph(), AlwaysPositivePredictor)

    def test_compare_predictors_share_test_set(self, balanced_graph):
        reports = compare_predictors(
            balanced_graph,
            [lambda g: AlwaysPositivePredictor(g), lambda g: AlwaysPositivePredictor(g)],
            seed=3,
        )
        assert reports[0].evaluated_edges == reports[1].evaluated_edges
        assert reports[0].actual_positive == reports[1].actual_positive


class TestTopKTeams:
    @pytest.fixture
    def problem(self):
        dataset = toy_dataset()
        relation = make_relation("SPO", dataset.graph)
        task = Task(["python", "databases", "writing"])
        return TeamFormationProblem(dataset.graph, dataset.skills, relation, task)

    def test_teams_are_sorted_by_cost_and_valid(self, problem):
        teams = top_k_teams(
            problem, LeastCompatibleSkillFirst(), MinimumDistanceUser(), k=3
        )
        assert 1 <= len(teams) <= 3
        costs = [cost for _, cost in teams]
        assert costs == sorted(costs)
        for team, cost in teams:
            assert team_covers_task(team, problem.task, problem.assignment)
            assert team_is_compatible(team, problem.relation)
            assert cost == problem.oracle.max_pairwise_distance(team)

    def test_teams_are_distinct(self, problem):
        teams = top_k_teams(
            problem, LeastCompatibleSkillFirst(), MinimumDistanceUser(), k=5
        )
        team_sets = [team for team, _ in teams]
        assert len(team_sets) == len(set(team_sets))

    def test_diverse_teams_respect_overlap_bound(self, problem):
        teams = diverse_top_k_teams(
            problem,
            LeastCompatibleSkillFirst(),
            MinimumDistanceUser(),
            k=3,
            max_overlap=0.34,
        )
        for i, (first, _) in enumerate(teams):
            for second, _ in teams[i + 1 :]:
                overlap = len(first & second) / len(first | second)
                assert overlap <= 0.34 + 1e-9

    def test_invalid_arguments(self, problem):
        with pytest.raises(ValueError):
            top_k_teams(problem, LeastCompatibleSkillFirst(), MinimumDistanceUser(), k=0)
        with pytest.raises(ValueError):
            diverse_top_k_teams(
                problem,
                LeastCompatibleSkillFirst(),
                MinimumDistanceUser(),
                max_overlap=1.5,
            )
