"""Shared pytest fixtures: small deterministic graphs, datasets and helpers."""

from __future__ import annotations

import pytest

from repro.datasets import figure_1a_graph, figure_1b_graph, toy_dataset
from repro.signed import SignedGraph
from repro.signed.generators import planted_factions_graph
from repro.skills import SkillAssignment, Task


@pytest.fixture
def triangle_balanced() -> SignedGraph:
    """A balanced triangle: one all-positive face (+ + +)."""
    return SignedGraph.from_edges([(0, 1, +1), (1, 2, +1), (0, 2, +1)])


@pytest.fixture
def triangle_unbalanced() -> SignedGraph:
    """An unbalanced triangle: two positive edges and one negative (+ + -)."""
    return SignedGraph.from_edges([(0, 1, +1), (1, 2, +1), (0, 2, -1)])


@pytest.fixture
def two_factions() -> SignedGraph:
    """A perfectly balanced graph with two hostile factions {0,1,2} and {3,4,5}."""
    return SignedGraph.from_edges(
        [
            (0, 1, +1),
            (1, 2, +1),
            (0, 2, +1),
            (3, 4, +1),
            (4, 5, +1),
            (3, 5, +1),
            (2, 3, -1),
            (0, 5, -1),
        ]
    )


@pytest.fixture
def figure_1a() -> SignedGraph:
    """The paper's Figure 1(a) example graph."""
    return figure_1a_graph()


@pytest.fixture
def figure_1b() -> SignedGraph:
    """The Figure 1(b)-style example graph (prefix property failure)."""
    return figure_1b_graph()


@pytest.fixture
def prefix_trap_graph() -> SignedGraph:
    """A graph where the SBPH heuristic misses a pair from *both* directions.

    The exact SBP search finds a positive structurally balanced path between
    nodes 2 and 4, but the prefix-property heuristic misses it whichever
    endpoint the search starts from — so even the symmetrised SBPH relation
    (compatible iff either direction finds a path) strictly under-approximates
    SBP here.  Found by randomised search over small dense signed graphs.
    """
    return SignedGraph.from_edges(
        [
            (0, 1, -1), (0, 4, +1), (0, 6, +1), (0, 8, +1),
            (1, 2, +1), (1, 3, +1), (1, 5, -1), (1, 6, -1), (1, 7, +1),
            (2, 5, +1), (2, 8, +1), (3, 5, -1), (4, 8, -1),
            (5, 6, +1), (6, 7, +1), (7, 8, -1),
        ]
    )


@pytest.fixture
def toy():
    """The hand-crafted 12-user dataset."""
    return toy_dataset()


@pytest.fixture
def small_random_graph() -> SignedGraph:
    """A small random planted-faction graph (deterministic seed)."""
    graph, _factions = planted_factions_graph(
        30, average_degree=3.5, sign_noise=0.1, seed=123
    )
    return graph


@pytest.fixture
def simple_assignment() -> SkillAssignment:
    """A tiny skill assignment used by the skills / team tests."""
    return SkillAssignment(
        {
            "a": {"s1", "s2"},
            "b": {"s2", "s3"},
            "c": {"s3"},
            "d": {"s1", "s4"},
            "e": set(),
        }
    )


@pytest.fixture
def line_graph() -> SignedGraph:
    """A signed path 0 -+ 1 -- 2 -+ 3 (one negative edge in the middle)."""
    return SignedGraph.from_edges([(0, 1, +1), (1, 2, -1), (2, 3, +1)])
