"""Tests for skill generators, statistics and serialisation."""

from __future__ import annotations

import pytest

from repro.skills import (
    SkillAssignment,
    assign_skills_uniform,
    assign_skills_zipf,
    assignment_from_json_dict,
    assignment_to_json_dict,
    read_assignment,
    skill_statistics,
    write_assignment,
    zipf_skill_frequencies,
)
from repro.skills.generators import assign_skills_from_communities
from repro.skills.io import read_user_skill_pairs
from repro.skills.stats import skill_frequency_table


class TestZipfFrequencies:
    def test_total_and_monotonicity(self):
        frequencies = zipf_skill_frequencies(10, 100, exponent=1.0)
        assert len(frequencies) == 10
        assert all(f >= 1 for f in frequencies)
        assert frequencies == sorted(frequencies, reverse=True)

    def test_higher_exponent_concentrates_mass(self):
        flat = zipf_skill_frequencies(20, 200, exponent=0.5)
        steep = zipf_skill_frequencies(20, 200, exponent=2.0)
        assert steep[0] > flat[0]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            zipf_skill_frequencies(0, 10)
        with pytest.raises(ValueError):
            zipf_skill_frequencies(10, 0)
        with pytest.raises(ValueError):
            zipf_skill_frequencies(10, 10, exponent=0)


class TestAssignSkills:
    def test_zipf_assignment_covers_all_users(self):
        users = list(range(50))
        assignment = assign_skills_zipf(users, num_skills=20, skills_per_user=3, seed=1)
        assert set(assignment.users()) == set(users)
        assert all(assignment.skills_of(user) for user in users)

    def test_zipf_assignment_deterministic(self):
        users = list(range(30))
        first = assign_skills_zipf(users, num_skills=10, seed=7)
        second = assign_skills_zipf(users, num_skills=10, seed=7)
        assert first == second

    def test_zipf_frequencies_follow_rank(self):
        users = list(range(200))
        assignment = assign_skills_zipf(users, num_skills=30, skills_per_user=4, seed=3)
        top = assignment.skill_frequency("skill-1")
        tail = assignment.skill_frequency("skill-30")
        assert top > tail

    def test_zipf_empty_users_rejected(self):
        with pytest.raises(ValueError):
            assign_skills_zipf([], num_skills=5)

    def test_zipf_legacy_path_matches_contract(self, monkeypatch):
        # The numpy-less fallback keeps the same guarantees (coverage, rank
        # monotonicity, determinism) even though its RNG stream differs.
        import repro.skills.generators as generators

        monkeypatch.setattr(generators, "_np", None)
        users = list(range(120))
        first = assign_skills_zipf(users, num_skills=15, skills_per_user=3, seed=9)
        second = assign_skills_zipf(users, num_skills=15, skills_per_user=3, seed=9)
        assert first == second
        assert all(first.skills_of(user) for user in users)
        assert first.skill_frequency("skill-1") > first.skill_frequency("skill-15")

    def test_zipf_vectorised_maps_are_consistent(self):
        pytest.importorskip("numpy")
        users = [f"u{i}" for i in range(150)]
        assignment = assign_skills_zipf(users, num_skills=12, skills_per_user=2.5, seed=4)
        for user in users:
            for skill in assignment.skills_of(user):
                assert user in assignment.users_with(skill)
        for skill in assignment.skills():
            for user in assignment.users_with(skill):
                assert skill in assignment.skills_of(user)

    def test_uniform_assignment_exact_count(self):
        assignment = assign_skills_uniform(list(range(20)), num_skills=10, skills_per_user=3, seed=2)
        assert all(len(assignment.skills_of(user)) == 3 for user in range(20))

    def test_uniform_more_skills_than_universe_clamped(self):
        assignment = assign_skills_uniform([1, 2], num_skills=2, skills_per_user=5, seed=2)
        assert all(len(assignment.skills_of(user)) == 2 for user in (1, 2))

    def test_community_assignment_uses_community_pools(self):
        communities = {user: user % 2 for user in range(40)}
        assignment = assign_skills_from_communities(communities, skills_per_user=3, seed=5)
        for user in range(40):
            for skill in assignment.skills_of(user):
                assert str(skill).startswith((f"c{user % 2}-", "shared-"))

    def test_community_assignment_empty_rejected(self):
        with pytest.raises(ValueError):
            assign_skills_from_communities({})


class TestSkillStatistics:
    def test_statistics_fields(self, simple_assignment):
        stats = skill_statistics(simple_assignment)
        assert stats.num_users == 5
        assert stats.num_skills == 4
        assert stats.total_assignments == 7
        assert stats.users_without_skills == 1
        assert stats.average_skills_per_user == pytest.approx(7 / 5)
        assert stats.as_dict()["#skills"] == 4

    def test_statistics_empty_assignment(self):
        stats = skill_statistics(SkillAssignment())
        assert stats.num_users == 0
        assert stats.max_skill_frequency == 0

    def test_frequency_table_sorted(self, simple_assignment):
        table = skill_frequency_table(simple_assignment)
        frequencies = list(table.values())
        assert frequencies == sorted(frequencies, reverse=True)


class TestSkillIO:
    def test_json_round_trip(self, tmp_path, simple_assignment):
        path = tmp_path / "skills.json"
        write_assignment(simple_assignment, path)
        loaded = read_assignment(path)
        assert set(loaded.users()) == set(simple_assignment.users())
        assert loaded.skills_of("a") == frozenset({"s1", "s2"})

    def test_json_dict_integer_users_round_trip(self):
        assignment = SkillAssignment({1: {"x"}, 2: {"y"}})
        payload = assignment_to_json_dict(assignment)
        restored = assignment_from_json_dict(payload)
        assert restored.skills_of(1) == frozenset({"x"})

    def test_read_missing_file_raises(self, tmp_path):
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError):
            read_assignment(tmp_path / "absent.json")

    def test_read_user_skill_pairs(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text("# comment\n1 databases\n1 search engines\n2 ml\n")
        assignment = read_user_skill_pairs(path)
        assert assignment.skills_of(1) == frozenset({"databases", "search engines"})
        assert assignment.skills_of(2) == frozenset({"ml"})

    def test_read_user_skill_pairs_malformed_raises(self, tmp_path):
        from repro.exceptions import DatasetError

        path = tmp_path / "bad.txt"
        path.write_text("justoneword\n")
        with pytest.raises(DatasetError):
            read_user_skill_pairs(path)
