"""Tests for pairwise compatibility statistics, distances and skill compatibility."""

from __future__ import annotations

import itertools

import pytest

from repro.compatibility import (
    CompatibilityMatrix,
    DistanceOracle,
    SkillCompatibilityIndex,
    average_compatible_distance,
    exact_pair_statistics,
    make_relation,
    pair_statistics,
    relation_overlap,
    sampled_pair_statistics,
    skill_pair_statistics,
    source_sampled_pair_statistics,
    task_has_compatible_skills,
)
from repro.skills import SkillAssignment


class TestPairStatistics:
    def test_exact_statistics_on_two_factions(self, two_factions):
        relation = make_relation("SPA", two_factions)
        stats = exact_pair_statistics(relation)
        assert stats.evaluated_pairs == 15
        # SPA on the balanced two-faction graph: exactly the intra-faction pairs.
        assert stats.compatible_pairs == 6
        assert stats.fraction == pytest.approx(6 / 15)
        assert stats.percentage == pytest.approx(40.0)
        assert not stats.sampled

    def test_nne_statistics(self, two_factions):
        stats = exact_pair_statistics(make_relation("NNE", two_factions))
        assert stats.compatible_pairs == 13  # all pairs except the two negative edges

    def test_matrix_matches_exact_statistics(self, two_factions):
        relation = make_relation("SPO", two_factions)
        matrix = CompatibilityMatrix(relation)
        assert matrix.statistics().compatible_pairs == exact_pair_statistics(relation).compatible_pairs
        assert matrix.are_compatible(0, 1)
        assert matrix.are_compatible(3, 3)
        assert 1 in matrix.compatible_with(0)

    def test_matrix_unknown_node_raises_node_not_found(self, two_factions):
        # The CompatibilityRelation contract raises NodeNotFoundError for
        # unknown nodes; the materialised matrix must do the same instead of
        # leaking a bare KeyError.
        from repro.exceptions import NodeNotFoundError

        matrix = CompatibilityMatrix(make_relation("SPO", two_factions))
        with pytest.raises(NodeNotFoundError):
            matrix.are_compatible(0, "ghost")
        with pytest.raises(NodeNotFoundError):
            matrix.are_compatible("ghost", 0)
        with pytest.raises(NodeNotFoundError):
            matrix.compatible_with("ghost")

    def test_exact_statistics_on_non_orderable_mixed_nodes(self):
        # Index-based pair enumeration must not rely on node comparability or
        # on repr uniqueness — mixed node types with colliding reprs work.
        from repro.signed import SignedGraph

        class Oddball:
            def __repr__(self) -> str:  # collides with the string node "odd"
                return "odd"

        odd = Oddball()
        graph = SignedGraph.from_edges([(0, "odd", +1), ("odd", odd, +1), (0, odd, +1)])
        relation = make_relation("SPO", graph)
        stats = exact_pair_statistics(relation)
        assert stats.evaluated_pairs == 3
        assert stats.compatible_pairs == 3
        matrix = CompatibilityMatrix(relation)
        assert len(matrix.compatible_pairs()) == 3

    def test_sampled_statistics_reasonable(self, small_random_graph):
        relation = make_relation("SPO", small_random_graph)
        exact = exact_pair_statistics(relation)
        sampled = sampled_pair_statistics(relation, 2000, seed=3)
        assert sampled.sampled
        assert abs(sampled.fraction - exact.fraction) < 0.15

    def test_source_sampled_statistics_reasonable(self, small_random_graph):
        relation = make_relation("SPO", small_random_graph)
        exact = exact_pair_statistics(relation)
        sampled = source_sampled_pair_statistics(relation, 10, seed=3)
        assert sampled.sampled
        assert abs(sampled.fraction - exact.fraction) < 0.2

    def test_source_sampled_all_sources_matches_exact(self, two_factions):
        relation = make_relation("SPA", two_factions)
        exact = exact_pair_statistics(relation)
        sampled = source_sampled_pair_statistics(relation, 100, seed=1)
        # Sampling every node counts each unordered pair twice; fractions agree.
        assert sampled.fraction == pytest.approx(exact.fraction)

    def test_pair_statistics_switches_mode(self, two_factions):
        relation = make_relation("SPA", two_factions)
        assert not pair_statistics(relation, max_exact_nodes=10).sampled
        assert pair_statistics(relation, max_exact_nodes=2, num_sampled_sources=3).sampled

    def test_invalid_sample_sizes(self, two_factions):
        relation = make_relation("SPA", two_factions)
        with pytest.raises(ValueError):
            sampled_pair_statistics(relation, 0)
        with pytest.raises(ValueError):
            source_sampled_pair_statistics(relation, 0)

    def test_empty_fraction_is_zero(self):
        from repro.compatibility.matrix import PairStatistics

        stats = PairStatistics("SPA", 0, 0, sampled=False)
        assert stats.fraction == 0.0


class TestRelationOverlap:
    def test_overlap_of_relation_with_itself_is_one(self, two_factions):
        relation = make_relation("SPO", two_factions)
        assert relation_overlap(relation, relation) == 1.0

    def test_overlap_detects_differences(self, prefix_trap_graph):
        # The symmetrised SBPH relation still under-approximates SBP on graphs
        # where the heuristic misses a pair from both directions.
        sbp = make_relation("SBP", prefix_trap_graph)
        sbph = make_relation("SBPH", prefix_trap_graph)
        overlap = relation_overlap(sbp, sbph)
        assert 0.0 < overlap < 1.0

    def test_explicit_pair_list(self, prefix_trap_graph):
        sbp = make_relation("SBP", prefix_trap_graph)
        sbph = make_relation("SBPH", prefix_trap_graph)
        assert relation_overlap(sbp, sbph, pairs=[(2, 4)]) == 0.0
        assert relation_overlap(sbp, sbph, pairs=[(2, 8)]) == 1.0

    def test_mismatched_graphs_rejected(self, two_factions, figure_1a):
        with pytest.raises(ValueError):
            relation_overlap(make_relation("SPO", two_factions), make_relation("SPO", figure_1a))


class TestDistanceOracle:
    def test_sp_relation_uses_plain_shortest_paths(self, two_factions):
        oracle = DistanceOracle(make_relation("SPO", two_factions))
        assert oracle.distance(0, 1) == 1
        assert oracle.distance(1, 4) == 3
        assert oracle.distance(2, 2) == 0.0

    def test_balanced_relation_uses_balanced_paths(self, figure_1a):
        oracle = DistanceOracle(make_relation("SBP", figure_1a))
        # Plain shortest path u-v has length 2 but the balanced positive path has 4.
        assert oracle.distance("u", "v") == 4

    def test_nne_uses_sign_agnostic_distance(self, figure_1a):
        oracle = DistanceOracle(make_relation("NNE", figure_1a))
        assert oracle.distance("u", "v") == 2

    def test_unreachable_distance_is_infinite(self):
        from repro.signed import SignedGraph

        graph = SignedGraph.from_edges([(0, 1, +1)], nodes=["iso"])
        oracle = DistanceOracle(make_relation("SPO", graph))
        assert oracle.distance(0, "iso") == float("inf")

    def test_max_and_sum_pairwise(self, two_factions):
        oracle = DistanceOracle(make_relation("NNE", two_factions))
        assert oracle.max_pairwise_distance([0, 1, 2]) == 1
        assert oracle.sum_pairwise_distance([0, 1, 2]) == 3
        assert oracle.max_pairwise_distance([0]) == 0.0

    def test_distance_to_set(self, two_factions):
        oracle = DistanceOracle(make_relation("NNE", two_factions))
        assert oracle.distance_to_set(4, [0, 1]) == 3
        assert oracle.distance_to_set(4, []) == 0.0

    def test_average_compatible_distance_exact(self, two_factions):
        relation = make_relation("SPA", two_factions)
        average, pairs = average_compatible_distance(relation)
        assert pairs == 6
        assert average == pytest.approx(1.0)  # intra-faction pairs are all adjacent

    def test_average_compatible_distance_sampled(self, small_random_graph):
        relation = make_relation("SPO", small_random_graph)
        exact_avg, _ = average_compatible_distance(relation)
        sampled_avg, pairs = average_compatible_distance(
            relation, max_exact_nodes=2, num_sampled_sources=10, seed=5
        )
        assert pairs > 0
        assert abs(sampled_avg - exact_avg) < 1.0


class TestSkillCompatibility:
    @pytest.fixture
    def skills(self, two_factions):
        return SkillAssignment(
            {
                0: {"alpha"},
                1: {"beta"},
                2: {"gamma"},
                3: {"alpha"},
                4: {"beta"},
                5: {"gamma", "delta"},
            }
        )

    def test_pair_degree_counts_compatible_pairs(self, two_factions, skills):
        index = SkillCompatibilityIndex(make_relation("SPA", two_factions), skills)
        # alpha = {0, 3}, beta = {1, 4}: compatible pairs are (0,1) and (3,4).
        assert index.pair_degree("alpha", "beta") == 2
        assert index.skills_compatible("alpha", "beta")

    def test_self_compatibility_counts(self, two_factions, skills):
        index = SkillCompatibilityIndex(make_relation("SPA", two_factions), skills)
        # User 5 holds both gamma and delta: self-compatibility counts.
        assert index.pair_degree("gamma", "delta") >= 1

    def test_count_cap_short_circuits(self, two_factions, skills):
        index = SkillCompatibilityIndex(
            make_relation("SPA", two_factions), skills, count_cap=1
        )
        assert index.pair_degree("alpha", "beta") == 1

    def test_skill_degree_sums_pairs(self, two_factions, skills):
        index = SkillCompatibilityIndex(make_relation("SPA", two_factions), skills)
        expected = sum(
            index.pair_degree("alpha", other)
            for other in skills.skills()
            if other != "alpha"
        )
        assert index.skill_degree("alpha") == expected

    def test_rank_skills_by_degree_is_ascending(self, two_factions, skills):
        index = SkillCompatibilityIndex(make_relation("SPA", two_factions), skills)
        ranked = index.rank_skills_by_degree(["alpha", "beta", "gamma", "delta"])
        degrees = [
            index.skill_degree(skill, others=["alpha", "beta", "gamma", "delta"])
            for skill in ranked
        ]
        assert degrees == sorted(degrees)

    def test_skill_pair_statistics_exact(self, two_factions, skills):
        index = SkillCompatibilityIndex(make_relation("SPA", two_factions), skills)
        stats = skill_pair_statistics(index)
        assert stats.evaluated_skill_pairs == 6
        assert 0 < stats.compatible_skill_pairs <= 6
        assert not stats.sampled

    def test_skill_pair_statistics_sampled(self, two_factions, skills):
        index = SkillCompatibilityIndex(make_relation("SPA", two_factions), skills)
        stats = skill_pair_statistics(index, max_exact_skills=0, num_sampled_pairs=50, seed=2)
        assert stats.sampled
        assert stats.evaluated_skill_pairs == 50

    def test_task_has_compatible_skills(self, two_factions, skills):
        index = SkillCompatibilityIndex(make_relation("SPA", two_factions), skills)
        assert task_has_compatible_skills(index, ["alpha", "beta"])
        # gamma holders are 2 and 5 (different factions); alpha holders 0 and 3.
        # Under SPA (balanced graph = same faction), gamma-alpha is still
        # compatible via (0, 2); check a genuinely incompatible combination:
        assert index.pair_degree("alpha", "gamma") >= 1
