"""Tests for signed path algorithms (Algorithm 1, walks, balanced paths)."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.signed import (
    NEGATIVE,
    POSITIVE,
    BalancedPathSearch,
    SignedGraph,
    all_shortest_paths,
    count_signed_shortest_paths,
    enumerate_simple_paths,
    shortest_balanced_positive_path,
    shortest_path_lengths,
    shortest_signed_walk_lengths,
    signed_bfs,
)


def brute_force_shortest_path_sign_counts(graph, source, target):
    """Reference implementation: enumerate all shortest paths and count signs."""
    paths = all_shortest_paths(graph, source, target)
    positive = sum(1 for path in paths if graph.path_sign(path) == POSITIVE)
    negative = len(paths) - positive
    return positive, negative


class TestSignedBFS:
    def test_source_counts(self, line_graph):
        result = signed_bfs(line_graph, 0)
        assert result.counts(0) == (1, 0)
        assert result.length(0) == 0

    def test_line_graph_signs_propagate(self, line_graph):
        result = signed_bfs(line_graph, 0)
        assert result.counts(1) == (1, 0)
        assert result.counts(2) == (0, 1)   # one negative edge on the way
        assert result.counts(3) == (0, 1)
        assert result.length(3) == 3

    def test_missing_source_raises(self, line_graph):
        with pytest.raises(NodeNotFoundError):
            signed_bfs(line_graph, 99)

    def test_unreachable_node(self):
        graph = SignedGraph.from_edges([(0, 1, +1)], nodes=[2])
        result = signed_bfs(graph, 0)
        assert not result.reachable(2)
        assert result.length(2) == float("inf")
        assert result.counts(2) == (0, 0)

    def test_parallel_shortest_paths_counted(self):
        # Two shortest paths 0-1-3 (positive) and 0-2-3 (negative).
        graph = SignedGraph.from_edges(
            [(0, 1, +1), (1, 3, +1), (0, 2, +1), (2, 3, -1)]
        )
        result = signed_bfs(graph, 0)
        assert result.counts(3) == (1, 1)
        assert result.length(3) == 2

    def test_matches_brute_force_on_figure_1a(self, figure_1a):
        for target in figure_1a.nodes():
            if target == "u":
                continue
            expected = brute_force_shortest_path_sign_counts(figure_1a, "u", target)
            result = signed_bfs(figure_1a, "u")
            assert result.counts(target) == expected

    def test_matches_brute_force_on_random_graph(self, small_random_graph):
        nodes = small_random_graph.nodes()
        source = nodes[0]
        result = signed_bfs(small_random_graph, source)
        for target in nodes[1:8]:
            expected = brute_force_shortest_path_sign_counts(
                small_random_graph, source, target
            )
            assert result.counts(target) == expected

    def test_count_signed_shortest_paths_wrapper(self, figure_1a):
        positive, negative, length = count_signed_shortest_paths(figure_1a, "u", "v")
        assert (positive, negative) == (0, 1)
        assert length == 2

    def test_negative_edge_swaps_counts(self):
        graph = SignedGraph.from_edges([(0, 1, -1), (1, 2, -1)])
        result = signed_bfs(graph, 0)
        assert result.counts(1) == (0, 1)
        assert result.counts(2) == (1, 0)   # enemy of my enemy


class TestShortestPathLengths:
    def test_lengths(self, line_graph):
        lengths = shortest_path_lengths(line_graph, 0)
        assert lengths == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_missing_source_raises(self, line_graph):
        with pytest.raises(NodeNotFoundError):
            shortest_path_lengths(line_graph, "missing")


class TestSignedWalks:
    def test_positive_and_negative_walks_on_line(self, line_graph):
        positive, negative = shortest_signed_walk_lengths(line_graph, 0)
        assert positive[0] == 0
        assert positive[1] == 1
        assert negative[2] == 2
        # A positive walk to node 2 must traverse the negative edge twice.
        assert positive.get(2, None) in (None, 4)

    def test_balanced_two_faction_graph_has_no_positive_cross_walks(self, two_factions):
        positive, negative = shortest_signed_walk_lengths(two_factions, 0)
        # In a balanced graph, every walk to the other faction is negative.
        for node in (3, 4, 5):
            assert node not in positive
            assert node in negative
        for node in (1, 2):
            assert node in positive


class TestPathEnumeration:
    def test_all_shortest_paths_basic(self):
        graph = SignedGraph.from_edges(
            [(0, 1, +1), (1, 3, +1), (0, 2, +1), (2, 3, -1)]
        )
        paths = all_shortest_paths(graph, 0, 3)
        assert sorted(paths) == [[0, 1, 3], [0, 2, 3]]

    def test_all_shortest_paths_same_node(self, line_graph):
        assert all_shortest_paths(line_graph, 2, 2) == [[2]]

    def test_all_shortest_paths_unreachable(self):
        graph = SignedGraph.from_edges([(0, 1, +1)], nodes=["z"])
        assert all_shortest_paths(graph, 0, "z") == []

    def test_enumerate_simple_paths_respects_bound(self, two_factions):
        short = list(enumerate_simple_paths(two_factions, 0, 2, max_length=1))
        assert short == [[0, 2]]
        longer = list(enumerate_simple_paths(two_factions, 0, 2, max_length=2))
        assert [0, 1, 2] in longer

    def test_enumerate_simple_paths_all_are_simple(self, small_random_graph):
        nodes = small_random_graph.nodes()
        for path in enumerate_simple_paths(small_random_graph, nodes[0], nodes[1], max_length=4):
            assert len(path) == len(set(path))
            assert path[0] == nodes[0] and path[-1] == nodes[1]

    def test_enumerate_negative_bound_rejected(self, line_graph):
        with pytest.raises(ValueError):
            list(enumerate_simple_paths(line_graph, 0, 3, max_length=-1))


class TestBalancedPathSearch:
    def test_exact_finds_positive_balanced_path_in_figure_1a(self, figure_1a):
        result = BalancedPathSearch(figure_1a).search_exact("u")
        assert result.has_positive_path("v")
        assert result.positive_length("v") == 4

    def test_exact_respects_negative_edge_incompatibility(self, figure_1a):
        # x1 is a direct enemy of u; no positive balanced path may exist,
        # because it would close an unbalanced cycle with the negative edge.
        result = BalancedPathSearch(figure_1a).search_exact("u")
        assert not result.has_positive_path("x1")

    def test_heuristic_misses_prefix_property_failure(self, figure_1b):
        exact = BalancedPathSearch(figure_1b).search_exact("u")
        heuristic = BalancedPathSearch(figure_1b).search_heuristic("u")
        assert exact.has_positive_path("v")
        assert not heuristic.has_positive_path("v")

    def test_heuristic_is_subset_of_exact(self, small_random_graph):
        search = BalancedPathSearch(small_random_graph)
        source = small_random_graph.nodes()[0]
        exact = search.search_exact(source)
        heuristic = search.search_heuristic(source)
        assert set(heuristic.positive_lengths) <= set(exact.positive_lengths)

    def test_exact_lengths_are_minimal(self, figure_1b):
        result = BalancedPathSearch(figure_1b).search_exact("u")
        # Shortest positive balanced path to x4 is (u, x3, x4).
        assert result.positive_length("x4") == 2
        # The only positive balanced path to v has 5 edges.
        assert result.positive_length("v") == 5

    def test_max_length_bound_limits_reach(self, figure_1b):
        bounded = BalancedPathSearch(figure_1b, max_length=3).search_exact("u")
        assert not bounded.has_positive_path("v")

    def test_expansion_cap_sets_truncated_flag(self, small_random_graph):
        result = BalancedPathSearch(small_random_graph, max_expansions=5).search_exact(
            small_random_graph.nodes()[0]
        )
        assert result.truncated

    def test_invalid_parameters_rejected(self, figure_1a):
        with pytest.raises(ValueError):
            BalancedPathSearch(figure_1a, max_length=-1)
        with pytest.raises(ValueError):
            BalancedPathSearch(figure_1a, max_expansions=0)

    def test_missing_source_raises(self, figure_1a):
        with pytest.raises(NodeNotFoundError):
            BalancedPathSearch(figure_1a).search_exact("nope")


class TestShortestBalancedPositivePath:
    def test_figure_1a_path(self, figure_1a):
        path = shortest_balanced_positive_path(figure_1a, "u", "v")
        assert path == ["u", "x2", "x3", "x4", "v"]

    def test_same_node(self, figure_1a):
        assert shortest_balanced_positive_path(figure_1a, "u", "u") == ["u"]

    def test_direct_enemies_have_no_path(self, figure_1a):
        assert shortest_balanced_positive_path(figure_1a, "u", "x1") is None

    def test_path_is_positive_and_balanced(self, small_random_graph):
        from repro.signed.balance import path_is_balanced

        nodes = small_random_graph.nodes()
        found_any = False
        for target in nodes[1:10]:
            path = shortest_balanced_positive_path(small_random_graph, nodes[0], target)
            if path is None:
                continue
            found_any = True
            assert small_random_graph.path_sign(path) == POSITIVE
            assert path_is_balanced(small_random_graph, path)
        assert found_any

    def test_missing_nodes_raise(self, figure_1a):
        with pytest.raises(NodeNotFoundError):
            shortest_balanced_positive_path(figure_1a, "u", "zzz")
