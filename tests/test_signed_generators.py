"""Tests for the random signed-graph generators."""

from __future__ import annotations

import pytest

from repro.signed import NEGATIVE, POSITIVE, is_balanced, is_connected
from repro.signed.balance import balanced_triangle_fraction
from repro.signed.generators import (
    all_positive_graph,
    balanced_graph,
    connected_planted_factions_graph,
    flip_random_signs,
    planted_factions_graph,
    signed_barabasi_albert,
    signed_erdos_renyi,
    signed_watts_strogatz,
)


class TestPlantedFactions:
    def test_node_count_and_determinism(self):
        graph_a, factions_a = planted_factions_graph(60, seed=1)
        graph_b, factions_b = planted_factions_graph(60, seed=1)
        assert graph_a == graph_b
        assert factions_a == factions_b
        assert graph_a.number_of_nodes() == 60

    def test_different_seeds_differ(self):
        graph_a, _ = planted_factions_graph(60, seed=1)
        graph_b, _ = planted_factions_graph(60, seed=2)
        assert graph_a != graph_b

    def test_zero_noise_two_factions_is_balanced(self):
        graph, _ = balanced_graph(80, seed=5)
        assert is_balanced(graph)

    def test_zero_noise_signs_follow_factions(self):
        graph, factions = planted_factions_graph(60, sign_noise=0.0, seed=3)
        for u, v, sign in graph.edge_triples():
            expected = POSITIVE if factions[u] == factions[v] else NEGATIVE
            assert sign == expected

    def test_noise_creates_unbalanced_triangles(self):
        graph, _ = planted_factions_graph(
            120, average_degree=8.0, sign_noise=0.4, seed=7
        )
        assert balanced_triangle_fraction(graph) < 1.0

    def test_single_faction_all_positive(self):
        graph = all_positive_graph(50, seed=2)
        assert graph.number_of_negative_edges() == 0

    def test_faction_sizes_respected_roughly(self):
        _, factions = planted_factions_graph(
            400, num_factions=2, faction_sizes=[0.8, 0.2], seed=11
        )
        share = sum(1 for f in factions.values() if f == 0) / len(factions)
        assert 0.7 < share < 0.9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            planted_factions_graph(0)
        with pytest.raises(ValueError):
            planted_factions_graph(10, sign_noise=1.5)
        with pytest.raises(ValueError):
            planted_factions_graph(10, topology="ring")
        with pytest.raises(ValueError):
            planted_factions_graph(10, num_factions=2, faction_sizes=[1.0])
        with pytest.raises(ValueError):
            planted_factions_graph(10, num_factions=2, faction_sizes=[1.0, -1.0])

    @pytest.mark.parametrize("topology", ["scale_free", "small_world", "erdos_renyi"])
    def test_all_topologies_produce_graphs(self, topology):
        graph, _ = planted_factions_graph(50, topology=topology, seed=4)
        assert graph.number_of_nodes() == 50
        assert graph.number_of_edges() > 0

    def test_connected_variant_is_connected(self):
        graph, factions = connected_planted_factions_graph(
            80, average_degree=2.0, topology="erdos_renyi", seed=9
        )
        assert is_connected(graph)
        assert set(factions) == set(graph.nodes())


class TestSimpleGenerators:
    def test_erdos_renyi_negative_fraction_close_to_target(self):
        graph = signed_erdos_renyi(300, 0.05, negative_fraction=0.3, seed=1)
        fraction = graph.number_of_negative_edges() / graph.number_of_edges()
        assert 0.2 < fraction < 0.4

    def test_barabasi_albert_edge_count(self):
        graph = signed_barabasi_albert(100, 3, seed=2)
        assert graph.number_of_edges() == (100 - 3) * 3

    def test_watts_strogatz_connected(self):
        graph = signed_watts_strogatz(60, 4, seed=3)
        assert is_connected(graph)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            signed_erdos_renyi(10, 1.5)


class TestPerturbation:
    def test_flip_random_signs_count(self, small_random_graph):
        flipped = flip_random_signs(small_random_graph, 0.5, seed=4)
        differing = sum(
            1
            for u, v, sign in small_random_graph.edge_triples()
            if flipped.sign(u, v) != sign
        )
        assert differing == round(0.5 * small_random_graph.number_of_edges())

    def test_flip_zero_fraction_is_identity(self, small_random_graph):
        assert flip_random_signs(small_random_graph, 0.0, seed=1) == small_random_graph

    def test_flip_original_untouched(self, small_random_graph):
        original_negative = small_random_graph.number_of_negative_edges()
        flip_random_signs(small_random_graph, 1.0, seed=1)
        assert small_random_graph.number_of_negative_edges() == original_negative

    def test_invalid_fraction_rejected(self, small_random_graph):
        with pytest.raises(ValueError):
            flip_random_signs(small_random_graph, 2.0)
