"""Tests for SkillAssignment and Task."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownSkillError
from repro.skills import SkillAssignment, Task
from repro.skills.task import random_tasks


class TestSkillAssignment:
    def test_construction_from_mapping(self, simple_assignment):
        assert len(simple_assignment) == 5
        assert simple_assignment.number_of_skills() == 4

    def test_skills_of(self, simple_assignment):
        assert simple_assignment.skills_of("a") == frozenset({"s1", "s2"})
        assert simple_assignment.skills_of("e") == frozenset()
        assert simple_assignment.skills_of("unknown") == frozenset()

    def test_users_with(self, simple_assignment):
        assert simple_assignment.users_with("s2") == frozenset({"a", "b"})

    def test_users_with_unknown_skill_raises(self, simple_assignment):
        with pytest.raises(UnknownSkillError):
            simple_assignment.users_with("nope")

    def test_has_skill(self, simple_assignment):
        assert simple_assignment.has_skill("a", "s1")
        assert not simple_assignment.has_skill("a", "s3")
        assert not simple_assignment.has_skill("ghost", "s1")

    def test_skill_frequency(self, simple_assignment):
        assert simple_assignment.skill_frequency("s3") == 2
        assert simple_assignment.skill_frequency("missing") == 0

    def test_add_and_remove_skill(self, simple_assignment):
        simple_assignment.add_skill_to_user("e", "s9")
        assert simple_assignment.has_skill("e", "s9")
        simple_assignment.remove_skill_from_user("e", "s9")
        assert not simple_assignment.has_skill("e", "s9")
        assert simple_assignment.skill_frequency("s9") == 0

    def test_remove_missing_skill_is_noop(self, simple_assignment):
        simple_assignment.remove_skill_from_user("a", "does-not-exist")
        assert simple_assignment.skills_of("a") == frozenset({"s1", "s2"})

    def test_covers(self, simple_assignment):
        assert simple_assignment.covers(["a", "b"], ["s1", "s2", "s3"])
        assert not simple_assignment.covers(["a"], ["s3"])
        assert simple_assignment.covers([], [])

    def test_covered_and_missing_skills(self, simple_assignment):
        assert simple_assignment.covered_skills(["a", "c"]) == {"s1", "s2", "s3"}
        assert simple_assignment.missing_skills(["a"], ["s1", "s4"]) == {"s4"}

    def test_restricted_to(self, simple_assignment):
        subset = simple_assignment.restricted_to(["a", "e"])
        assert set(subset.users()) == {"a", "e"}
        assert subset.skills_of("a") == frozenset({"s1", "s2"})

    def test_as_dict_is_a_copy(self, simple_assignment):
        payload = simple_assignment.as_dict()
        payload["a"].add("tampered")
        assert "tampered" not in simple_assignment.skills_of("a")

    def test_equality(self, simple_assignment):
        clone = SkillAssignment(simple_assignment.as_dict())
        assert clone == simple_assignment

    def test_iteration_and_contains(self, simple_assignment):
        assert "a" in simple_assignment
        assert set(iter(simple_assignment)) == {"a", "b", "c", "d", "e"}


class TestTask:
    def test_basic_properties(self):
        task = Task(["s1", "s2", "s2"], name="demo")
        assert len(task) == 2
        assert "s1" in task
        assert set(task) == {"s1", "s2"}

    def test_empty_task_rejected(self):
        with pytest.raises(ValueError):
            Task([])

    def test_equality_and_hash(self):
        assert Task(["a", "b"]) == Task(["b", "a"])
        assert len({Task(["a", "b"]), Task(["b", "a"])}) == 1

    def test_is_coverable(self, simple_assignment):
        assert Task(["s1", "s3"]).is_coverable(simple_assignment)
        assert not Task(["s1", "unknown"]).is_coverable(simple_assignment)

    def test_uncovered_by(self, simple_assignment):
        task = Task(["s1", "s3", "s4"])
        assert task.uncovered_by(simple_assignment, ["a"]) == frozenset({"s3", "s4"})

    def test_random_task_size_and_coverability(self, simple_assignment):
        task = Task.random(simple_assignment, 2, seed=3)
        assert len(task) == 2
        assert task.is_coverable(simple_assignment)

    def test_random_task_deterministic(self, simple_assignment):
        assert Task.random(simple_assignment, 2, seed=5) == Task.random(
            simple_assignment, 2, seed=5
        )

    def test_random_task_too_large_raises(self, simple_assignment):
        with pytest.raises(ValueError):
            Task.random(simple_assignment, 99)

    def test_random_task_invalid_size(self, simple_assignment):
        with pytest.raises(ValueError):
            Task.random(simple_assignment, 0)

    def test_random_tasks_batch(self, simple_assignment):
        tasks = random_tasks(simple_assignment, size=2, count=5, seed=1)
        assert len(tasks) == 5
        assert all(len(task) == 2 for task in tasks)
        # Deterministic given the seed.
        again = random_tasks(simple_assignment, size=2, count=5, seed=1)
        assert tasks == again

    def test_random_tasks_invalid_count(self, simple_assignment):
        with pytest.raises(ValueError):
            random_tasks(simple_assignment, size=1, count=0)
