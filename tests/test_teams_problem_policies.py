"""Tests for the TFSN problem object, cost functions and selection policies."""

from __future__ import annotations

import pytest

from repro.compatibility import DistanceOracle, make_relation
from repro.exceptions import InfeasibleTaskError
from repro.skills import SkillAssignment, Task
from repro.teams import (
    COST_FUNCTIONS,
    LeastCompatibleSkillFirst,
    MinimumDistanceUser,
    MostCompatibleUser,
    RandomUser,
    RarestSkillFirst,
    TeamFormationProblem,
    cardinality_cost,
    diameter_cost,
    get_cost_function,
    sum_distance_cost,
)


@pytest.fixture
def toy_problem(toy):
    relation = make_relation("SPO", toy.graph)
    task = Task(["python", "databases", "design"])
    return TeamFormationProblem(toy.graph, toy.skills, relation, task)


class TestProblem:
    def test_candidates_for_skill(self, toy_problem, toy):
        candidates = toy_problem.candidates_for_skill("python")
        assert candidates == toy.skills.users_with("python")

    def test_compatible_candidates_exclude_team_and_incompatible(self, toy):
        relation = make_relation("DPE", toy.graph)
        problem = TeamFormationProblem(
            toy.graph, toy.skills, relation, Task(["databases"])
        )
        candidates = problem.compatible_candidates("databases", ["ana"])
        # DPE: only direct friends of ana holding 'databases' qualify.
        assert candidates == frozenset({"bob", "cat"})

    def test_infeasible_task_rejected(self, toy):
        relation = make_relation("SPO", toy.graph)
        with pytest.raises(InfeasibleTaskError):
            TeamFormationProblem(toy.graph, toy.skills, relation, Task(["quantum"]))

    def test_relation_graph_mismatch_rejected(self, toy, two_factions):
        relation = make_relation("SPO", two_factions)
        with pytest.raises(ValueError):
            TeamFormationProblem(toy.graph, toy.skills, relation, Task(["python"]))

    def test_skill_index_is_lazy_and_cached(self, toy_problem):
        assert toy_problem.skill_index is toy_problem.skill_index

    def test_result_repr_and_properties(self, toy_problem):
        from repro.teams import lcmd

        result = lcmd(toy_problem)
        assert result.solved
        assert result.team_size == len(result.team)
        assert "LCMD" in repr(result)


class TestCostFunctions:
    def test_diameter_cost(self, toy):
        oracle = DistanceOracle(make_relation("NNE", toy.graph))
        assert diameter_cost(oracle, ["ana", "bob", "cat"]) == 1.0
        assert diameter_cost(oracle, ["ana"]) == 0.0

    def test_sum_distance_cost(self, toy):
        oracle = DistanceOracle(make_relation("NNE", toy.graph))
        assert sum_distance_cost(oracle, ["ana", "bob", "cat"]) == 3.0

    def test_cardinality_cost(self, toy):
        oracle = DistanceOracle(make_relation("NNE", toy.graph))
        assert cardinality_cost(oracle, ["ana", "bob"]) == 2.0

    def test_registry_lookup(self):
        assert get_cost_function("DIAMETER") is diameter_cost
        assert set(COST_FUNCTIONS) == {"diameter", "sum_distance", "cardinality"}
        with pytest.raises(KeyError):
            get_cost_function("unknown")


class TestSkillPolicies:
    def test_rarest_skill_first(self, toy_problem):
        policy = RarestSkillFirst()
        # 'design' is held by 3 users, 'python' by 4, 'databases' by 3 — the
        # policy must pick one of the rarest (ties broken by name).
        chosen = policy.select(toy_problem, {"python", "databases", "design"}, [])
        frequencies = {
            skill: toy_problem.assignment.skill_frequency(skill)
            for skill in ("python", "databases", "design")
        }
        assert frequencies[chosen] == min(frequencies.values())

    def test_least_compatible_skill_first_deterministic(self, toy_problem):
        policy = LeastCompatibleSkillFirst()
        first = policy.select(toy_problem, set(toy_problem.task.skills), [])
        second = policy.select(toy_problem, set(toy_problem.task.skills), [])
        assert first == second
        assert first in toy_problem.task.skills

    def test_least_compatible_prefers_isolated_skill(self, two_factions):
        # Under SPA on the balanced two-faction graph, users are compatible iff
        # they belong to the same faction.  Skill "c" is held only by node 5,
        # whose faction contains few holders of the other skills, so cd(c) is
        # the smallest and "c" must be selected first.
        skills = SkillAssignment(
            {0: {"a"}, 1: {"a"}, 2: {"b"}, 3: {"b"}, 5: {"c"}}
        )
        relation = make_relation("SPA", two_factions)
        problem = TeamFormationProblem(
            two_factions, skills, relation, Task(["a", "b", "c"])
        )
        chosen = LeastCompatibleSkillFirst().select(problem, {"a", "b", "c"}, [])
        assert chosen == "c"


class TestUserPolicies:
    def test_minimum_distance_prefers_closest(self, toy):
        relation = make_relation("SPO", toy.graph)
        problem = TeamFormationProblem(toy.graph, toy.skills, relation, Task(["writing"]))
        policy = MinimumDistanceUser()
        # Team = {jon}; candidates with 'writing' are hal, ivy, kim.
        chosen = policy.select(
            problem, frozenset({"hal", "ivy", "kim"}), ["jon"], {"writing"}
        )
        oracle = problem.oracle
        distances = {user: oracle.distance("jon", user) for user in ("hal", "ivy", "kim")}
        assert distances[chosen] == min(distances.values())

    def test_minimum_distance_empty_team_prefers_coverage(self, toy):
        relation = make_relation("SPO", toy.graph)
        task = Task(["python", "databases"])
        problem = TeamFormationProblem(toy.graph, toy.skills, relation, task)
        chosen = MinimumDistanceUser().select(
            problem, frozenset({"ana", "bob"}), [], set(task.skills)
        )
        assert chosen == "bob"  # bob covers both task skills

    def test_most_compatible_scores_against_remaining_holders(self, toy):
        relation = make_relation("SPO", toy.graph)
        problem = TeamFormationProblem(
            toy.graph, toy.skills, relation, Task(["python", "writing"])
        )
        policy = MostCompatibleUser()
        chosen = policy.select(
            problem, frozenset({"ana", "bob", "eve", "jon"}), [], {"writing"}
        )
        assert chosen in {"ana", "bob", "eve", "jon"}

    def test_most_compatible_candidate_cap(self, toy):
        relation = make_relation("SPO", toy.graph)
        problem = TeamFormationProblem(toy.graph, toy.skills, relation, Task(["python"]))
        policy = MostCompatibleUser(seed=1, max_candidates=2)
        chosen = policy.select(
            problem, frozenset({"ana", "bob", "eve", "jon"}), [], set()
        )
        assert chosen in {"ana", "bob", "eve", "jon"}

    def test_most_compatible_invalid_cap(self):
        with pytest.raises(ValueError):
            MostCompatibleUser(max_candidates=0)

    def test_random_user_is_seed_deterministic(self, toy):
        relation = make_relation("SPO", toy.graph)
        problem = TeamFormationProblem(toy.graph, toy.skills, relation, Task(["python"]))
        candidates = frozenset({"ana", "bob", "eve", "jon"})
        first = RandomUser(seed=9).select(problem, candidates, [], set())
        second = RandomUser(seed=9).select(problem, candidates, [], set())
        assert first == second
        assert first in candidates
