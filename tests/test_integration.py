"""End-to-end integration tests crossing all subsystems.

These tests follow the same pipeline a library user (or the experiment
harness) follows: generate a dataset, build compatibility relations, form
teams, compare against baselines — and check the cross-module invariants the
paper relies on.
"""

from __future__ import annotations

import pytest

from repro.compatibility import (
    DistanceOracle,
    SkillCompatibilityIndex,
    exact_pair_statistics,
    make_relation,
    task_has_compatible_skills,
)
from repro.datasets import load_dataset, slashdot_like
from repro.skills.task import random_tasks
from repro.teams import (
    ALGORITHM_NAMES,
    TeamFormationProblem,
    fraction_of_compatible_teams,
    run_algorithm,
    run_unsigned_baseline,
    solve_exact,
    team_covers_task,
    team_is_compatible,
)


@pytest.fixture(scope="module")
def slashdot_small():
    return slashdot_like(seed=13, scale=0.4)


@pytest.fixture(scope="module")
def relations(slashdot_small):
    return {
        name: make_relation(name, slashdot_small.graph)
        for name in ("SPA", "SPM", "SPO", "SBPH", "NNE")
    }


class TestRelationPipeline:
    def test_relaxation_ordering_of_pair_fractions(self, relations):
        fractions = {
            name: exact_pair_statistics(relation).fraction
            for name, relation in relations.items()
        }
        assert fractions["SPA"] <= fractions["SPM"] <= fractions["SPO"]
        assert fractions["SPO"] <= fractions["NNE"]
        assert fractions["SBPH"] <= fractions["NNE"]

    def test_all_relations_satisfy_required_properties(self, relations):
        for relation in relations.values():
            assert relation.is_valid_relation()


class TestTeamFormationPipeline:
    def test_every_algorithm_returns_valid_teams(self, slashdot_small, relations):
        tasks = random_tasks(slashdot_small.skills, size=3, count=5, seed=1)
        relation = relations["SPO"]
        oracle = DistanceOracle(relation)
        for task in tasks:
            problem = TeamFormationProblem(
                slashdot_small.graph, slashdot_small.skills, relation, task, oracle=oracle
            )
            for name in ALGORITHM_NAMES:
                result = run_algorithm(name, problem, max_seeds=8, seed=3)
                if result.solved:
                    assert team_covers_task(result.team, task, slashdot_small.skills)
                    assert team_is_compatible(result.team, relation)
                    assert result.cost >= 0.0

    def test_stricter_relations_solve_no_more_tasks(self, slashdot_small, relations):
        tasks = random_tasks(slashdot_small.skills, size=4, count=8, seed=5)
        solved = {}
        for name in ("SPA", "SPO", "NNE"):
            relation = relations[name]
            oracle = DistanceOracle(relation)
            count = 0
            for task in tasks:
                problem = TeamFormationProblem(
                    slashdot_small.graph, slashdot_small.skills, relation, task, oracle=oracle
                )
                if run_algorithm("LCMD", problem, max_seeds=8).solved:
                    count += 1
            solved[name] = count
        # The greedy algorithm is not guaranteed monotone, but on aggregate the
        # relaxation ordering should show through with a small tolerance.
        assert solved["SPA"] <= solved["SPO"] + 1
        assert solved["SPO"] <= solved["NNE"] + 1

    def test_greedy_vs_exact_on_toy_tasks(self):
        toy = load_dataset("toy")
        relation = make_relation("SPO", toy.graph)
        for skills in (["python", "writing"], ["databases", "frontend"], ["devops", "design"]):
            from repro.skills import Task

            problem = TeamFormationProblem(toy.graph, toy.skills, relation, Task(skills))
            exact = solve_exact(problem)
            greedy = run_algorithm("LCMD", problem)
            assert exact.solved == greedy.solved or exact.solved
            if exact.solved and greedy.solved:
                assert exact.cost <= greedy.cost + 1e-9

    def test_unsigned_baseline_produces_fewer_compatible_teams(self, slashdot_small, relations):
        tasks = random_tasks(slashdot_small.skills, size=4, count=8, seed=11)
        baseline_results = run_unsigned_baseline(
            slashdot_small.graph, slashdot_small.skills, tasks, "ignore_sign"
        )
        baseline_teams = [entry.team for entry in baseline_results]
        strict_fraction = fraction_of_compatible_teams(baseline_teams, relations["SPA"])
        relaxed_fraction = fraction_of_compatible_teams(baseline_teams, relations["NNE"])
        assert strict_fraction <= relaxed_fraction + 1e-9

    def test_max_upper_bound_consistency(self, slashdot_small, relations):
        # If a task's skills are not pairwise compatible, no algorithm may
        # return a compatible covering team (MAX really is an upper bound).
        relation = relations["SPA"]
        index = SkillCompatibilityIndex(relation, slashdot_small.skills, count_cap=1)
        oracle = DistanceOracle(relation)
        tasks = random_tasks(slashdot_small.skills, size=4, count=10, seed=17)
        for task in tasks:
            if task_has_compatible_skills(index, task.skills):
                continue
            problem = TeamFormationProblem(
                slashdot_small.graph, slashdot_small.skills, relation, task, oracle=oracle
            )
            result = run_algorithm("LCMD", problem, max_seeds=8)
            assert not result.solved
