"""Dynamic-graph subsystem: delta-maintained CSR snapshots, generation-keyed
caches, targeted invalidation and the engine-level rule-mask memo.

The acceptance bar (enforced here, property-based and deterministic):

* after ANY interleaving of mutations, ``csr_view()`` arrays are bit-identical
  to ``CSRSignedGraph.from_signed_graph()`` on the same graph;
* relation / oracle / engine results under churn match a cold stack built on
  a fresh copy of the mutated graph — across dict and CSR backends and all
  relations, including SBP and SBPH;
* no-op writes (same-sign ``set_sign``, identical ``add_edge`` re-adds) never
  bump the generation, never invalidate the CSR view or any cache;
* mutations in one connected component never drop cached results of another.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compatibility import CompatibilityEngine, DistanceOracle, make_relation
from repro.signed import SignedGraph
from repro.signed.csr import CSRSignedGraph
from repro.signed.delta import GraphDelta
from repro.signed.generators import planted_factions_graph
from repro.utils.generational import GenerationalLRUCache

RELATION_BACKENDS = [
    ("DPE", {}),
    ("NNE", {}),
    ("SPA", {"backend": "dict"}),
    ("SPA", {"backend": "csr"}),
    ("SPM", {"backend": "dict"}),
    ("SPM", {"backend": "csr"}),
    ("SPO", {"backend": "dict"}),
    ("SPO", {"backend": "csr"}),
    ("SBPH", {"backend": "dict"}),
    ("SBPH", {"backend": "csr"}),
    ("SBP", {"max_expansions": 50_000}),
]


def assert_views_identical(graph: SignedGraph, label: str = "") -> None:
    """``csr_view()`` must be bit-identical to a from-scratch snapshot."""
    view = graph.csr_view()
    fresh = CSRSignedGraph.from_signed_graph(graph)
    assert view._nodes == fresh._nodes, label
    assert view.indptr.dtype == fresh.indptr.dtype, label
    assert view.indices.dtype == fresh.indices.dtype, label
    assert view.signs.dtype == fresh.signs.dtype, label
    assert np.array_equal(view.indptr, fresh.indptr), label
    assert np.array_equal(view.indices, fresh.indices), label
    assert np.array_equal(view.signs, fresh.signs), label
    assert view.generation == graph.generation, label


def random_mutation(graph: SignedGraph, rng: random.Random, node_pool) -> None:
    """Apply one random mutation (edge add/remove/re-sign, node add/remove)."""
    roll = rng.random()
    edges = list(graph.edge_triples())
    if roll < 0.35:
        u, v = rng.sample(node_pool, 2)
        if graph.has_edge(u, v):
            graph.set_sign(u, v, rng.choice([1, -1]))
        else:
            graph.add_edge(u, v, rng.choice([1, -1]))
    elif roll < 0.55 and edges:
        u, v, _sign = rng.choice(edges)
        graph.remove_edge(u, v)
    elif roll < 0.75 and edges:
        u, v, sign = rng.choice(edges)
        graph.set_sign(u, v, -sign)
    elif roll < 0.9:
        graph.add_node(rng.choice(node_pool))
    elif len(graph) > 2:
        graph.remove_node(rng.choice(graph.nodes()))


class TestGenerationModel:
    def test_generation_starts_at_zero_and_is_monotonic(self):
        graph = SignedGraph()
        assert graph.generation == 0
        graph.add_edge(0, 1, 1)
        first = graph.generation
        graph.set_sign(0, 1, -1)
        assert graph.generation > first

    def test_noop_set_sign_does_not_bump_generation(self):
        graph = SignedGraph.from_edges([(0, 1, 1), (1, 2, -1)])
        view = graph.csr_view()
        generation = graph.generation
        graph.set_sign(0, 1, 1)  # same sign: a true no-op
        graph.set_sign(1, 2, -1)
        assert graph.generation == generation
        assert graph.csr_view() is view

    def test_noop_add_edge_does_not_bump_generation(self):
        graph = SignedGraph.from_edges([(0, 1, 1)])
        view = graph.csr_view()
        generation = graph.generation
        graph.add_edge(0, 1, 1)  # identical re-add: a no-op
        graph.add_edge(1, 0, 1)  # reversed orientation, same undirected edge
        graph.add_node(0)  # existing node
        assert graph.generation == generation
        assert graph.csr_view() is view

    def test_noop_writes_do_not_invalidate_relation_caches(self):
        graph = SignedGraph.from_edges([(0, 1, 1), (1, 2, 1), (2, 3, -1)])
        relation = make_relation("SPO", graph, backend="dict")
        relation.compatible_with(0)
        hits_before = relation._compatible_cache.hits
        graph.set_sign(0, 1, 1)
        graph.add_edge(1, 2, 1)
        relation.compatible_with(0)
        assert relation._compatible_cache.hits == hits_before + 1
        assert relation._compatible_cache.invalidations == 0

    def test_mutations_alias_still_reports_generation(self):
        graph = SignedGraph.from_edges([(0, 1, 1)])
        assert graph._mutations == graph.generation

    def test_node_set_changed_since(self):
        graph = SignedGraph.from_edges([(0, 1, 1)])
        generation = graph.generation
        graph.set_sign(0, 1, -1)
        assert not graph.node_set_changed_since(generation)
        graph.add_node(99)
        assert graph.node_set_changed_since(generation)


class TestDeltaLog:
    def test_records_and_overflow(self):
        delta = GraphDelta(max_events=3)
        delta.record_edge_added(0, 1, 1)
        delta.record_sign_changed(0, 1, -1)
        assert len(delta) == 2 and not delta.overflowed
        delta.record_edge_removed(0, 1)
        delta.record_node_added(9)
        assert delta.overflowed
        assert len(delta) == 0  # contents dropped on overflow
        assert bool(delta)

    def test_touched_nodes(self):
        delta = GraphDelta()
        delta.record_edge_added(0, 1, 1)
        delta.record_node_removed(5)
        assert delta.touched_nodes() == frozenset({0, 1, 5})
        assert delta.num_edge_events == 1
        assert delta.has_node_changes


class TestDeltaApplyEquivalence:
    def test_sign_only_delta_shares_index(self):
        graph, _ = planted_factions_graph(40, average_degree=4.0, sign_noise=0.1, seed=3)
        before = graph.csr_view()
        edges = list(graph.edge_triples())[:3]
        for u, v, sign in edges:
            graph.set_sign(u, v, -sign)
        assert_views_identical(graph, "sign-only delta")
        after = graph.csr_view()
        assert after is not before
        assert after.shares_index_with(before)

    def test_edge_add_remove_delta(self):
        graph, _ = planted_factions_graph(40, average_degree=4.0, sign_noise=0.1, seed=4)
        graph.csr_view()
        edges = list(graph.edge_triples())
        graph.remove_edge(edges[0][0], edges[0][1])
        nodes = graph.nodes()
        added = 0
        for u in nodes:
            for v in nodes:
                if u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v, 1)
                    added += 1
                    break
            if added >= 2:
                break
        assert_views_identical(graph, "edge add/remove delta")

    def test_node_addition_and_removal_delta(self):
        graph, _ = planted_factions_graph(40, average_degree=4.0, sign_noise=0.1, seed=5)
        graph.csr_view()
        graph.add_edge("new-a", "new-b", -1)
        assert_views_identical(graph, "node addition")
        graph.csr_view()
        victim = graph.nodes()[0]
        graph.remove_node(victim)
        assert_views_identical(graph, "node removal")
        graph.csr_view()
        graph.add_node(victim)  # re-add at the end of the order
        assert_views_identical(graph, "node re-add")

    def test_large_delta_falls_back_to_rebuild(self):
        graph, _ = planted_factions_graph(30, average_degree=3.0, sign_noise=0.1, seed=6)
        graph.csr_view()
        nodes = graph.nodes()
        for u in nodes:
            for v in nodes:
                if u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v, 1)
        # Far past the 5% threshold: the view must still be exact.
        assert_views_identical(graph, "threshold rebuild")

    def test_delta_overflow_forces_rebuild(self):
        graph = SignedGraph.from_edges([(0, 1, 1), (1, 2, 1)])
        graph.csr_view()
        graph._delta.max_events = 4
        for i in range(3, 12):
            graph.add_edge(i - 1, i, 1)
        assert graph._delta.overflowed
        assert_views_identical(graph, "overflowed delta")

    def test_seeded_random_interleavings(self):
        rng = random.Random(20_26)
        node_pool = list(range(25))
        graph, _ = planted_factions_graph(20, average_degree=3.0, sign_noise=0.2, seed=7)
        graph.csr_view()
        for step in range(120):
            random_mutation(graph, rng, node_pool)
            if step % 3 == 0:  # snapshot at varying delta sizes
                assert_views_identical(graph, f"step {step}")
        assert_views_identical(graph, "final")

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        num_ops=st.integers(min_value=1, max_value=40),
        snapshot_every=st.integers(min_value=1, max_value=7),
    )
    def test_property_any_interleaving_is_bit_identical(
        self, seed, num_ops, snapshot_every
    ):
        rng = random.Random(seed)
        node_pool = list(range(12))
        graph = SignedGraph()
        for _ in range(10):
            u, v = rng.sample(node_pool, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, rng.choice([1, -1]))
        graph.csr_view()
        for step in range(num_ops):
            random_mutation(graph, rng, node_pool)
            if step % snapshot_every == 0:
                assert_views_identical(graph, f"seed={seed} step={step}")
        assert_views_identical(graph, f"seed={seed} final")


class TestAffectedNodes:
    def two_component_graph(self):
        edges = [(i, i + 1, 1) for i in range(0, 9)]  # component A: 0..9
        edges += [(i, i + 1, -1) for i in range(100, 130)]  # component B: 100..130
        return SignedGraph.from_edges(edges)

    def test_affected_is_component_local(self):
        graph = self.two_component_graph()
        generation = graph.generation
        graph.set_sign(0, 1, -1)
        affected = graph.affected_nodes_since(generation)
        assert affected == frozenset(range(10))
        assert graph.affected_nodes_since(graph.generation) == frozenset()

    def test_most_of_graph_affected_returns_none(self):
        graph = self.two_component_graph()
        generation = graph.generation
        graph.set_sign(100, 101, 1)  # touches the 31-node component
        assert graph.affected_nodes_since(generation) is None

    def test_removed_node_is_in_affected_set(self):
        graph = self.two_component_graph()
        generation = graph.generation
        graph.remove_node(0)
        affected = graph.affected_nodes_since(generation)
        assert 0 in affected and 1 in affected


class TestGenerationalLRUCache:
    def test_survivors_promoted_affected_dropped(self):
        graph = SignedGraph.from_edges(
            [(i, i + 1, 1) for i in range(5)] + [(i, i + 1, 1) for i in range(100, 120)]
        )
        cache = GenerationalLRUCache(graph)
        cache[0] = "component-a"
        cache[100] = "component-b"
        graph.set_sign(0, 1, -1)  # touches only component A
        assert cache.get(0) is None
        assert cache.get(100) == "component-b"
        assert cache.invalidations == 1
        assert cache.generation == graph.generation

    def test_truncated_flags_pruned_even_after_eviction(self):
        # A truncated-source flag deliberately survives LRU eviction of the
        # result itself — but a mutation in the flagged source's component
        # must still drop it, or truncated_sources() over-reports forever.
        clique = [
            (u, v, 1) for u in range(8) for v in range(u + 1, 8)
        ] + [(i, i + 1, 1) for i in range(100, 140)]
        graph = SignedGraph.from_edges(clique)
        relation = make_relation(
            "SBP", graph, max_expansions=3, result_cache_size=4
        )
        for node in range(8):
            relation.compatible_with(node)
        flagged = relation.truncated_sources()
        assert flagged  # the tiny expansion budget truncates clique searches
        evicted = [node for node in flagged if node not in relation._result_cache]
        assert evicted  # the 4-entry cache cannot hold all 8 results
        graph.remove_edge(0, 1)  # touch the clique component
        assert relation.truncated_sources() == set()

    def test_component_local_false_clears_on_node_changes(self):
        graph = SignedGraph.from_edges(
            [(0, 1, 1)] + [(i, i + 1, 1) for i in range(10, 40)]
        )
        cache = GenerationalLRUCache(graph, component_local=False)
        cache[0] = "x"
        cache[10] = "y"
        graph.set_sign(0, 1, -1)  # edge-level: component rules still apply
        assert cache.get(10) == "y"
        graph.add_node("stranger")  # node-set change: everything goes
        assert cache.get(10) is None
        assert len(cache) == 0

    def test_clear_fast_forwards_generation(self):
        graph = SignedGraph.from_edges([(0, 1, 1)])
        cache = GenerationalLRUCache(graph)
        cache[0] = "x"
        graph.set_sign(0, 1, -1)
        cache.clear()
        assert cache.generation == graph.generation


def churn_script(graph: SignedGraph, rng: random.Random, steps: int) -> None:
    """Edge-level churn (no node ops) used by the relation equivalence tests."""
    nodes = graph.nodes()
    for _ in range(steps):
        roll = rng.random()
        edges = list(graph.edge_triples())
        if roll < 0.4:
            u, v = rng.sample(nodes, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, rng.choice([1, -1]))
        elif roll < 0.7 and edges:
            u, v, _sign = rng.choice(edges)
            graph.remove_edge(u, v)
        elif edges:
            u, v, sign = rng.choice(edges)
            graph.set_sign(u, v, -sign)


class TestRelationsUnderChurn:
    """Live relations under churn must match a cold stack on a fresh copy."""

    @pytest.mark.parametrize("name,kwargs", RELATION_BACKENDS)
    def test_results_match_cold_relation(self, name, kwargs):
        size = 16 if name == "SBP" else 30
        graph, _ = planted_factions_graph(
            size, average_degree=3.0, sign_noise=0.2, seed=11
        )
        relation = make_relation(name, graph, **kwargs)
        oracle = DistanceOracle(relation)
        rng = random.Random(42)
        nodes = graph.nodes()
        for round_index in range(4):
            # Warm some caches, then churn, then query again: every answer
            # must match a cold relation built on a copy of the mutated graph.
            for node in nodes[:6]:
                relation.compatible_with(node)
            churn_script(graph, rng, steps=5)
            cold = make_relation(name, graph.copy(), **kwargs)
            cold_oracle = DistanceOracle(cold)
            for node in nodes[:8]:
                assert relation.compatible_with(node) == cold.compatible_with(node), (
                    f"{name} round {round_index} node {node}"
                )
            for u in nodes[:4]:
                for v in nodes[4:8]:
                    assert relation.are_compatible(u, v) == cold.are_compatible(u, v)
                    assert oracle.distance(u, v) == cold_oracle.distance(u, v)

    def test_node_churn_matches_cold_relation(self):
        graph, _ = planted_factions_graph(24, average_degree=3.0, sign_noise=0.2, seed=13)
        for name, kwargs in (("SPO", {"backend": "csr"}), ("NNE", {}), ("SBPH", {})):
            relation = make_relation(name, graph, **kwargs)
            for node in graph.nodes()[:5]:
                relation.compatible_with(node)
            graph.add_edge("fresh-1", "fresh-2", 1)
            graph.add_edge("fresh-2", graph.nodes()[0], 1)
            victim = graph.nodes()[5]
            graph.remove_node(victim)
            cold = make_relation(name, graph.copy(), **kwargs)
            for node in graph.nodes()[:8]:
                assert relation.compatible_with(node) == cold.compatible_with(node), name


class TestEngineUnderChurn:
    def build(self, backend="csr", seed=17):
        graph, _ = planted_factions_graph(
            40, average_degree=4.0, sign_noise=0.2, seed=seed
        )
        relation = make_relation("SPO", graph, backend=backend)
        return graph, CompatibilityEngine(relation)

    def test_compatible_from_many_matches_cold_engine(self):
        graph, engine = self.build()
        rng = random.Random(5)
        nodes = graph.nodes()
        team = nodes[:3]
        pool = nodes[5:25]
        for round_index in range(5):
            churn_script(graph, rng, steps=6)
            live = engine.compatible_from_many(pool, team)
            cold_relation = make_relation("SPO", graph.copy(), backend="csr")
            cold = CompatibilityEngine(cold_relation).compatible_from_many(pool, team)
            assert live == cold, f"round {round_index}"
            # Memoised repeat must be identical.
            assert engine.compatible_from_many(pool, team) == live

    def test_distances_to_team_match_cold_engine(self):
        graph, engine = self.build(seed=19)
        rng = random.Random(6)
        nodes = graph.nodes()
        team = nodes[:3]
        pool = nodes[5:25]
        for _ in range(4):
            churn_script(graph, rng, steps=6)
            live = engine.distances_to_team_many(pool, team)
            cold_relation = make_relation("SPO", graph.copy(), backend="csr")
            cold = CompatibilityEngine(cold_relation).distances_to_team_many(pool, team)
            assert live == cold

    def test_mask_memo_survives_unrelated_churn(self):
        # Two components: a small one (churned) and a big one (the team's).
        # Churn in the small component must not drop masks rooted in the big
        # one; touching the big one must.
        edges = [(i, (i + 1) % 10, 1) for i in range(10)]
        edges += [(100 + i, 100 + (i + 1) % 40, 1) for i in range(40)]
        graph = SignedGraph.from_edges(edges)
        relation = make_relation("SPO", graph, backend="csr")
        engine = CompatibilityEngine(relation)
        team = [100, 101]
        pool = [102, 103, 104, 105]
        first = engine.compatible_from_many(pool, team)
        assert len(engine._mask_cache) == len(team)
        graph.set_sign(0, 1, -1)  # the small component only
        assert engine.compatible_from_many(pool, team) == first
        assert engine._mask_cache.invalidations == 0
        graph.set_sign(100, 101, -1)  # now touch the team's component
        engine.compatible_from_many(pool, team)
        assert engine._mask_cache.invalidations == len(team)

    def test_bfs_cache_survives_unrelated_churn(self):
        edges = [(i, (i + 1) % 10, 1) for i in range(10)]
        edges += [(100 + i, 100 + (i + 1) % 40, 1) for i in range(40)]
        graph = SignedGraph.from_edges(edges)
        relation = make_relation("SPO", graph, backend="csr")
        relation.compatible_with(100)
        entries = len(relation._bfs_cache)
        graph.set_sign(0, 1, -1)  # churn the other (small) component
        relation.compatible_with(100)
        assert relation._bfs_cache.invalidations == 0
        assert len(relation._bfs_cache) == entries

    def test_refresh_is_eager_but_optional(self):
        graph, engine = self.build(seed=23)
        team = graph.nodes()[:2]
        pool = graph.nodes()[3:13]
        engine.compatible_from_many(pool, team)
        edge = next(iter(graph.edges()))
        graph.set_sign(edge.u, edge.v, -edge.sign)
        engine.refresh()
        cold_relation = make_relation("SPO", graph.copy(), backend="csr")
        cold = CompatibilityEngine(cold_relation).compatible_from_many(pool, team)
        assert engine.compatible_from_many(pool, team) == cold
