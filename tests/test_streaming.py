"""The streaming-update workload: churn + queries over generation-keyed caches.

The acceptance property: a long-lived engine answering queries across churn
rounds produces *exactly* the teams and costs a cold stack (fresh relation,
oracle, engine on a copy of the mutated graph) produces — for every
deterministic algorithm, on both the dict and CSR backends.
"""

from __future__ import annotations

import random

import pytest

from repro.compatibility import CompatibilityEngine, DistanceOracle, make_relation
from repro.datasets import toy_dataset
from repro.exceptions import InfeasibleTaskError
from repro.experiments.streaming import (
    StreamingConfig,
    apply_edge_churn,
    run_streaming,
)
from repro.signed.generators import planted_factions_graph
from repro.skills.generators import assign_skills_zipf
from repro.skills.task import random_tasks
from repro.teams import TeamFormationProblem, run_algorithm


class TestApplyEdgeChurn:
    def test_counts_and_reproducibility(self):
        graph1, _ = planted_factions_graph(30, average_degree=4.0, sign_noise=0.1, seed=1)
        graph2 = graph1.copy()
        counts1 = apply_edge_churn(graph1, 25, random.Random(9))
        counts2 = apply_edge_churn(graph2, 25, random.Random(9))
        assert counts1 == counts2
        assert graph1 == graph2
        assert sum(counts1) > 0

    def test_rejects_bad_fractions(self):
        graph, _ = planted_factions_graph(10, average_degree=3.0, sign_noise=0.1, seed=2)
        with pytest.raises(ValueError):
            apply_edge_churn(graph, 5, random.Random(0), add_fraction=0.8, remove_fraction=0.5)

    def test_preserves_node_set(self):
        graph, _ = planted_factions_graph(20, average_degree=3.0, sign_noise=0.1, seed=3)
        before = set(graph.nodes())
        apply_edge_churn(graph, 50, random.Random(4))
        assert set(graph.nodes()) == before


class TestStreamingEquivalence:
    """Live engine under churn == cold engine on a fresh graph, per round."""

    @pytest.mark.parametrize("relation_name,kwargs", [
        ("SPO", {"backend": "dict"}),
        ("SPO", {"backend": "csr"}),
        ("SPA", {"backend": "csr"}),
        ("SBPH", {}),
        ("NNE", {}),
    ])
    def test_algorithms_match_cold_stack_every_round(self, relation_name, kwargs):
        graph, _ = planted_factions_graph(40, average_degree=4.0, sign_noise=0.2, seed=31)
        skills = assign_skills_zipf(graph.nodes(), num_skills=8, skills_per_user=2.5, seed=32)
        relation = make_relation(relation_name, graph, **kwargs)
        oracle = DistanceOracle(relation)
        engine = CompatibilityEngine(relation, oracle=oracle)
        rng = random.Random(33)
        tasks = random_tasks(skills, size=3, count=3, seed=34)
        for round_index in range(3):
            apply_edge_churn(graph, 10, rng)
            for task in tasks[:2]:
                live_problem = TeamFormationProblem(
                    graph, skills, relation, task, engine=engine
                )
                live_problem.refresh()
                cold_graph = graph.copy()
                cold_relation = make_relation(relation_name, cold_graph, **kwargs)
                cold_problem = TeamFormationProblem(
                    cold_graph, skills, cold_relation, task
                )
                for algorithm in ("LCMD", "LCMC", "RFMD", "RFMC"):
                    live = run_algorithm(algorithm, live_problem)
                    cold = run_algorithm(algorithm, cold_problem)
                    assert live.team == cold.team, (
                        f"{relation_name} {algorithm} round {round_index}"
                    )
                    assert live.cost == cold.cost


class TestCsrOnlyStreaming:
    """Dict-free streaming: facade datasets churn without materialising."""

    @pytest.fixture(autouse=True)
    def _twin_datasets(self):
        # Register two datasets over the *same* generation-0 planes: one kept
        # as a CSR facade, one rebuilt as the dict backend.  Bit-identical
        # reports across the pair is the cross-backend acceptance property.
        pytest.importorskip("numpy")
        from repro.datasets.registry import _FACTORIES, register_dataset
        from repro.datasets.synthetic import SignedDataset, synthetic_csr_network
        from repro.signed import as_signed_graph

        def _planes(seed):
            csr, _ = synthetic_csr_network(
                120, average_degree=6.0, num_factions=4, seed=seed
            )
            skills = assign_skills_zipf(
                list(csr._nodes), num_skills=10, skills_per_user=2.5, seed=seed + 1
            )
            return csr, skills

        def facade_factory(seed=101, scale=None):
            csr, skills = _planes(seed)
            return SignedDataset(
                name="twin-facade", graph=as_signed_graph(csr), skills=skills
            )

        def dict_factory(seed=101, scale=None):
            csr, skills = _planes(seed)
            return SignedDataset(
                name="twin-dict", graph=csr.to_signed_graph(), skills=skills
            )

        register_dataset("twin-facade", facade_factory)
        register_dataset("twin-dict", dict_factory)
        yield
        _FACTORIES.pop("twin-facade", None)
        _FACTORIES.pop("twin-dict", None)

    def _config(self, dataset, **overrides):
        base = dict(
            dataset=dataset,
            relation="SPO",
            backend="csr",
            algorithms=("LCMD", "RFMC"),
            num_rounds=3,
            churn_per_round=20,
            tasks_per_round=2,
            task_size=2,
            max_seeds=None,
            seed=55,
        )
        base.update(overrides)
        return StreamingConfig(**base)

    def test_facade_run_stays_dict_free(self):
        # csr_only=None auto-detects the facade; run_streaming raises
        # RuntimeError the moment any round materialises adjacency dicts,
        # so completing is the regression assertion.
        report = run_streaming(self._config("twin-facade", csr_only=True))
        assert len(report.rounds) == 3
        assert any(q.solved for r in report.rounds for q in r.queries)

    def test_csr_only_rejects_dict_datasets(self):
        with pytest.raises(ValueError, match="csr_only"):
            run_streaming(self._config("twin-dict", csr_only=True))

    def test_facade_report_bit_identical_to_dict_backend(self):
        facade_report = run_streaming(self._config("twin-facade"))
        dict_report = run_streaming(self._config("twin-dict", csr_only=False))
        assert len(facade_report.rounds) == len(dict_report.rounds)
        for left, right in zip(facade_report.rounds, dict_report.rounds):
            assert left.round_index == right.round_index
            assert left.edges_added == right.edges_added
            assert left.edges_removed == right.edges_removed
            assert left.signs_flipped == right.signs_flipped
            assert left.generation == right.generation
            assert len(left.queries) == len(right.queries)
            for lq, rq in zip(left.queries, right.queries):
                assert lq.algorithm == rq.algorithm
                assert lq.task.skills == rq.task.skills
                assert lq.solved == rq.solved
                assert lq.cost == rq.cost
                assert lq.team_size == rq.team_size


class TestRunStreaming:
    def test_report_structure_and_determinism(self):
        config = StreamingConfig(
            dataset="toy",
            relation="SPO",
            backend="dict",
            algorithms=("LCMD", "RFMC"),
            num_rounds=3,
            churn_per_round=5,
            tasks_per_round=1,
            task_size=2,
            max_seeds=None,
            seed=77,
        )
        report = run_streaming(config)
        assert len(report.rounds) == 3
        for round_result in report.rounds:
            assert len(round_result.queries) == 2  # 1 task x 2 algorithms
            assert round_result.generation > 0
        text = report.as_text()
        assert "Streaming workload" in text
        assert "LCMD" in text and "RFMC" in text
        # Deterministic: the same config reproduces the same teams and costs.
        again = run_streaming(config)
        for first, second in zip(report.rounds, again.rounds):
            assert [q.cost for q in first.queries] == [q.cost for q in second.queries]
            assert first.generation == second.generation

    def test_refresh_raises_when_skill_starved(self):
        dataset = toy_dataset()
        graph = dataset.graph
        skills = dataset.skills
        task = random_tasks(skills, size=2, count=1, seed=1)[0]
        relation = make_relation("NNE", graph)
        problem = TeamFormationProblem(graph, skills, relation, task)
        task_skill = next(iter(task.skills))
        for holder in list(skills.users_with(task_skill)):
            if holder in graph:
                graph.remove_node(holder)
        with pytest.raises(InfeasibleTaskError):
            problem.refresh()
