"""The streaming-update workload: churn + queries over generation-keyed caches.

The acceptance property: a long-lived engine answering queries across churn
rounds produces *exactly* the teams and costs a cold stack (fresh relation,
oracle, engine on a copy of the mutated graph) produces — for every
deterministic algorithm, on both the dict and CSR backends.
"""

from __future__ import annotations

import random

import pytest

from repro.compatibility import CompatibilityEngine, DistanceOracle, make_relation
from repro.datasets import toy_dataset
from repro.exceptions import InfeasibleTaskError
from repro.experiments.streaming import (
    StreamingConfig,
    apply_edge_churn,
    run_streaming,
)
from repro.signed.generators import planted_factions_graph
from repro.skills.generators import assign_skills_zipf
from repro.skills.task import random_tasks
from repro.teams import TeamFormationProblem, run_algorithm


class TestApplyEdgeChurn:
    def test_counts_and_reproducibility(self):
        graph1, _ = planted_factions_graph(30, average_degree=4.0, sign_noise=0.1, seed=1)
        graph2 = graph1.copy()
        counts1 = apply_edge_churn(graph1, 25, random.Random(9))
        counts2 = apply_edge_churn(graph2, 25, random.Random(9))
        assert counts1 == counts2
        assert graph1 == graph2
        assert sum(counts1) > 0

    def test_rejects_bad_fractions(self):
        graph, _ = planted_factions_graph(10, average_degree=3.0, sign_noise=0.1, seed=2)
        with pytest.raises(ValueError):
            apply_edge_churn(graph, 5, random.Random(0), add_fraction=0.8, remove_fraction=0.5)

    def test_preserves_node_set(self):
        graph, _ = planted_factions_graph(20, average_degree=3.0, sign_noise=0.1, seed=3)
        before = set(graph.nodes())
        apply_edge_churn(graph, 50, random.Random(4))
        assert set(graph.nodes()) == before


class TestStreamingEquivalence:
    """Live engine under churn == cold engine on a fresh graph, per round."""

    @pytest.mark.parametrize("relation_name,kwargs", [
        ("SPO", {"backend": "dict"}),
        ("SPO", {"backend": "csr"}),
        ("SPA", {"backend": "csr"}),
        ("SBPH", {}),
        ("NNE", {}),
    ])
    def test_algorithms_match_cold_stack_every_round(self, relation_name, kwargs):
        graph, _ = planted_factions_graph(40, average_degree=4.0, sign_noise=0.2, seed=31)
        skills = assign_skills_zipf(graph.nodes(), num_skills=8, skills_per_user=2.5, seed=32)
        relation = make_relation(relation_name, graph, **kwargs)
        oracle = DistanceOracle(relation)
        engine = CompatibilityEngine(relation, oracle=oracle)
        rng = random.Random(33)
        tasks = random_tasks(skills, size=3, count=3, seed=34)
        for round_index in range(3):
            apply_edge_churn(graph, 10, rng)
            for task in tasks[:2]:
                live_problem = TeamFormationProblem(
                    graph, skills, relation, task, engine=engine
                )
                live_problem.refresh()
                cold_graph = graph.copy()
                cold_relation = make_relation(relation_name, cold_graph, **kwargs)
                cold_problem = TeamFormationProblem(
                    cold_graph, skills, cold_relation, task
                )
                for algorithm in ("LCMD", "LCMC", "RFMD", "RFMC"):
                    live = run_algorithm(algorithm, live_problem)
                    cold = run_algorithm(algorithm, cold_problem)
                    assert live.team == cold.team, (
                        f"{relation_name} {algorithm} round {round_index}"
                    )
                    assert live.cost == cold.cost


class TestRunStreaming:
    def test_report_structure_and_determinism(self):
        config = StreamingConfig(
            dataset="toy",
            relation="SPO",
            backend="dict",
            algorithms=("LCMD", "RFMC"),
            num_rounds=3,
            churn_per_round=5,
            tasks_per_round=1,
            task_size=2,
            max_seeds=None,
            seed=77,
        )
        report = run_streaming(config)
        assert len(report.rounds) == 3
        for round_result in report.rounds:
            assert len(round_result.queries) == 2  # 1 task x 2 algorithms
            assert round_result.generation > 0
        text = report.as_text()
        assert "Streaming workload" in text
        assert "LCMD" in text and "RFMC" in text
        # Deterministic: the same config reproduces the same teams and costs.
        again = run_streaming(config)
        for first, second in zip(report.rounds, again.rounds):
            assert [q.cost for q in first.queries] == [q.cost for q in second.queries]
            assert first.generation == second.generation

    def test_refresh_raises_when_skill_starved(self):
        dataset = toy_dataset()
        graph = dataset.graph
        skills = dataset.skills
        task = random_tasks(skills, size=2, count=1, seed=1)[0]
        relation = make_relation("NNE", graph)
        problem = TeamFormationProblem(graph, skills, relation, task)
        task_skill = next(iter(task.skills))
        for holder in list(skills.users_with(task_skill)):
            if holder in graph:
                graph.remove_node(holder)
        with pytest.raises(InfeasibleTaskError):
            problem.refresh()
