"""Tests for the execution-policy layer (:mod:`repro.exec`).

The load-bearing guarantee is *bit-identity*: a pool policy may only change
where the per-source kernels run, never what they return.  The suite pins
that across every relation and backend, under churn (mutate → resync →
re-dispatch against the new generation), and for the executor primitives
themselves (deterministic chunk merging, per-chunk RNG seeding, graceful
degradation when shared memory is unavailable).
"""

from __future__ import annotations

import multiprocessing
import os
import random

import pytest

from repro.compatibility import (
    CompatibilityEngine,
    DistanceOracle,
    make_relation,
    source_sampled_pair_statistics,
)
from repro.datasets import synthetic_signed_network
from repro.exec import (
    KERNELS,
    POLICY_DEFAULT,
    ExecutionPolicy,
    ProcessPoolExecutor,
    SerialExecutor,
    executor_for,
    register_kernel,
    reset_executors,
    resolve_policy,
    serial_executor,
)
from repro.exec import pool as pool_module
from repro.experiments import apply_edge_churn
from repro.signed.graph import SignedGraph
from repro.utils.rng import ensure_rng

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


# Registered at import time so that every pool forked afterwards inherits
# them (fork snapshots the registry at pool creation).
@register_kernel("test_echo")
def _test_echo(payload, sources, params):
    return [(params.get("tag"), source) for source in sources]


@register_kernel("test_rng")
def _test_rng(payload, sources, params):
    return [random.random() for _ in sources]


class IdentityNode:
    """Module-level (so instances pickle) but with identity-based equality:
    unpickled copies are unequal to the originals, which makes the node type
    legal for serial execution yet unusable inside pool workers."""

    def __init__(self, label: int) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"IdentityNode({self.label})"


_IS_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"

requires_fork = pytest.mark.skipif(
    not _IS_FORK,
    reason="locally registered test kernels need fork-inherited registries",
)


@pytest.fixture(scope="module", autouse=True)
def fresh_executors():
    """Kill pools forked before this module imported (stale kernel registry)."""
    reset_executors()
    yield
    reset_executors()


@pytest.fixture(scope="module")
def graph():
    graph, _ = synthetic_signed_network(
        250, average_degree=4.0, negative_fraction=0.25, seed=29
    )
    return graph


def pool_policy(backend: str = "auto", workers: int = 2, **kwargs) -> ExecutionPolicy:
    """A policy that really dispatches (no small-batch inline shortcut)."""
    return ExecutionPolicy(
        backend=backend, workers=workers, min_parallel_sources=1, **kwargs
    )


def build_stack(graph, name: str, backend, policy=None):
    """(relation, oracle, engine) under one backend/policy combination."""
    kwargs = {}
    if name in ("SBP", "SBPH"):
        kwargs["max_expansions"] = 2_000
    if backend is not None:
        kwargs["backend"] = backend
    relation = make_relation(name, graph, policy=policy, **kwargs)
    oracle = DistanceOracle(relation)
    engine = CompatibilityEngine(relation, oracle=oracle)
    return relation, oracle, engine


class TestExecutionPolicy:
    def test_defaults_are_serial(self):
        policy = ExecutionPolicy()
        assert not policy.parallel
        assert policy.resolved_workers() == 1
        assert isinstance(executor_for(policy), SerialExecutor)
        assert executor_for(policy) is serial_executor()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(backend="gpu")
        with pytest.raises(ValueError):
            ExecutionPolicy(workers=-2)
        with pytest.raises(ValueError):
            ExecutionPolicy(chunk_size=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(min_parallel_sources=0)

    def test_workers_minus_one_resolves_to_cpu_count(self):
        assert ExecutionPolicy(workers=-1).resolved_workers() >= 1

    def test_policies_are_hashable_and_comparable(self):
        assert ExecutionPolicy() == ExecutionPolicy()
        assert hash(ExecutionPolicy(workers=2)) == hash(ExecutionPolicy(workers=2))

    def test_resolve_policy_rejects_bad_pool_knobs_with_clear_message(self):
        # The CLI's --workers/--chunk-size funnel through resolve_policy; a
        # bad value must die here with a message that explains the knob, not
        # as an opaque ValueError out of multiprocessing at first dispatch.
        with pytest.raises(ValueError, match="workers must be -1"):
            resolve_policy(None, workers=-5)
        with pytest.raises(ValueError, match="chunk_size must be a positive"):
            resolve_policy(None, chunk_size=0)
        with pytest.raises(ValueError, match="chunk_size must be a positive"):
            resolve_policy(None, chunk_size=-3)
        # Serial spellings stay legal.
        assert resolve_policy(None, workers=0).resolved_workers() == 1
        assert resolve_policy(None, workers=-1).resolved_workers() >= 1

    def test_arena_knob_validation(self):
        with pytest.raises(ValueError, match="arena_budget_bytes"):
            ExecutionPolicy(arena_budget_bytes=-1)
        assert ExecutionPolicy().result_arena is True
        assert ExecutionPolicy(result_arena=False, arena_budget_bytes=0).parallel is False

    def test_resolve_policy_shim_semantics(self):
        base = ExecutionPolicy(backend="csr", bfs_cache_size=17)
        # Unset markers keep the policy's values.
        kept = resolve_policy(base, backend=None, bfs_cache_size=POLICY_DEFAULT)
        assert kept == base
        # Explicit legacy values win, including an explicit None cache size
        # (the legacy spelling of "unbounded").
        overridden = resolve_policy(base, backend="dict", bfs_cache_size=None)
        assert overridden.backend == "dict"
        assert overridden.bfs_cache_size is None

    def test_relation_legacy_kwargs_map_onto_policy(self, graph):
        relation = make_relation("SPO", graph, backend="dict")
        assert relation.policy.backend == "dict"
        relation = make_relation(
            "SPO", graph, policy=ExecutionPolicy(backend="csr", workers=0)
        )
        assert relation.policy.backend == "csr"
        # An explicitly passed legacy kwarg overrides the policy field.
        relation = make_relation(
            "SPO", graph, backend="dict", policy=ExecutionPolicy(backend="csr")
        )
        assert relation.policy.backend == "dict"

    def test_engine_batched_shim_and_policy_inheritance(self, graph):
        relation = make_relation("SPO", graph, backend="dict")
        engine = CompatibilityEngine(relation)
        assert engine.policy.batched and engine.batched
        assert engine.policy.backend == "dict"  # inherited from the relation
        legacy = CompatibilityEngine(relation, batched=False)
        assert legacy.policy.batched is False and legacy.batched is False

    def test_oracle_inherits_relation_policy_and_cache_override(self, graph):
        relation = make_relation("SPO", graph, backend="dict")
        oracle = DistanceOracle(relation)
        assert oracle.policy.backend == "dict"
        unbounded = DistanceOracle(relation, cache_size=None)
        assert unbounded._bfs_cache.maxsize is None


class TestSerialExecutor:
    def test_empty_batch(self, graph):
        assert serial_executor().map_kernel("dict_signed_bfs", graph, []) == []

    def test_unknown_kernel_raises(self, graph):
        with pytest.raises(KeyError):
            serial_executor().map_kernel("no_such_kernel", graph, [0])

    def test_duplicate_kernel_registration_rejected(self):
        with pytest.raises(ValueError):
            register_kernel("test_echo", lambda payload, sources, params: [])
        assert KERNELS["test_echo"] is _test_echo


class TestPoolExecutor:
    def test_executor_for_returns_pool(self):
        executor = executor_for(pool_policy())
        assert isinstance(executor, ProcessPoolExecutor)
        assert executor.workers == 2

    @requires_fork
    def test_chunk_merge_preserves_input_order(self, graph):
        executor = executor_for(pool_policy(chunk_size=3))
        sources = list(range(20))
        result = executor.map_kernel(
            "test_echo", graph, sources, params={"tag": "t"}
        )
        assert result == [("t", source) for source in sources]

    @requires_fork
    def test_rng_kernel_deterministic_across_runs_and_worker_counts(self, graph):
        first = executor_for(pool_policy(chunk_size=4, workers=3, seed=7))
        again = executor_for(pool_policy(chunk_size=4, workers=3, seed=7))
        other_pool = executor_for(pool_policy(chunk_size=4, workers=5, seed=7))
        sources = list(range(17))
        baseline = first.map_kernel("test_rng", graph, sources)
        assert again.map_kernel("test_rng", graph, sources) == baseline
        # Same chunking + per-chunk seeding => identical draws no matter how
        # many workers raced over the chunks.
        assert other_pool.map_kernel("test_rng", graph, sources) == baseline
        # A different base seed changes the stream.
        reseeded = executor_for(pool_policy(chunk_size=4, workers=3, seed=8))
        assert reseeded.map_kernel("test_rng", graph, sources) != baseline

    def test_csr_kernel_arrays_bit_identical(self, graph):
        np = pytest.importorskip("numpy")
        csr = graph.csr_view()
        dense = [csr.index_of(node) for node in graph.nodes()[:30]]
        params = {"skip_overflow": True}
        serial = serial_executor().map_kernel("csr_signed_bfs", csr, dense, params)
        pooled = executor_for(pool_policy()).map_kernel(
            "csr_signed_bfs", csr, dense, params
        )
        for left, right in zip(serial, pooled):
            assert all(np.array_equal(a, b) for a, b in zip(left, right))

    def test_small_batches_run_inline(self, graph):
        policy = ExecutionPolicy(workers=2, min_parallel_sources=64)
        executor = executor_for(policy)
        handle_publishes = executor._handle._next_publish_id
        result = executor.map_kernel("dict_signed_bfs", graph, graph.nodes()[:3])
        assert len(result) == 3
        # Nothing was shipped: the batch stayed under the dispatch threshold.
        assert executor._handle._next_publish_id == handle_publishes


class TestResultArena:
    """The shared-memory result arena: zero-copy set-valued result shipping."""

    def _dense_sources(self, graph, count=12):
        csr = graph.csr_view()
        return csr, [csr.index_of(node) for node in graph.nodes()[:count]]

    def test_path_lengths_ship_through_arena_as_owned_rows(self, graph):
        np = pytest.importorskip("numpy")
        executor = executor_for(pool_policy("csr", seed=201))
        csr, dense = self._dense_sources(graph)
        before = executor._handle.arenas_created
        pooled = executor.map_kernel("csr_path_lengths", csr, dense, {})
        serial = serial_executor().map_kernel("csr_path_lengths", csr, dense, {})
        assert executor._handle.arenas_created == before + 1
        for left, right in zip(pooled, serial):
            assert np.array_equal(left, right)
            # Distance maps head into long-lived caches: each decoded row
            # owns its bytes, so a surviving cache entry cannot pin the
            # whole dispatch segment (and LRU byte accounting stays honest).
            assert left.base is None

    def test_bitmap_rows_decode_as_zero_copy_views(self, graph):
        pytest.importorskip("numpy")
        executor = executor_for(pool_policy("csr", seed=211))
        csr, dense = self._dense_sources(graph)
        pooled = executor.map_kernel(
            "csr_compatible_masks", csr, dense, {"rule": "SPO"}
        )
        serial = serial_executor().map_kernel(
            "csr_compatible_masks", csr, dense, {"rule": "SPO"}
        )
        for left, right in zip(pooled, serial):
            assert left.tobytes() == right.tobytes()
            # Bitmaps are consumed immediately (unpacked into frozensets and
            # dropped), so they stay zero-copy views into the mapped segment.
            assert left.base is not None

    def test_signed_bfs_triples_ship_through_arena(self, graph):
        np = pytest.importorskip("numpy")
        executor = executor_for(pool_policy("csr", seed=202))
        csr, dense = self._dense_sources(graph)
        params = {"skip_overflow": True}
        before = executor._handle.arenas_created
        pooled = executor.map_kernel("csr_signed_bfs", csr, dense, params)
        serial = serial_executor().map_kernel("csr_signed_bfs", csr, dense, params)
        assert executor._handle.arenas_created == before + 1
        for left, right in zip(pooled, serial):
            assert all(np.array_equal(a, b) for a, b in zip(left, right))

    def test_sbph_depths_decode_identical(self, graph):
        pytest.importorskip("numpy")
        executor = executor_for(pool_policy("csr", seed=203))
        csr, dense = self._dense_sources(graph)
        pooled = executor.map_kernel("csr_sbph", csr, dense, {"max_length": None})
        serial = serial_executor().map_kernel("csr_sbph", csr, dense, {"max_length": None})
        assert pooled == serial

    def test_arena_segment_unlinked_after_dispatch(self, graph, monkeypatch):
        from multiprocessing import shared_memory

        created = []
        original = pool_module._PoolHandle.create_arena

        def recording(self, kernel, num_sources, num_nodes, budget):
            arena, shm = original(self, kernel, num_sources, num_nodes, budget)
            created.append(arena.name)
            return arena, shm

        monkeypatch.setattr(pool_module._PoolHandle, "create_arena", recording)
        executor = executor_for(pool_policy("csr", seed=204))
        csr, dense = self._dense_sources(graph)
        executor.map_kernel("csr_path_lengths", csr, dense, {})
        assert created
        for name in created:
            # The name must be gone from /dev/shm the moment the dispatch
            # completed (the mapping itself lives until the views die).
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
            assert name not in pool_module._SEGMENT_LEDGER

    def test_arena_off_and_budget_exhaustion_fall_back_to_pickles(self, graph):
        np = pytest.importorskip("numpy")
        serial = serial_executor()
        csr, dense = self._dense_sources(graph)
        expected = serial.map_kernel("csr_path_lengths", csr, dense, {})

        disabled = executor_for(pool_policy("csr", seed=205, result_arena=False))
        before = disabled._handle.arenas_created
        results = disabled.map_kernel("csr_path_lengths", csr, dense, {})
        assert disabled._handle.arenas_created == before
        assert all(np.array_equal(a, b) for a, b in zip(results, expected))

        # A 1-byte budget rejects every layout: the dispatch stays parallel
        # and ships pickled arrays instead (no degradation warning).
        tiny = executor_for(pool_policy("csr", seed=206, arena_budget_bytes=1))
        before = tiny._handle.arenas_created
        results = tiny.map_kernel("csr_path_lengths", csr, dense, {})
        assert tiny._handle.arenas_created == before
        assert all(np.array_equal(a, b) for a, b in zip(results, expected))

    def test_worker_crash_leaves_no_stale_segments(self, graph, monkeypatch):
        """Crash injection: a kernel blowing up mid-``Pool.map`` must not leak
        the dispatch's arena segment (the parent's post-map cleanup never runs
        on that path)."""
        from multiprocessing import shared_memory

        created = []
        original = pool_module._PoolHandle.create_arena

        def recording(self, kernel, num_sources, num_nodes, budget):
            arena, shm = original(self, kernel, num_sources, num_nodes, budget)
            created.append(arena.name)
            return arena, shm

        monkeypatch.setattr(pool_module._PoolHandle, "create_arena", recording)
        executor = executor_for(pool_policy("csr", seed=207))
        csr, dense = self._dense_sources(graph)
        with pytest.raises(KeyError):
            # An unknown rule name raises inside every worker task.
            executor.map_kernel(
                "csr_compatible_masks", csr, dense, {"rule": "NO_SUCH_RULE"}
            )
        assert created
        for name in created:
            assert name not in pool_module._SEGMENT_LEDGER
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        # The pool survives the crash and the next dispatch works.
        ok = executor.map_kernel("csr_path_lengths", csr, dense, {})
        assert len(ok) == len(dense)

    def test_shutdown_pools_flushes_orphaned_segments(self):
        """The parent-owned ledger is the safety net for dispatches that died
        before their own cleanup: shutdown_pools must unlink whatever is left."""
        from multiprocessing import shared_memory

        orphan = shared_memory.SharedMemory(create=True, size=64)
        pool_module._SEGMENT_LEDGER[orphan.name] = orphan
        name = orphan.name
        pool_module.shutdown_pools()
        assert name not in pool_module._SEGMENT_LEDGER
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_int64_guard_falls_back_per_source_without_bypassing_arena(self):
        """Satellite: overflowing sources resolve on the dict backend while
        the rest of the batch keeps its worker-side bitmaps — pooled sets stay
        identical to the serial CSR relation's."""
        pytest.importorskip("numpy")
        # Doubling ladder: layer k is reached by 2**k shortest paths, so 66
        # layers push the counts past the int64 guard for sources near "s".
        edges = []
        previous = ["s"]
        for layer in range(66):
            current = [(layer, 0), (layer, 1)]
            for node in current:
                for parent in previous:
                    edges.append((parent, node, 1))
            previous = current
        edges.append((previous[0], "t", 1))
        edges.append((previous[1], "t", 1))
        graph = SignedGraph.from_edges(edges)
        pool_rel = make_relation("SPO", graph, policy=pool_policy("csr", seed=208))
        serial_rel = make_relation("SPO", graph, backend="csr")
        sample = ["s", (0, 0), (30, 1), (65, 0), "t"]
        pool_sets = pool_rel.batch_compatible_sets(sample)
        assert pool_sets == serial_rel.batch_compatible_sets(sample)
        executor = pool_rel._executor()
        assert executor._handle.arenas_created >= 1  # shipping was not bypassed
        assert pool_rel.batch_compatibility_degrees(sample) == (
            serial_rel.batch_compatibility_degrees(sample)
        )

    def test_degradation_warns_once_across_relations(self):
        """Satellite: the degradation seen-set is module-level, so freshly
        constructed relations on a degraded host do not re-warn per engine."""
        import warnings as warnings_module

        class Opaque:
            def __init__(self, label):
                self.label = label

        nodes = [Opaque(index) for index in range(8)]
        graph_a = SignedGraph()
        graph_b = SignedGraph()
        for index in range(7):
            graph_a.add_edge(nodes[index], nodes[index + 1], +1)
            graph_b.add_edge(nodes[index], nodes[index + 1], +1 if index % 2 else -1)
        pool_module._DEGRADE_WARNED.clear()
        first = make_relation("SPO", graph_a, policy=pool_policy("dict", seed=209))
        second = make_relation("SPA", graph_b, policy=pool_policy("dict", seed=210))
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            first.batch_compatible_sets(nodes)
            second.batch_compatible_sets(nodes)
            CompatibilityEngine(second).compatible_sets(nodes[:4])
        degrade = [
            warning
            for warning in caught
            if "degraded to serial" in str(warning.message)
        ]
        assert len(degrade) == 1


#: Relation x backend grid: the SP* family and SBPH have two kernel backends,
#: the edge relations and exact SBP only the dict machinery.
RELATION_BACKENDS = [
    ("DPE", None),
    ("NNE", None),
    ("SBP", None),
    ("SPA", "dict"),
    ("SPA", "csr"),
    ("SPM", "dict"),
    ("SPM", "csr"),
    ("SPO", "dict"),
    ("SPO", "csr"),
    ("SBPH", "dict"),
    ("SBPH", "csr"),
]


class TestPoolSerialBitIdentity:
    @pytest.mark.parametrize("name,backend", RELATION_BACKENDS)
    def test_batched_queries_identical(self, graph, name, backend):
        serial_rel, serial_oracle, serial_engine = build_stack(graph, name, backend)
        pool_rel, pool_oracle, pool_engine = build_stack(
            graph, name, None, policy=pool_policy(backend or "auto")
        )
        nodes = graph.nodes()
        sample = nodes[:10] if name in ("SBP", "SBPH") else nodes[:25]
        team = nodes[5:8]
        candidates = nodes[30:70]

        assert pool_rel.batch_compatible_sets(sample) == serial_rel.batch_compatible_sets(sample)
        assert pool_rel.batch_compatibility_degrees(sample) == serial_rel.batch_compatibility_degrees(sample)
        assert pool_engine.compatible_from_many(candidates, team) == serial_engine.compatible_from_many(candidates, team)
        assert pool_oracle.batch_distance_to_set(candidates, team) == serial_oracle.batch_distance_to_set(candidates, team)

        serial_stats = source_sampled_pair_statistics(
            serial_rel, 8, seed=13, engine=serial_engine
        )
        pool_stats = source_sampled_pair_statistics(
            pool_rel, 8, seed=13, engine=pool_engine
        )
        assert serial_stats == pool_stats

    def test_balanced_batch_distances_match_per_candidate_loop(self, graph):
        relation, oracle, _engine = build_stack(graph, "SBPH", "dict")
        nodes = graph.nodes()
        team = nodes[:3]
        candidates = nodes[10:60]
        batched = oracle.batch_distance_to_set(candidates, team)
        loop = [oracle.distance_to_set(candidate, team) for candidate in candidates]
        assert batched == loop

    def test_truncation_flags_survive_pool_dispatch(self, graph):
        # A tiny expansion budget forces truncation; the pool path must
        # record the same flagged sources as the serial path.
        serial_rel = make_relation("SBP", graph, max_expansions=50)
        pool_rel = make_relation(
            "SBP", graph, max_expansions=50, policy=pool_policy()
        )
        sample = graph.nodes()[:6]
        serial_rel.batch_compatible_sets(sample)
        pool_rel.batch_compatible_sets(sample)
        assert pool_rel.truncated_sources() == serial_rel.truncated_sources()


class TestChurnRedispatch:
    def test_pool_identical_to_cold_serial_after_each_round(self):
        graph, _ = synthetic_signed_network(
            220, average_degree=4.0, negative_fraction=0.25, seed=31
        )
        pool_rel, pool_oracle, pool_engine = build_stack(
            graph, "SPO", None, policy=pool_policy("csr")
        )
        rng = ensure_rng(99)
        publishes_seen = set()
        for _round in range(3):
            apply_edge_churn(graph, 25, rng)
            pool_engine.refresh()
            # A cold serial stack on the mutated graph is the ground truth.
            cold_rel, cold_oracle, cold_engine = build_stack(graph, "SPO", "csr")
            nodes = graph.nodes()
            sample, team, candidates = nodes[:20], nodes[4:7], nodes[25:65]
            assert pool_rel.batch_compatible_sets(sample) == cold_rel.batch_compatible_sets(sample)
            assert pool_engine.compatible_from_many(candidates, team) == cold_engine.compatible_from_many(candidates, team)
            assert pool_oracle.batch_distance_to_set(candidates, team) == cold_oracle.batch_distance_to_set(candidates, team)
            handle = pool_module._POOL_HANDLES[2]
            publishes_seen.add(handle._next_publish_id)
        # Every round shipped a fresh snapshot: the generation-keyed publish
        # invalidated the stale one instead of reusing it.
        assert len(publishes_seen) == 3


class TestRepublishBookkeeping:
    def test_same_payload_republished_many_generations_keeps_pool_alive(self, graph):
        """Regression: a dict payload republishing under one id every round
        must not trip the live-publication bound and unlink its own segments
        (which used to kill the shared pool after ~_PUBLISH_BOUND rounds)."""
        working, _ = synthetic_signed_network(
            120, average_degree=4.0, negative_fraction=0.25, seed=41
        )
        pool_rel = make_relation("SPO", working, policy=pool_policy("dict"))
        executor = pool_rel._executor()
        handle = executor._handle
        rng = ensure_rng(5)
        for _round in range(3 * pool_module._PUBLISH_BOUND):
            apply_edge_churn(working, 5, rng)
            serial_rel = make_relation("SPO", working, backend="dict")
            sample = working.nodes()[:8]
            assert pool_rel.batch_bfs(sample) == serial_rel.batch_bfs(sample)
            assert not handle.closed
        key = id(working)
        assert list(handle.publish_order).count(key) == 1
        assert len(handle.publish_order) <= pool_module._PUBLISH_BOUND

    def test_failed_payload_marker_does_not_survive_id_reuse(self, graph):
        handle = executor_for(pool_policy())._handle
        probe, _ = synthetic_signed_network(
            10, average_degree=2.0, negative_fraction=0.2, seed=1
        )
        handle.mark_failed(probe)
        assert handle.is_failed(probe)
        key = id(probe)
        del probe  # the weakref callback must clear the marker with the object
        assert key not in handle.failed_payloads


class TestStreamingParity:
    def test_streaming_report_identical_with_workers(self):
        from repro.experiments import StreamingConfig, run_streaming

        base = dict(
            dataset="slashdot",
            scale=0.25,
            relation="SPO",
            algorithms=("LCMD", "RFMC"),
            num_rounds=2,
            churn_per_round=12,
            tasks_per_round=1,
            task_size=3,
            seed=77,
        )
        serial_report = run_streaming(StreamingConfig(**base))
        pool_report = run_streaming(StreamingConfig(workers=2, **base))
        for serial_round, pool_round in zip(serial_report.rounds, pool_report.rounds):
            assert serial_round.generation == pool_round.generation
            for serial_query, pool_query in zip(serial_round.queries, pool_round.queries):
                assert serial_query.algorithm == pool_query.algorithm
                assert serial_query.solved == pool_query.solved
                assert serial_query.cost == pool_query.cost
                assert serial_query.team_size == pool_query.team_size


class TestGracefulDegradation:
    def test_no_shared_memory_degrades_to_serial_with_warning(self, monkeypatch):
        reset_executors()
        monkeypatch.setattr(pool_module, "_DISABLE_SHARED_MEMORY", True)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            executor = executor_for(ExecutionPolicy(workers=2))
        assert isinstance(executor, SerialExecutor)
        # The failure is remembered: no re-warn, still serial.
        assert isinstance(executor_for(ExecutionPolicy(workers=4)), SerialExecutor)
        monkeypatch.setattr(pool_module, "_DISABLE_SHARED_MEMORY", False)
        reset_executors()

    def test_degraded_policy_still_produces_correct_results(self, graph, monkeypatch):
        reset_executors()
        monkeypatch.setattr(pool_module, "_DISABLE_SHARED_MEMORY", True)
        with pytest.warns(RuntimeWarning):
            pool_rel = make_relation("SPO", graph, policy=pool_policy("csr"))
            pool_sets = pool_rel.batch_compatible_sets(graph.nodes()[:10])
        serial_rel = make_relation("SPO", graph, backend="csr")
        assert pool_sets == serial_rel.batch_compatible_sets(graph.nodes()[:10])
        monkeypatch.setattr(pool_module, "_DISABLE_SHARED_MEMORY", False)
        reset_executors()

    def test_unpicklable_payload_degrades_per_payload(self):
        class OpaqueNode:
            """Defined locally, hence unpicklable — publish must fail cleanly."""

            def __init__(self, label: str) -> None:
                self.label = label

            def __repr__(self) -> str:
                return f"OpaqueNode({self.label})"

        nodes = [OpaqueNode(str(index)) for index in range(8)]
        graph = SignedGraph()
        for index in range(7):
            graph.add_edge(nodes[index], nodes[index + 1], +1 if index % 3 else -1)
        pool_rel = make_relation("SBPH", graph, policy=pool_policy("dict"))
        # The degradation warning fires once per process per stage; make this
        # test order-independent.
        pool_module._DEGRADE_WARNED.clear()
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            pool_sets = pool_rel.batch_compatible_sets(nodes)
        serial_rel = make_relation("SBPH", graph, backend="dict")
        assert pool_sets == serial_rel.batch_compatible_sets(nodes)

    def test_identity_equality_nodes_degrade_to_serial(self):
        """Picklable nodes whose copies compare unequal (identity __eq__)
        must be refused at publish time and served serially — not crash with
        NodeNotFoundError inside a worker."""
        nodes = [IdentityNode(index) for index in range(8)]
        graph = SignedGraph()
        for index in range(7):
            graph.add_edge(nodes[index], nodes[index + 1], +1 if index % 3 else -1)
        pool_rel = make_relation("SPA", graph, policy=pool_policy("dict", seed=123))
        # The warning seen-set is module-level (one warn per process per
        # stage, however many executors degrade); reset it so this test does
        # not depend on which degradation ran first.
        pool_module._DEGRADE_WARNED.clear()
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            pool_sets = pool_rel.batch_compatible_sets(nodes)
        serial_rel = make_relation("SPA", graph, backend="dict")
        assert pool_sets == serial_rel.batch_compatible_sets(nodes)


class TestSnapshotStoreMode:
    """File-backed snapshot publishing (the ``snapshot_store`` policy knob):
    workers memmap a published ``.store`` file instead of attaching shared
    memory, with identical results, identical churn semantics, and the same
    crash-safe cleanup discipline as the shm segment ledger."""

    @staticmethod
    def _dense_sources(graph, count=12):
        csr = graph.csr_view()
        return csr, [csr.index_of(node) for node in graph.nodes()[:count]]

    def test_policy_validation(self, tmp_path):
        from repro.exec.policy import validate_snapshot_store

        assert ExecutionPolicy(snapshot_store=str(tmp_path)).snapshot_store == str(
            tmp_path
        )
        with pytest.raises(ValueError, match="directory does not exist"):
            ExecutionPolicy(snapshot_store=str(tmp_path / "missing"))
        with pytest.raises(ValueError, match="existing directory"):
            ExecutionPolicy(snapshot_store="")
        with pytest.raises(ValueError, match="existing directory"):
            validate_snapshot_store(123)

    def test_store_dispatch_bit_identical_to_shm_and_serial(self, graph, tmp_path):
        np = pytest.importorskip("numpy")
        csr, dense = self._dense_sources(graph, count=20)
        serial = serial_executor()
        shm_exec = executor_for(pool_policy("csr", seed=301))
        store_exec = executor_for(
            pool_policy("csr", seed=301, snapshot_store=str(tmp_path))
        )
        for kernel, params in (
            ("csr_path_lengths", {}),
            ("csr_signed_bfs", {"skip_overflow": True}),
            ("csr_sbph", {"max_length": None}),
            ("csr_compatible_degrees", {"rule": "SPA", "max_length": None}),
        ):
            expected = serial.map_kernel(kernel, csr, dense, params)
            via_shm = shm_exec.map_kernel(kernel, csr, dense, params)
            via_store = store_exec.map_kernel(kernel, csr, dense, params)
            for left, right in zip(via_store, expected):
                if isinstance(left, tuple):
                    assert all(np.array_equal(a, b) for a, b in zip(left, right))
                elif isinstance(left, np.ndarray):
                    assert np.array_equal(left, right)
                else:
                    assert left == right
            for left, right in zip(via_store, via_shm):
                if isinstance(left, tuple):
                    assert all(np.array_equal(a, b) for a, b in zip(left, right))
                elif isinstance(left, np.ndarray):
                    assert np.array_equal(left, right)
                else:
                    assert left == right

    def test_store_descriptor_and_file_lifecycle(self, graph, tmp_path):
        pytest.importorskip("numpy")
        csr, dense = self._dense_sources(graph)
        executor = executor_for(
            pool_policy("csr", seed=302, snapshot_store=str(tmp_path))
        )
        executor.map_kernel("csr_path_lengths", csr, dense, {})
        descriptor = executor._handle.published[id(csr)].descriptor
        assert descriptor.kind == "store"
        assert descriptor.segments == ()
        assert descriptor.store_path in pool_module._STORE_FILE_LEDGER
        files = [f for f in os.listdir(tmp_path) if f.endswith(".store")]
        assert files == [os.path.basename(descriptor.store_path)]
        # Re-dispatch against the same snapshot reuses the publication.
        executor.map_kernel("csr_path_lengths", csr, dense, {})
        assert len(os.listdir(tmp_path)) == 1
        pool_module.shutdown_pools()
        assert os.listdir(tmp_path) == []
        assert not pool_module._STORE_FILE_LEDGER

    def test_store_results_ship_through_arena(self, graph, tmp_path):
        pytest.importorskip("numpy")
        csr, dense = self._dense_sources(graph)
        executor = executor_for(
            pool_policy("csr", seed=303, snapshot_store=str(tmp_path))
        )
        before = executor._handle.arenas_created
        left = executor.map_kernel("csr_path_lengths", csr, dense, {})
        # "store" publications are arena-eligible exactly like "csr" ones.
        assert executor._handle.arenas_created == before + 1
        assert len(left) == len(dense)

    def test_churn_republish_under_store(self, tmp_path):
        pytest.importorskip("numpy")
        graph, _ = synthetic_signed_network(
            220, average_degree=4.0, negative_fraction=0.25, seed=33
        )
        pool_rel, pool_oracle, pool_engine = build_stack(
            graph, "SPO", None,
            policy=pool_policy("csr", snapshot_store=str(tmp_path)),
        )
        rng = ensure_rng(17)
        for _round in range(3):
            apply_edge_churn(graph, 25, rng)
            pool_engine.refresh()
            cold_rel, cold_oracle, cold_engine = build_stack(graph, "SPO", "csr")
            nodes = graph.nodes()
            sample, team, candidates = nodes[:20], nodes[4:7], nodes[25:65]
            assert pool_rel.batch_compatible_sets(sample) == cold_rel.batch_compatible_sets(sample)
            assert pool_oracle.batch_distance_to_set(candidates, team) == cold_oracle.batch_distance_to_set(candidates, team)
            # Stale publications are released as they are superseded, so the
            # store directory never accumulates more than the live snapshots.
            live = [f for f in os.listdir(tmp_path) if f.endswith(".store")]
            assert len(live) <= 2
        pool_module.shutdown_pools()
        assert os.listdir(tmp_path) == []

    def test_dict_payloads_keep_pickle_shm_path(self, graph, tmp_path):
        """SignedGraph payloads are not CSR snapshots: under a store policy
        they still ship as pickled shm blobs, with identical results."""
        pool_rel = make_relation(
            "SPA", graph, policy=pool_policy("dict", snapshot_store=str(tmp_path))
        )
        serial_rel = make_relation("SPA", graph, backend="dict")
        sample = graph.nodes()[:10]
        assert pool_rel.batch_compatible_sets(sample) == serial_rel.batch_compatible_sets(sample)
        assert [f for f in os.listdir(tmp_path) if f.endswith(".store")] == []

    def test_save_failure_degrades_to_serial(self, graph, tmp_path, monkeypatch):
        import repro.signed.store as store_module

        pytest.importorskip("numpy")

        def exploding_save(csr, path):
            raise OSError("store directory went away")

        monkeypatch.setattr(store_module, "save_snapshot", exploding_save)
        pool_rel = make_relation(
            "SPO", graph, policy=pool_policy("csr", snapshot_store=str(tmp_path))
        )
        pool_module._DEGRADE_WARNED.clear()
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            pool_sets = pool_rel.batch_compatible_sets(graph.nodes()[:10])
        serial_rel = make_relation("SPO", graph, backend="csr")
        assert pool_sets == serial_rel.batch_compatible_sets(graph.nodes()[:10])

    def test_worker_crash_leaves_no_stale_store_files(self, graph, tmp_path):
        """Crash injection: a kernel blowing up inside the workers must leave
        the published file governed by the ledger — gone after shutdown."""
        pytest.importorskip("numpy")
        csr, dense = self._dense_sources(graph)
        executor = executor_for(
            pool_policy("csr", seed=304, snapshot_store=str(tmp_path))
        )
        with pytest.raises(KeyError):
            executor.map_kernel(
                "csr_compatible_masks", csr, dense, {"rule": "NO_SUCH_RULE"}
            )
        # The pool survives and the publication is still serviceable.
        ok = executor.map_kernel("csr_path_lengths", csr, dense, {})
        assert len(ok) == len(dense)
        pool_module.shutdown_pools()
        assert os.listdir(tmp_path) == []
        assert not pool_module._STORE_FILE_LEDGER

    def test_shutdown_flushes_orphaned_store_and_temp_files(self, tmp_path):
        import repro.signed.store as store_module

        orphan_store = tmp_path / "orphan.store"
        orphan_store.write_bytes(b"leftover")
        orphan_temp = tmp_path / "orphan.store.123.0.tmp"
        orphan_temp.write_bytes(b"half-written")
        pool_module._STORE_FILE_LEDGER[str(orphan_store)] = None
        with store_module._TEMP_LOCK:
            store_module._TEMP_LEDGER[str(orphan_temp)] = None
        pool_module.shutdown_pools()
        assert not orphan_store.exists()
        assert not orphan_temp.exists()
        assert not pool_module._STORE_FILE_LEDGER
        assert not store_module._TEMP_LEDGER
