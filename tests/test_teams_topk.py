"""Tests for top-k / diverse team formation (:mod:`repro.teams.topk`).

The contract under test: ``top_k_teams`` runs the same seed loop as
``form_team`` — warmed through the batched compatibility engine — and ranks
the completed candidates stably by ``(cost, team size)``, so ``k=1`` is
*exactly* ``form_team`` (same team, same cost), under every relation and
execution policy.
"""

from __future__ import annotations

import pytest

from repro.compatibility import make_relation
from repro.exec import ExecutionPolicy
from repro.skills import Task
from repro.teams import TeamFormationProblem, team_covers_task, team_is_compatible
from repro.teams.generic import form_team
from repro.teams.policies import (
    LeastCompatibleSkillFirst,
    MinimumDistanceUser,
    MostCompatibleUser,
    RarestSkillFirst,
)
from repro.teams.topk import diverse_top_k_teams, top_k_teams

POLICY_PAIRS = [
    (LeastCompatibleSkillFirst, MinimumDistanceUser),
    (LeastCompatibleSkillFirst, MostCompatibleUser),
    (RarestSkillFirst, MinimumDistanceUser),
]

TASK_SKILLS = ["python", "databases", "design", "writing"]


def make_problem(dataset, relation_name, skills=TASK_SKILLS, policy=None):
    kwargs = {} if policy is None else {"policy": policy}
    relation = make_relation(relation_name, dataset.graph, **kwargs)
    return TeamFormationProblem(dataset.graph, dataset.skills, relation, Task(skills))


class TestTopKTeams:
    @pytest.mark.parametrize("relation_name", ["SPA", "SPO", "NNE", "SBPH"])
    @pytest.mark.parametrize("policies", POLICY_PAIRS)
    def test_k1_equals_form_team(self, toy, relation_name, policies):
        skill_policy_class, user_policy_class = policies
        problem = make_problem(toy, relation_name)
        reference = form_team(problem, skill_policy_class(), user_policy_class())
        top = top_k_teams(problem, skill_policy_class(), user_policy_class(), k=1)
        if reference.team is None:
            assert top == []
        else:
            assert len(top) == 1
            assert top[0][0] == reference.team
            assert top[0][1] == reference.cost

    def test_k1_equals_form_team_with_label_index_policy(self, toy):
        """The equivalence holds when the oracle serves distances from the
        hub-label index instead of per-source BFS."""
        pytest.importorskip("numpy")
        policy = ExecutionPolicy(distance_index="labels")
        problem = make_problem(toy, "NNE", policy=policy)
        plain = make_problem(toy, "NNE")
        reference = form_team(plain, LeastCompatibleSkillFirst(), MinimumDistanceUser())
        top = top_k_teams(
            problem, LeastCompatibleSkillFirst(), MinimumDistanceUser(), k=1
        )
        assert top[0][0] == reference.team
        assert top[0][1] == reference.cost

    def test_results_are_valid_distinct_and_sorted(self, toy):
        problem = make_problem(toy, "SPO")
        ranked = top_k_teams(problem, LeastCompatibleSkillFirst(), MinimumDistanceUser(), k=5)
        assert ranked
        costs = [cost for _team, cost in ranked]
        assert costs == sorted(costs)
        teams = [team for team, _cost in ranked]
        assert len(set(teams)) == len(teams)
        for team, cost in ranked:
            assert team_covers_task(team, problem.task, toy.skills)
            assert team_is_compatible(team, problem.relation)
            assert cost == problem.oracle.max_pairwise_distance(team)

    def test_deterministic_across_calls(self, toy):
        problem = make_problem(toy, "SPO")
        first = top_k_teams(problem, RarestSkillFirst(), MinimumDistanceUser(), k=4)
        second = top_k_teams(problem, RarestSkillFirst(), MinimumDistanceUser(), k=4)
        assert first == second

    def test_k_validation(self, toy):
        problem = make_problem(toy, "SPO")
        with pytest.raises(ValueError):
            top_k_teams(problem, RarestSkillFirst(), MinimumDistanceUser(), k=0)

    def test_seed_maps_are_warmed_through_the_engine(self, toy):
        """The seed loop prefetches its seed users' distance maps in one
        batched engine sweep (the same contract form_team has)."""
        problem = make_problem(toy, "SPO")
        warmed = []
        original = problem.engine.warm

        def recording_warm(sources, distances=False):
            warmed.append((list(sources), distances))
            return original(sources, distances=distances)

        problem.engine.warm = recording_warm
        top_k_teams(problem, LeastCompatibleSkillFirst(), MinimumDistanceUser(), k=2)
        assert warmed
        seeds, distances = warmed[0]
        assert seeds and distances  # MinimumDistanceUser scores by distance


class TestDiverseTopK:
    def test_overlap_bound_holds(self, toy):
        problem = make_problem(toy, "SPO")
        kept = diverse_top_k_teams(
            problem,
            LeastCompatibleSkillFirst(),
            MinimumDistanceUser(),
            k=3,
            max_overlap=0.5,
        )
        for i, (team_a, _) in enumerate(kept):
            for team_b, _ in kept[i + 1 :]:
                union = team_a | team_b
                assert len(team_a & team_b) / len(union) <= 0.5

    def test_first_team_matches_top1(self, toy):
        problem = make_problem(toy, "SPO")
        top = top_k_teams(problem, LeastCompatibleSkillFirst(), MinimumDistanceUser(), k=1)
        kept = diverse_top_k_teams(
            problem, LeastCompatibleSkillFirst(), MinimumDistanceUser(), k=3
        )
        assert kept[0] == top[0]

    def test_max_overlap_validation(self, toy):
        problem = make_problem(toy, "SPO")
        with pytest.raises(ValueError):
            diverse_top_k_teams(
                problem,
                LeastCompatibleSkillFirst(),
                MinimumDistanceUser(),
                max_overlap=1.5,
            )
