"""Tests for the individual compatibility relations (DPE, NNE, SPA, SPM, SPO, SBP, SBPH)."""

from __future__ import annotations

import pytest

from repro.compatibility import (
    RELATION_CLASSES,
    RELATION_NAMES,
    AllShortestPathsCompatibility,
    DirectPositiveEdgeCompatibility,
    HeuristicBalancedPathCompatibility,
    MajorityShortestPathsCompatibility,
    NoNegativeEdgeCompatibility,
    OneShortestPathCompatibility,
    StructurallyBalancedPathCompatibility,
    make_relation,
)
from repro.exceptions import NodeNotFoundError, UnknownRelationError
from repro.signed import NEGATIVE, POSITIVE, SignedGraph


class TestRegistry:
    def test_all_names_construct(self, two_factions):
        for name in RELATION_NAMES:
            relation = make_relation(name, two_factions)
            assert relation.name == name

    def test_case_insensitive(self, two_factions):
        assert make_relation("spo", two_factions).name == "SPO"

    def test_unknown_name_raises(self, two_factions):
        with pytest.raises(UnknownRelationError):
            make_relation("XYZ", two_factions)

    def test_registry_classes_match_names(self):
        for name, cls in RELATION_CLASSES.items():
            assert cls.name == name


class TestRequiredProperties:
    """Every relation must satisfy reflexivity, symmetry and the two edge properties."""

    @pytest.mark.parametrize("name", RELATION_NAMES)
    def test_reflexive(self, two_factions, name):
        relation = make_relation(name, two_factions)
        assert all(relation.are_compatible(node, node) for node in two_factions.nodes())

    @pytest.mark.parametrize("name", RELATION_NAMES)
    def test_positive_edge_compatibility(self, figure_1a, name):
        relation = make_relation(name, figure_1a)
        assert relation.satisfies_positive_edge_compatibility()

    @pytest.mark.parametrize("name", RELATION_NAMES)
    def test_negative_edge_incompatibility(self, figure_1a, name):
        relation = make_relation(name, figure_1a)
        assert relation.satisfies_negative_edge_incompatibility()

    @pytest.mark.parametrize("name", RELATION_NAMES)
    def test_symmetry_on_small_graph(self, two_factions, name):
        relation = make_relation(name, two_factions)
        nodes = two_factions.nodes()
        for u in nodes:
            for v in nodes:
                assert relation.are_compatible(u, v) == relation.are_compatible(v, u)

    @pytest.mark.parametrize("name", RELATION_NAMES)
    def test_is_valid_relation(self, two_factions, name):
        assert make_relation(name, two_factions).is_valid_relation()

    def test_missing_node_raises(self, two_factions):
        relation = make_relation("SPO", two_factions)
        with pytest.raises(NodeNotFoundError):
            relation.are_compatible(0, "ghost")
        with pytest.raises(NodeNotFoundError):
            relation.compatible_with("ghost")


class TestDPE:
    def test_only_direct_positive_neighbors(self, two_factions):
        relation = DirectPositiveEdgeCompatibility(two_factions)
        assert relation.are_compatible(0, 1)
        assert not relation.are_compatible(0, 3)     # not adjacent
        assert not relation.are_compatible(2, 3)     # negative edge

    def test_compatible_with_contains_self(self, two_factions):
        relation = DirectPositiveEdgeCompatibility(two_factions)
        assert 0 in relation.compatible_with(0)

    def test_compatibility_degree(self, two_factions):
        relation = DirectPositiveEdgeCompatibility(two_factions)
        assert relation.compatibility_degree(0) == 2


class TestNNE:
    def test_everything_but_enemies(self, two_factions):
        relation = NoNegativeEdgeCompatibility(two_factions)
        assert relation.are_compatible(0, 4)      # different factions, no direct edge
        assert not relation.are_compatible(2, 3)  # direct negative edge
        assert relation.are_compatible(0, 1)

    def test_compatible_with_is_complement_of_enemies(self, two_factions):
        relation = NoNegativeEdgeCompatibility(two_factions)
        compatible = relation.compatible_with(0)
        assert compatible == frozenset({0, 1, 2, 3, 4})  # everyone except enemy 5


class TestShortestPathRelations:
    def test_two_parallel_paths_of_mixed_sign(self):
        # Two shortest paths 0-1-3 (positive) and 0-2-3 (negative).
        graph = SignedGraph.from_edges(
            [(0, 1, +1), (1, 3, +1), (0, 2, +1), (2, 3, -1)]
        )
        assert not AllShortestPathsCompatibility(graph).are_compatible(0, 3)
        assert MajorityShortestPathsCompatibility(graph).are_compatible(0, 3)
        assert OneShortestPathCompatibility(graph).are_compatible(0, 3)

    def test_majority_requires_at_least_as_many_positive(self):
        # One positive and two negative shortest paths between 0 and 4.
        graph = SignedGraph.from_edges(
            [
                (0, 1, +1), (1, 4, +1),
                (0, 2, -1), (2, 4, +1),
                (0, 3, +1), (3, 4, -1),
            ]
        )
        assert not MajorityShortestPathsCompatibility(graph).are_compatible(0, 4)
        assert OneShortestPathCompatibility(graph).are_compatible(0, 4)

    def test_unreachable_nodes_are_incompatible(self):
        graph = SignedGraph.from_edges([(0, 1, +1)], nodes=["iso"])
        for cls in (
            AllShortestPathsCompatibility,
            MajorityShortestPathsCompatibility,
            OneShortestPathCompatibility,
        ):
            assert not cls(graph).are_compatible(0, "iso")

    def test_figure_1a_pair_is_sp_incompatible(self, figure_1a):
        for cls in (
            AllShortestPathsCompatibility,
            MajorityShortestPathsCompatibility,
            OneShortestPathCompatibility,
        ):
            assert not cls(figure_1a).are_compatible("u", "v")

    def test_balanced_two_faction_graph_spa_matches_factions(self, two_factions):
        relation = AllShortestPathsCompatibility(two_factions)
        assert relation.are_compatible(0, 2)
        assert not relation.are_compatible(0, 3)

    def test_cache_cleared_after_graph_change(self, two_factions):
        relation = OneShortestPathCompatibility(two_factions)
        assert not relation.are_compatible(2, 3)
        two_factions.set_sign(2, 3, POSITIVE)
        relation.clear_cache()
        assert relation.are_compatible(2, 3)


class TestBalancedRelations:
    def test_figure_1a_sbp_compatible(self, figure_1a):
        assert StructurallyBalancedPathCompatibility(figure_1a).are_compatible("u", "v")
        assert HeuristicBalancedPathCompatibility(figure_1a).are_compatible("u", "v")

    def test_figure_1b_heuristic_is_direction_dependent(self, figure_1b):
        # The directional search misses u -> v (the prefix-property failure of
        # Figure 1(b)) but finds the reversed path v -> u; the symmetrised
        # SBPH relation therefore contains the pair in both query orders.
        from repro.signed.paths import BalancedPathSearch

        search = BalancedPathSearch(figure_1b)
        assert "v" not in search.search_heuristic("u").positive_lengths
        assert "u" in search.search_heuristic("v").positive_lengths
        heuristic = HeuristicBalancedPathCompatibility(figure_1b)
        assert heuristic.are_compatible("u", "v")
        assert heuristic.are_compatible("v", "u")

    def test_heuristic_misses_pair_from_both_directions(self, prefix_trap_graph):
        # Even after symmetrisation SBPH under-approximates SBP: on this graph
        # the heuristic misses the (2, 4) pair whichever endpoint it starts
        # from, while the exact search finds a positive balanced path.
        exact = StructurallyBalancedPathCompatibility(prefix_trap_graph)
        heuristic = HeuristicBalancedPathCompatibility(prefix_trap_graph)
        assert exact.are_compatible(2, 4)
        assert not heuristic.are_compatible(2, 4)
        assert not heuristic.are_compatible(4, 2)

    def test_sbph_symmetry_regression(self, figure_1b):
        # Regression for the SBPH symmetry violation: a fresh relation queried
        # (u, v) must agree with a fresh relation queried (v, u).  Before the
        # fix the answer depended on which endpoint was searched first.
        first = HeuristicBalancedPathCompatibility(figure_1b)
        second = HeuristicBalancedPathCompatibility(figure_1b)
        assert first.are_compatible("u", "v") == second.are_compatible("v", "u")
        # Both query orders agree on the same instance too, whatever the
        # internal cache state is.
        assert first.are_compatible("v", "u") == first.are_compatible("u", "v")

    def test_direct_enemies_never_compatible(self, figure_1a):
        relation = StructurallyBalancedPathCompatibility(figure_1a)
        assert not relation.are_compatible("u", "x1")

    def test_positive_balanced_distance(self, figure_1a):
        relation = StructurallyBalancedPathCompatibility(figure_1a)
        assert relation.positive_balanced_distance("u", "v") == 4
        assert relation.positive_balanced_distance("u", "u") == 0.0
        assert relation.positive_balanced_distance("u", "x1") == float("inf")

    def test_truncated_sources_reported(self, small_random_graph):
        relation = StructurallyBalancedPathCompatibility(
            small_random_graph, max_expansions=5
        )
        node = small_random_graph.nodes()[0]
        relation.compatible_with(node)
        assert node in relation.truncated_sources()

    def test_max_path_length_restricts_relation(self, figure_1b):
        bounded = StructurallyBalancedPathCompatibility(figure_1b, max_path_length=3)
        assert not bounded.are_compatible("u", "v")

    def test_truncated_sources_survive_cache_eviction(self, small_random_graph):
        # The truncation report must not depend on the (bounded, evictable)
        # result cache: after a sweep larger than the cache, every truncated
        # source is still reported.
        relation = StructurallyBalancedPathCompatibility(
            small_random_graph, max_expansions=5, result_cache_size=2
        )
        nodes = small_random_graph.nodes()[:6]
        for node in nodes:
            relation._search_from(node)
        assert set(nodes) <= relation.truncated_sources()
        relation.clear_cache()
        assert relation.truncated_sources() == set()


class TestContainmentChain:
    """Proposition 3.5 on concrete graphs: DPE ⊆ SPA ⊆ SPM ⊆ SPO and SBPH ⊆ SBP ⊆ NNE."""

    def _compatible_pairs(self, relation, graph):
        nodes = graph.nodes()
        return {
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if relation.are_compatible(u, v)
        }

    @pytest.mark.parametrize(
        "graph_fixture", ["two_factions", "figure_1a", "figure_1b", "small_random_graph"]
    )
    def test_chain(self, request, graph_fixture):
        graph = request.getfixturevalue(graph_fixture)
        pairs = {
            name: self._compatible_pairs(make_relation(name, graph), graph)
            for name in ("DPE", "SPA", "SPM", "SPO", "SBPH", "SBP", "NNE")
        }
        assert pairs["DPE"] <= pairs["SPA"]
        assert pairs["SPA"] <= pairs["SPM"]
        assert pairs["SPM"] <= pairs["SPO"]
        assert pairs["SBPH"] <= pairs["SBP"]
        assert pairs["SBP"] <= pairs["NNE"]
