"""Tests for the experiment harness (configs, workloads, tables, figures).

The experiments are exercised on a miniature configuration so that every code
path (including rendering) runs in seconds; the *shape* assertions mirror the
qualitative findings of the paper that must survive any reasonable dataset:
the relaxation ordering of the relations and the monotone effect of task size.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    DatasetConfig,
    ExperimentConfig,
    build_all_dataset_contexts,
    build_dataset_context,
    default_config,
    fast_config,
    run_figure2ab,
    run_figure2cd,
    run_table1,
    run_table2,
    run_table3,
)


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    """An even smaller configuration than fast_config, for unit tests."""
    return ExperimentConfig(
        datasets=(
            DatasetConfig(
                name="slashdot",
                seed=13,
                scale=0.25,
                num_sampled_skill_pairs=100,
                compute_exact_sbp=True,
                sbp_max_expansions=5_000,
            ),
            DatasetConfig(
                name="epinions",
                seed=17,
                scale=0.008,
                num_sampled_sources=40,
                num_sampled_skill_pairs=100,
            ),
        ),
        team_dataset="epinions",
        table2_relations=("SPA", "SPO", "SBPH", "SBP", "NNE"),
        team_relations=("SPA", "SPO", "NNE"),
        team_algorithms=("LCMD", "RANDOM"),
        num_tasks=6,
        task_size=3,
        task_sizes=(2, 4),
        max_seeds=6,
    )


@pytest.fixture(scope="module")
def contexts(tiny_config):
    return build_all_dataset_contexts(tiny_config)


class TestConfig:
    def test_default_config_contains_paper_datasets(self):
        config = default_config()
        assert config.dataset_names == ("slashdot", "epinions", "wikipedia")
        assert config.num_tasks == 50
        assert config.task_size == 5
        assert config.team_dataset == "epinions"

    def test_fast_config_is_smaller(self):
        fast = fast_config()
        assert fast.num_tasks < default_config().num_tasks

    def test_dataset_lookup(self):
        config = default_config()
        assert config.dataset("epinions").name == "epinions"
        with pytest.raises(KeyError):
            config.dataset("missing")


class TestWorkloads:
    def test_context_builds_relations_lazily_and_caches(self, contexts):
        context = contexts["epinions"]
        first = context.relation_context("SPO")
        second = context.relation_context("spo")
        assert first is second
        assert first.relation.name == "SPO"

    def test_generate_tasks_deterministic(self, contexts):
        context = contexts["slashdot"]
        first = context.generate_tasks(size=3, count=4, seed=9)
        second = context.generate_tasks(size=3, count=4, seed=9)
        assert first == second
        assert all(len(task) == 3 for task in first)

    def test_build_single_context(self, tiny_config):
        context = build_dataset_context(tiny_config, "epinions")
        assert context.name == "epinions"


class TestTable1:
    def test_rows_match_datasets(self, tiny_config, contexts):
        result = run_table1(tiny_config, contexts)
        assert [row.name for row in result.rows] == list(tiny_config.dataset_names)
        for row in result.rows:
            assert row.num_users > 0
            assert row.num_edges > 0
            assert 0.0 < row.negative_fraction < 1.0
        text = result.as_text()
        assert "Table 1" in text and "slashdot" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self, tiny_config, contexts):
        return run_table2(tiny_config, contexts)

    def test_every_dataset_reported(self, tiny_config, table2):
        assert [entry.dataset for entry in table2.datasets] == list(tiny_config.dataset_names)

    def test_relaxation_increases_compatible_users(self, table2):
        for entry in table2.datasets:
            cells = entry.cells
            assert cells["SPA"].compatible_users_pct <= cells["SPO"].compatible_users_pct + 1e-9
            assert cells["SPO"].compatible_users_pct <= cells["NNE"].compatible_users_pct + 1e-9

    def test_sbp_only_computed_where_configured(self, table2):
        by_name = {entry.dataset: entry for entry in table2.datasets}
        assert by_name["slashdot"].cells["SBP"] is not None
        assert by_name["epinions"].cells["SBP"] is None

    def test_sbp_sbph_agreement_reported_for_slashdot(self, table2):
        by_name = {entry.dataset: entry for entry in table2.datasets}
        agreement = by_name["slashdot"].sbp_sbph_agreement
        assert agreement is not None
        assert 0.5 <= agreement <= 1.0

    def test_rendering_contains_all_relations(self, tiny_config, table2):
        text = table2.as_text()
        for relation in tiny_config.table2_relations:
            assert relation in text


class TestTable3:
    def test_percentages_structure_and_range(self, tiny_config, contexts):
        result = run_table3(tiny_config, contexts["epinions"])
        assert result.num_tasks == tiny_config.num_tasks
        for projection in ("ignore_sign", "delete_negative"):
            assert set(result.percentages[projection]) == set(tiny_config.team_relations)
            for value in result.percentages[projection].values():
                assert 0.0 <= value <= 100.0
        # Relaxing the relation can only increase the compatible fraction.
        for projection in ("ignore_sign", "delete_negative"):
            row = result.percentages[projection]
            assert row["SPA"] <= row["SPO"] + 1e-9
            assert row["SPO"] <= row["NNE"] + 1e-9
        assert "Table 3" in result.as_text()


class TestFigure2:
    @pytest.fixture(scope="class")
    def figure_ab(self, tiny_config, contexts):
        return run_figure2ab(tiny_config, contexts["epinions"])

    def test_series_structure(self, tiny_config, figure_ab):
        assert set(figure_ab.series) == set(tiny_config.team_relations)
        for relation, algorithms in figure_ab.series.items():
            assert set(algorithms) == set(tiny_config.team_algorithms)
            for series in algorithms.values():
                assert series.tasks == tiny_config.num_tasks
                assert 0 <= series.solved <= series.tasks
                assert 0.0 <= series.solved_pct <= 100.0

    def test_solved_rate_respects_relaxation(self, figure_ab):
        lcmd = {relation: series["LCMD"].solved for relation, series in figure_ab.series.items()}
        assert lcmd["SPA"] <= lcmd["SPO"]
        assert lcmd["SPO"] <= lcmd["NNE"]

    def test_max_upper_bound_bounds_lcmd(self, figure_ab):
        for relation in figure_ab.relations:
            solved_pct = figure_ab.series[relation]["LCMD"].solved_pct
            assert solved_pct <= figure_ab.max_upper_bound[relation] + 1e-9

    def test_rendering(self, figure_ab):
        text = figure_ab.as_text()
        assert "Figure 2(a)" in text and "Figure 2(b)" in text

    def test_figure2cd_structure_and_monotonicity(self, tiny_config, contexts):
        result = run_figure2cd(tiny_config, contexts["epinions"])
        assert set(result.series) == set(tiny_config.team_relations)
        for relation in result.relations:
            by_size = result.series[relation]
            assert set(by_size) == set(tiny_config.task_sizes)
            for series in by_size.values():
                assert 0 <= series.solved <= series.tasks
        # Bigger tasks are (weakly) harder under the strictest relation; allow
        # one task of slack because the workloads at different sizes differ.
        sizes = sorted(tiny_config.task_sizes)
        spa = result.series["SPA"]
        assert spa[sizes[-1]].solved <= spa[sizes[0]].solved + 1
        assert "Figure 2(c)" in result.as_text()
