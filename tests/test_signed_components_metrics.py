"""Tests for connected components and graph metrics."""

from __future__ import annotations

import pytest

from repro.signed import (
    SignedGraph,
    average_degree,
    connected_components,
    degree_histogram,
    diameter,
    graph_statistics,
    is_connected,
    largest_connected_component,
    negative_edge_fraction,
    sign_distribution,
)


class TestComponents:
    def test_single_component(self, two_factions):
        components = connected_components(two_factions)
        assert len(components) == 1
        assert components[0] == set(two_factions.nodes())

    def test_multiple_components_sorted_by_size(self):
        graph = SignedGraph.from_edges(
            [(0, 1, +1), (1, 2, +1), (10, 11, -1)], nodes=[99]
        )
        components = connected_components(graph)
        assert [len(c) for c in components] == [3, 2, 1]

    def test_empty_graph_has_no_components(self):
        assert connected_components(SignedGraph()) == []

    def test_largest_connected_component_subgraph(self):
        graph = SignedGraph.from_edges([(0, 1, +1), (1, 2, -1), (10, 11, +1)])
        lcc = largest_connected_component(graph)
        assert set(lcc.nodes()) == {0, 1, 2}
        assert lcc.number_of_edges() == 2

    def test_largest_component_of_empty_graph(self):
        assert largest_connected_component(SignedGraph()).number_of_nodes() == 0

    def test_is_connected(self, two_factions):
        assert is_connected(two_factions)
        assert not is_connected(SignedGraph())
        disconnected = SignedGraph.from_edges([(0, 1, +1)], nodes=[5])
        assert not is_connected(disconnected)


class TestMetrics:
    def test_negative_edge_fraction(self, two_factions):
        assert negative_edge_fraction(two_factions) == pytest.approx(2 / 8)

    def test_negative_fraction_empty_graph(self):
        assert negative_edge_fraction(SignedGraph()) == 0.0

    def test_average_degree(self, line_graph):
        assert average_degree(line_graph) == pytest.approx(2 * 3 / 4)

    def test_degree_histogram(self, line_graph):
        assert degree_histogram(line_graph) == {1: 2, 2: 2}

    def test_sign_distribution(self, two_factions):
        distribution = sign_distribution(two_factions)
        assert distribution[+1] == 6
        assert distribution[-1] == 2

    def test_diameter_of_line(self, line_graph):
        assert diameter(line_graph) == 3

    def test_diameter_disconnected_is_none(self):
        graph = SignedGraph.from_edges([(0, 1, +1)], nodes=[9])
        assert diameter(graph) is None

    def test_diameter_empty_is_none(self):
        assert diameter(SignedGraph()) is None

    def test_sampled_diameter_is_lower_bound(self, small_random_graph):
        exact = diameter(small_random_graph)
        sampled = diameter(small_random_graph, sample_sources=5, seed=1)
        assert sampled <= exact

    def test_sampled_diameter_invalid_sources(self, line_graph):
        with pytest.raises(ValueError):
            diameter(line_graph, sample_sources=0)

    def test_graph_statistics_fields(self, two_factions):
        stats = graph_statistics(two_factions)
        assert stats.num_nodes == 6
        assert stats.num_edges == 8
        assert stats.num_negative_edges == 2
        # e.g. dist(1, 4) = 3 via either cross-faction edge
        assert stats.diameter == 3
        assert stats.num_components == 1
        payload = stats.as_dict()
        assert payload["#users"] == 6
        assert payload["#neg edges"] == 2
