"""Benchmark F2 — regenerate the four panels of Figure 2 (team formation)."""

from __future__ import annotations

import pytest

from repro.experiments import run_figure2ab, run_figure2cd

from conftest import run_once


@pytest.fixture(scope="module")
def figure2ab_result(config, team_context, team_tasks):
    """Panels (a) and (b) computed once and shared by their two benchmarks."""
    return run_figure2ab(config, team_context, team_tasks)


@pytest.mark.benchmark(group="figure2ab")
def test_figure2a_solved_tasks_per_algorithm(benchmark, config, team_context, team_tasks):
    """Figure 2(a): % of solved tasks per algorithm and relation (k = task_size)."""
    result = run_once(benchmark, run_figure2ab, config, team_context, team_tasks)

    print("\n" + result.as_text())
    for relation in result.relations:
        for algorithm in result.algorithms:
            series = result.series[relation][algorithm]
            # No algorithm can beat the MAX upper bound.
            assert series.solved_pct <= result.max_upper_bound[relation] + 1e-9
        # LCMD and LCMC perform comparably (the paper: "the two algorithms
        # perform equally well"); allow a couple of tasks of slack.
        lcmd = result.series[relation]["LCMD"].solved
        lcmc = result.series[relation]["LCMC"].solved
        assert abs(lcmd - lcmc) <= max(3, result.series[relation]["LCMD"].tasks // 3)
    # Strict relations solve (weakly) fewer tasks than relaxed ones.
    lcmd_solved = {rel: result.series[rel]["LCMD"].solved for rel in result.relations}
    assert lcmd_solved["SPA"] <= lcmd_solved["SPO"] + 1
    assert lcmd_solved["SPO"] <= lcmd_solved["NNE"] + 1
    benchmark.extra_info["solved_pct"] = {
        rel: {alg: round(result.series[rel][alg].solved_pct, 1) for alg in result.algorithms}
        for rel in result.relations
    }


@pytest.mark.benchmark(group="figure2ab")
def test_figure2b_team_diameter_per_algorithm(benchmark, figure2ab_result):
    """Figure 2(b): average team diameter per algorithm and relation."""
    result = run_once(benchmark, lambda: figure2ab_result)

    diameters = {}
    for relation in result.relations:
        for algorithm in result.algorithms:
            series = result.series[relation][algorithm]
            if series.solved:
                diameters[(relation, algorithm)] = series.average_diameter
                assert 0.0 <= series.average_diameter <= 10.0
    # LCMD (distance-driven) should not produce larger diameters than RANDOM
    # on average across relations (allow a small tolerance on tiny workloads).
    lcmd_costs = [v for (rel, alg), v in diameters.items() if alg == "LCMD"]
    random_costs = [v for (rel, alg), v in diameters.items() if alg == "RANDOM"]
    if lcmd_costs and random_costs:
        assert sum(lcmd_costs) / len(lcmd_costs) <= sum(random_costs) / len(random_costs) + 0.75
    benchmark.extra_info["diameters"] = {
        f"{rel}/{alg}": round(value, 2) for (rel, alg), value in diameters.items()
    }


@pytest.mark.benchmark(group="figure2cd")
def test_figure2c_solved_tasks_vs_task_size(benchmark, config, team_context):
    """Figure 2(c): % of solved tasks versus task size (LCMD)."""
    result = run_once(benchmark, run_figure2cd, config, team_context)

    print("\n" + result.as_text())
    sizes = sorted(result.task_sizes)
    for relation in result.relations:
        series = result.series[relation]
        # Success rate does not increase with task size (weak monotonicity with
        # one task of slack, since each size uses a fresh random workload).
        for small, large in zip(sizes, sizes[1:]):
            assert series[large].solved <= series[small].solved + 1
    # The relaxed relations stay (nearly) flat: at the largest size they still
    # solve at least as many tasks as the strictest relation does.
    largest = sizes[-1]
    assert (
        result.series["NNE"][largest].solved
        >= result.series["SPA"][largest].solved
    )
    benchmark.extra_info["solved"] = {
        rel: {k: result.series[rel][k].solved for k in sizes} for rel in result.relations
    }


@pytest.mark.benchmark(group="figure2cd")
def test_figure2d_team_diameter_vs_task_size(benchmark, config, team_context):
    """Figure 2(d): average team diameter versus task size (LCMD)."""
    result = run_once(benchmark, run_figure2cd, config, team_context)

    sizes = sorted(result.task_sizes)
    for relation in result.relations:
        series = result.series[relation]
        solved_sizes = [k for k in sizes if series[k].solved > 0]
        if len(solved_sizes) >= 2:
            # Diameter grows (weakly) with the task size among solved tasks.
            first, last = solved_sizes[0], solved_sizes[-1]
            assert series[last].average_diameter >= series[first].average_diameter - 0.75
        for k in solved_sizes:
            assert series[k].average_diameter >= 0.0
    benchmark.extra_info["diameter"] = {
        rel: {k: round(result.series[rel][k].average_diameter, 2) for k in sizes}
        for rel in result.relations
    }
