"""Benchmarks for the execution-policy layer's process-pool executor.

The acceptance bar (ISSUE 4): on the Table-2 sampled pair statistics over a
50k-node synthetic signed network, a 4-worker :class:`ProcessPoolExecutor`
must be **>= 3x** faster wall-clock than the serial executor while returning
**bit-identical** statistics.  The identity half runs everywhere (with 2
workers, so it exercises real cross-process dispatch even on small CI boxes);
the speedup half needs real parallel hardware and skips below 4 CPUs — the CI
``bench-parallel`` job provides 4.

Timed entries for the pooled sweep are recorded via pytest-benchmark so the
``bench-parallel.json`` artifact tracks the dispatch overhead release over
release.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.compatibility import (
    CompatibilityEngine,
    make_relation,
    source_sampled_pair_statistics,
)
from repro.datasets import synthetic_signed_network
from repro.exec import ExecutionPolicy, shutdown_pools

#: Size of the Table-2-style benchmark graph (the paper's Epinions/Slashdot class).
NUM_NODES = 50_000

#: Sources sampled by the Table-2 estimator (the default_config scale).
NUM_SOURCES = 150

#: Worker count the acceptance bar is defined at.
BAR_WORKERS = 4

#: The wall-clock bar: pooled sampled stats must beat serial by this factor.
SPEEDUP_BAR = 3.0

SEED = 1234


@pytest.fixture(scope="module")
def big_graph():
    """A 50k-node signed network with its CSR snapshot prebuilt."""
    graph, _ = synthetic_signed_network(
        NUM_NODES, average_degree=6.0, negative_fraction=0.2, seed=42
    )
    assert graph.number_of_nodes() >= NUM_NODES
    graph.csr_view()  # build the shared index outside every timed region
    yield graph
    shutdown_pools()


def _sampled_stats(graph, workers: int):
    """Fresh relation + engine under ``workers``, one Table-2 sampled sweep."""
    policy = ExecutionPolicy(backend="csr", workers=workers)
    relation = make_relation("SPO", graph, policy=policy)
    engine = CompatibilityEngine(relation)
    return source_sampled_pair_statistics(
        relation, NUM_SOURCES, seed=SEED, engine=engine
    )


def _timed(function):
    start = time.perf_counter()
    result = function()
    return time.perf_counter() - start, result


def test_pool_sampled_stats_bit_identical(big_graph):
    """2-worker pooled Table-2 sampled stats == serial, bit for bit.

    Runs everywhere (no CPU-count gate): even time-sliced on one core, the
    pool must merge chunked worker results into exactly the serial answer.
    """
    serial_stats = _sampled_stats(big_graph, workers=0)
    pooled_stats = _sampled_stats(big_graph, workers=2)
    assert pooled_stats == serial_stats


@pytest.mark.skipif(
    (os.cpu_count() or 1) < BAR_WORKERS,
    reason=f"the >= {SPEEDUP_BAR}x bar needs {BAR_WORKERS} real CPUs",
)
def test_pool_sampled_stats_speedup_at_least_3x(big_graph):
    """4-worker pooled sampled stats >= 3x serial at 50k nodes, same numbers."""
    serial_elapsed, serial_stats = _timed(lambda: _sampled_stats(big_graph, 0))
    # Warm the pool (process startup + first snapshot shipment) outside the
    # timed region, mirroring a long-lived serving process.
    _sampled_stats(big_graph, BAR_WORKERS)
    pooled_elapsed, pooled_stats = _timed(
        lambda: _sampled_stats(big_graph, BAR_WORKERS)
    )

    assert pooled_stats == serial_stats  # identical statistics, always

    speedup = serial_elapsed / pooled_elapsed
    print(
        f"\nTable-2 sampled stats on {big_graph.number_of_nodes()} nodes "
        f"({NUM_SOURCES} sources): serial {serial_elapsed:.2f}s, "
        f"{BAR_WORKERS} workers {pooled_elapsed:.2f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_BAR, (
        f"pool speedup {speedup:.1f}x below the {SPEEDUP_BAR}x acceptance bar "
        f"(serial {serial_elapsed:.3f}s vs pooled {pooled_elapsed:.3f}s)"
    )


@pytest.mark.benchmark(group="perf-parallel")
def test_perf_pooled_warm_50k(benchmark, big_graph):
    """Pooled engine warm over 64 sources of the 50k graph (dispatch overhead).

    Tracks publish + chunk + IPC cost on top of the raw kernels; the cache is
    cleared every round so each measurement re-dispatches.
    """
    policy = ExecutionPolicy(backend="csr", workers=2)
    relation = make_relation("SPO", big_graph, policy=policy)
    engine = CompatibilityEngine(relation)
    sources = big_graph.nodes()[:64]

    def warm_cold():
        engine.clear_caches()
        engine.warm(sources)

    benchmark.pedantic(warm_cold, rounds=3, iterations=1)


@pytest.mark.benchmark(group="perf-parallel")
def test_perf_serial_warm_50k(benchmark, big_graph):
    """The serial counterpart of the pooled warm (same 64 sources)."""
    relation = make_relation("SPO", big_graph, backend="csr")
    engine = CompatibilityEngine(relation)
    sources = big_graph.nodes()[:64]

    def warm_cold():
        engine.clear_caches()
        engine.warm(sources)

    benchmark.pedantic(warm_cold, rounds=3, iterations=1)
