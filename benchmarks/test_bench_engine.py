"""Performance benchmarks for the batched CompatibilityEngine.

The acceptance bar for the engine is a >= 4x speedup of *batched per-skill
candidate evaluation* — "which holders of skill s are compatible with the
current team?", the inner question of Algorithm 2 — over the legacy per-pair
``are_compatible`` loop, on a Table-2-scale workload (a ~50k-node synthetic
signed network with a Zipf skill assignment).  Both sides run the same CSR
BFS backend; the measured difference is one lockstep team BFS plus vectorised
pair-rule masks versus one Python-level pair check per (member, candidate).

The multi-source kernel and the SBPH (node, sign)-state search get their own
timed entries so the CI artifact tracks them release over release.
"""

from __future__ import annotations

import time

import pytest

from repro.compatibility import CompatibilityEngine, make_relation
from repro.datasets import synthetic_signed_network
from repro.signed.csr import multi_source_signed_bfs, signed_bfs_csr
from repro.signed.csr import balanced_heuristic_search_csr
from repro.signed.paths import BalancedPathSearch
from repro.skills.generators import assign_skills_zipf

#: Size of the Table-2-style benchmark graph (the paper's Epinions/Slashdot class).
NUM_NODES = 50_000

#: Team size and number of per-skill candidate evaluations in the timed loop.
TEAM_SIZE = 5
NUM_SKILLS_EVALUATED = 40


@pytest.fixture(scope="module")
def workload():
    """A 50k-node signed network with a Zipf skill assignment and one team."""
    graph, _ = synthetic_signed_network(
        NUM_NODES, average_degree=6.0, negative_fraction=0.2, seed=42
    )
    assert graph.number_of_nodes() >= NUM_NODES
    skills = assign_skills_zipf(
        graph.nodes(), num_skills=120, skills_per_user=3.0, seed=43
    )
    graph.csr_view()  # build the shared index outside every timed region
    # A plausible in-progress team: the first seed plus its nearest positive
    # neighbours, mirroring what Algorithm 2 holds mid-run.
    seed_user = graph.nodes()[0]
    team = [seed_user]
    for neighbor in graph.positive_neighbors(seed_user):
        if len(team) >= TEAM_SIZE:
            break
        team.append(neighbor)
    evaluated = [
        skill
        for skill in sorted(skills.skills(), key=str)[:NUM_SKILLS_EVALUATED]
    ]
    pools = {skill: sorted(skills.users_with(skill), key=repr) for skill in evaluated}
    return graph, team, pools


def _best_of(repeats: int, function):
    """Fastest of ``repeats`` timed runs (min is robust to CI load spikes)."""
    best_elapsed, best_result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        elapsed = time.perf_counter() - start
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed, best_result = elapsed, result
    return best_elapsed, best_result


def _evaluate_skills(graph, team, pools, batched: bool):
    """Fresh relation + engine, then one candidate filter per skill."""
    relation = make_relation("SPO", graph, backend="csr")
    engine = CompatibilityEngine(relation, batched=batched)
    return [engine.compatible_from_many(pools[skill], team) for skill in pools]


def test_engine_candidate_evaluation_speedup_at_least_4x(workload):
    """Batched per-skill candidate evaluation >= 4x the per-pair loop, same sets."""
    graph, team, pools = workload

    legacy_elapsed, legacy_sets = _best_of(
        2, lambda: _evaluate_skills(graph, team, pools, batched=False)
    )
    engine_elapsed, engine_sets = _best_of(
        3, lambda: _evaluate_skills(graph, team, pools, batched=True)
    )

    assert engine_sets == legacy_sets  # identical candidate sets, skill by skill

    speedup = legacy_elapsed / engine_elapsed
    candidates = sum(len(pool) for pool in pools.values())
    print(
        f"\nper-skill candidate evaluation on {graph.number_of_nodes()} nodes "
        f"({len(pools)} skills, {candidates} candidates, team of {len(team)}): "
        f"per-pair {legacy_elapsed:.2f}s, engine {engine_elapsed:.2f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 4.0, (
        f"engine speedup {speedup:.1f}x below the 4x acceptance bar "
        f"(per-pair {legacy_elapsed:.3f}s vs engine {engine_elapsed:.3f}s)"
    )


@pytest.mark.benchmark(group="perf-engine-batch")
def test_perf_multi_source_signed_bfs_50k(benchmark, workload):
    """Batched multi-source Algorithm 1 over 32 sources of the 50k graph.

    Above :data:`repro.signed.csr.LOCKSTEP_NODE_THRESHOLD` the kernel
    dispatches to cache-friendly per-source traversals; this entry tracks
    whatever strategy the dispatcher picks at this scale.
    """
    graph, _team, _pools = workload
    csr = graph.csr_view()
    sources = graph.nodes()[:32]
    results = benchmark.pedantic(
        multi_source_signed_bfs, args=(csr, sources), rounds=3, iterations=1
    )
    assert len(results) == len(sources)


@pytest.fixture(scope="module")
def small_graph():
    """A graph inside the lockstep regime (below LOCKSTEP_NODE_THRESHOLD)."""
    graph, _ = synthetic_signed_network(
        2_000, average_degree=6.0, negative_fraction=0.2, seed=7
    )
    graph.csr_view()
    return graph


@pytest.mark.benchmark(group="perf-lockstep")
def test_perf_lockstep_multi_source_small_graph(benchmark, small_graph):
    """Lockstep k x n frontier batch over 64 sources of a 2k-node graph."""
    csr = small_graph.csr_view()
    sources = small_graph.nodes()[:64]
    results = benchmark.pedantic(
        multi_source_signed_bfs, args=(csr, sources), rounds=3, iterations=1
    )
    assert len(results) == len(sources)


@pytest.mark.benchmark(group="perf-lockstep")
def test_perf_source_loop_small_graph(benchmark, small_graph):
    """The per-source loop the lockstep batch replaces (same 64 sources)."""
    csr = small_graph.csr_view()
    sources = small_graph.nodes()[:64]
    results = benchmark.pedantic(
        lambda: [signed_bfs_csr(csr, source) for source in sources],
        rounds=3,
        iterations=1,
    )
    assert len(results) == len(sources)


@pytest.mark.benchmark(group="perf-sbph-csr")
def test_perf_sbph_search_csr_vs_dict(benchmark, workload):
    """SBPH (node, sign)-state CSR search from one source, checked against dict."""
    graph, _team, _pools = workload
    csr = graph.csr_view()
    source = graph.nodes()[0]
    result = benchmark.pedantic(
        balanced_heuristic_search_csr, args=(csr, source), rounds=3, iterations=1
    )
    expected = BalancedPathSearch(graph).search_heuristic(source)
    assert result.positive_lengths == expected.positive_lengths
    assert result.negative_lengths == expected.negative_lengths
