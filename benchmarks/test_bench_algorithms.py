"""Performance benchmarks (P1): scaling of the core algorithmic primitives.

Unlike the table/figure benchmarks, these measure *time* of the primitives the
paper's complexity discussion is about — the signed BFS of Algorithm 1 is
linear, the SBPH heuristic is polynomial, and the exact SBP search is
exponential (and therefore budgeted).
"""

from __future__ import annotations

import pytest

from repro.compatibility import make_relation
from repro.datasets import synthetic_signed_network
from repro.signed.paths import BalancedPathSearch, signed_bfs
from repro.skills import Task
from repro.skills.generators import assign_skills_zipf
from repro.teams import TeamFormationProblem, run_algorithm


@pytest.fixture(scope="module", params=[300, 1200], ids=["n=300", "n=1200"])
def sized_graph(request):
    graph, _ = synthetic_signed_network(
        request.param, average_degree=8.0, negative_fraction=0.2, seed=request.param
    )
    return graph


@pytest.mark.benchmark(group="perf-signed-bfs")
def test_perf_signed_bfs(benchmark, sized_graph):
    """Algorithm 1 (signed shortest-path counting) from a single source."""
    source = sized_graph.nodes()[0]
    result = benchmark(signed_bfs, sized_graph, source)
    assert result.counts(source) == (1, 0)
    assert len(result.lengths) == sized_graph.number_of_nodes()


@pytest.mark.benchmark(group="perf-sbph")
def test_perf_sbph_heuristic_search(benchmark, sized_graph):
    """The SBPH prefix-property balanced-path search from a single source."""
    search = BalancedPathSearch(sized_graph)
    source = sized_graph.nodes()[0]
    result = benchmark.pedantic(
        search.search_heuristic, args=(source,), rounds=3, iterations=1
    )
    assert source in result.positive_lengths


@pytest.mark.benchmark(group="perf-sbp-exact")
def test_perf_sbp_exact_budgeted(benchmark):
    """The budgeted exact SBP search on a small graph (exponential algorithm)."""
    graph, _ = synthetic_signed_network(
        120, average_degree=3.0, negative_fraction=0.25, topology="erdos_renyi", seed=7
    )
    search = BalancedPathSearch(graph, max_expansions=20_000)
    source = graph.nodes()[0]
    result = benchmark.pedantic(search.search_exact, args=(source,), rounds=3, iterations=1)
    assert result.positive_lengths


@pytest.mark.benchmark(group="perf-team-formation")
@pytest.mark.parametrize("relation_name", ["SPO", "SBPH", "NNE"])
def test_perf_single_team_formation(benchmark, relation_name):
    """One LCMD run (task size 5) under each relation family."""
    graph, _ = synthetic_signed_network(
        600, average_degree=10.0, negative_fraction=0.18, seed=23
    )
    skills = assign_skills_zipf(graph.nodes(), num_skills=150, skills_per_user=4.0, seed=23)
    relation = make_relation(relation_name, graph)
    task = Task.random(skills, 5, seed=5)
    problem = TeamFormationProblem(graph, skills, relation, task)

    result = benchmark.pedantic(
        run_algorithm,
        args=("LCMD", problem),
        kwargs={"max_seeds": 10, "seed": 1},
        rounds=3,
        iterations=1,
    )
    assert result.algorithm == "LCMD"
