"""Benchmark T2 — regenerate Table 2 (comparison of compatibility relations)."""

from __future__ import annotations

import pytest

from repro.experiments import run_table2

from conftest import run_once


@pytest.mark.benchmark(group="table2")
def test_table2_compatibility_relations(benchmark, config, contexts):
    """Table 2: % compatible users, % compatible skills, avg distance per relation."""
    result = run_once(benchmark, run_table2, config, contexts)

    print("\n" + result.as_text())
    for dataset_result in result.datasets:
        cells = dataset_result.cells

        def pct(name):
            cell = cells.get(name)
            return None if cell is None else cell.compatible_users_pct

        # Paper shape: compatible-pair percentage grows as the relation relaxes,
        # and SBPH is close to NNE ("for all pairs not directly connected with a
        # negative edge, there exists a positive structurally balanced path").
        assert pct("SPA") <= pct("SPM") + 1e-9
        assert pct("SPM") <= pct("SPO") + 1e-9
        assert pct("SPO") <= pct("NNE") + 1e-9
        assert pct("SBPH") >= pct("SPO") - 10.0
        assert pct("NNE") - pct("SBPH") < 20.0

        # Distance shape: relaxing from SPA towards SBPH does not shrink the
        # average distance, and NNE (which may use negative paths) drops back.
        spa, sbph, nne = (
            cells["SPA"].average_distance,
            cells["SBPH"].average_distance,
            cells["NNE"].average_distance,
        )
        assert sbph >= spa - 0.5
        assert nne <= sbph + 0.5

        benchmark.extra_info[f"{dataset_result.dataset}_users_pct"] = {
            name: None if cell is None else round(cell.compatible_users_pct, 2)
            for name, cell in cells.items()
        }
        if dataset_result.sbp_sbph_agreement is not None:
            benchmark.extra_info[f"{dataset_result.dataset}_sbp_sbph_agreement"] = round(
                100.0 * dataset_result.sbp_sbph_agreement, 2
            )
