"""Extension benchmarks: the future-work tasks the paper's conclusions propose.

* **E1 — sign prediction**: compare the always-positive baseline, balanced
  triangle completion, shortest-path-sign (Algorithm 1) and the
  compatibility-based predictor on held-out edges.
* **E2 — clustering**: recover the planted factions of the synthetic datasets
  with the greedy weak-balance partitioner.
* **E3 — top-k teams**: produce alternative teams and check they trade cost
  for diversity.
"""

from __future__ import annotations

import pytest

from repro.compatibility import make_relation
from repro.signed import (
    AlwaysPositivePredictor,
    CompatibilityPredictor,
    ShortestPathSignPredictor,
    TriangleVotePredictor,
    compare_predictors,
    greedy_balance_partition,
    partition_agreement,
)
from repro.teams import (
    LeastCompatibleSkillFirst,
    MinimumDistanceUser,
    TeamFormationProblem,
    diverse_top_k_teams,
    team_is_compatible,
)

from conftest import run_once


@pytest.mark.benchmark(group="extensions")
def test_extension_sign_prediction(benchmark, contexts):
    """E1: accuracy of sign predictors on held-out edges of the Slashdot stand-in."""
    graph = contexts["slashdot"].dataset.graph

    def run_comparison():
        return compare_predictors(
            graph,
            [
                lambda g: AlwaysPositivePredictor(g),
                lambda g: TriangleVotePredictor(g),
                lambda g: ShortestPathSignPredictor(g),
                lambda g: CompatibilityPredictor(g, lambda gg: make_relation("SPM", gg)),
            ],
            test_fraction=0.15,
            max_test_edges=200,
            seed=5,
        )

    reports = run_once(benchmark, run_comparison)

    print("\nE1 sign prediction accuracy:")
    for report in reports:
        print(
            f"  {report.predictor:<22} accuracy={report.accuracy:.2f} "
            f"neg-recall={report.negative_recall:.2f}"
        )
        benchmark.extra_info[report.predictor] = round(report.accuracy, 3)
    by_name = {report.predictor: report for report in reports}
    # Structure-aware predictors recover at least some negative edges, which
    # the majority-class baseline by definition cannot.
    assert by_name["always-positive"].negative_recall == 0.0
    structural = [r for r in reports if r.predictor != "always-positive"]
    assert max(r.negative_recall for r in structural) > 0.0


@pytest.mark.benchmark(group="extensions")
def test_extension_faction_recovery(benchmark):
    """E2: the weak-balance partitioner recovers planted factions.

    The dataset stand-ins only bias *negative* edges towards the faction cut
    (many cross-faction edges stay positive), so their factions are not a
    balance optimum; the clustering ablation therefore uses the
    fully-balance-consistent generator with a small amount of sign noise.
    """
    from repro.signed.generators import planted_factions_graph

    graph, factions = planted_factions_graph(
        500, average_degree=8.0, num_factions=2, sign_noise=0.08, seed=29
    )

    def recover():
        partition, quality = greedy_balance_partition(
            graph, num_clusters=2, restarts=2, seed=3
        )
        agreement = partition_agreement(partition, factions)
        return quality, agreement

    quality, agreement = run_once(benchmark, recover)

    print(f"\nE2 faction recovery: frustration={quality.frustration_ratio:.3f}, "
          f"agreement with planted factions={agreement:.3f}")
    benchmark.extra_info["frustration_ratio"] = round(quality.frustration_ratio, 3)
    benchmark.extra_info["agreement"] = round(agreement, 3)
    # With ~8% sign noise the partitioner must explain the large majority of
    # edges and correlate strongly with the planted split.
    assert quality.frustration_ratio < 0.20
    assert agreement > 0.7


@pytest.mark.benchmark(group="extensions")
def test_extension_top_k_teams(benchmark, config, team_context, team_tasks):
    """E3: alternative (top-k, diverse) teams for the Figure-2 workload."""
    relation_context = team_context.relation_context("SPO")

    def run_topk():
        produced = []
        for task in team_tasks[:5]:
            problem = TeamFormationProblem(
                team_context.dataset.graph,
                team_context.dataset.skills,
                relation_context.relation,
                task,
                oracle=relation_context.oracle,
                skill_index=relation_context.skill_index,
            )
            teams = diverse_top_k_teams(
                problem,
                LeastCompatibleSkillFirst(),
                MinimumDistanceUser(),
                k=3,
                max_overlap=0.6,
                max_seeds=config.max_seeds,
            )
            produced.append((problem, teams))
        return produced

    produced = run_once(benchmark, run_topk)

    alternatives = 0
    for problem, teams in produced:
        costs = [cost for _, cost in teams]
        assert costs == sorted(costs)
        for team, _cost in teams:
            assert team_is_compatible(team, problem.relation)
        alternatives += len(teams)
    benchmark.extra_info["alternatives_produced"] = alternatives
    # Some tasks may be unsolvable (no compatible covering team); the ones that
    # are must yield at least one alternative in total.
    assert alternatives >= 1
