"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper on the
*fast* experiment configuration (miniature synthetic datasets) so that a full
``pytest benchmarks/ --benchmark-only`` run finishes in a few minutes.  To
regenerate the numbers reported in ``EXPERIMENTS.md`` at full scale, run
``python -m repro.experiments`` instead (same code, default configuration).
"""

from __future__ import annotations

import pytest

from repro.experiments import build_all_dataset_contexts, fast_config


@pytest.fixture(scope="session")
def config():
    """The miniature experiment configuration used by all benchmarks."""
    return fast_config()


@pytest.fixture(scope="session")
def contexts(config):
    """Datasets generated once and shared by every benchmark."""
    return build_all_dataset_contexts(config)


@pytest.fixture(scope="session")
def team_context(config, contexts):
    """The dataset used by the team-formation benchmarks (Epinions stand-in)."""
    return contexts[config.team_dataset]


@pytest.fixture(scope="session")
def team_tasks(config, team_context):
    """The shared batch of random tasks (k = task_size) for Table 3 / Figure 2(a,b)."""
    return team_context.generate_tasks(
        size=config.task_size, count=config.num_tasks, seed=config.workload_seed
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiment reproductions are seconds-long deterministic computations,
    so a single round is both representative and keeps the harness fast.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
