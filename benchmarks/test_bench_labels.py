"""Benchmarks for the distance-label index (:mod:`repro.signed.labels`).

The acceptance bars (ISSUE 7), all on the 50k-node synthetic signed network:

* **Sublinear serving**: once built, the indexed ``batch_distance_to_set``
  must be >= 5x faster than the cold batched-BFS path (the oracle's BFS
  cache cleared per query, as on a freshly loaded snapshot) for a
  256-candidate x 3-member query — measured ~25x, and the gap *grows* as the
  candidate set shrinks (~80x at 64 candidates) because the BFS path pays a
  fixed full-graph traversal per team member while the label path only
  touches the candidates' labels.  Build amortisation (queries until the
  build pays for itself) is reported alongside.
* **Exactness at scale**: hub-label answers are bit-identical to the BFS
  kernel across full 50k-target rows, and landmark sketches never undercut
  the true distance while every ``exact``-flagged entry matches it.
* **Pooled build**: landmark rows built through the process pool
  (``build_labels`` kernel, result arena) are bit-identical to the serial
  build (self-skips below 2 CPUs).

The exact 2-hop build at this scale is minutes of one-time work — that is
the trade the index makes, and exactly why it is delta-patched under churn
and persisted in the ``.store`` snapshot instead of rebuilt per process.
The CI ``bench-oracle`` job runs this file and uploads ``bench-labels.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.compatibility import DistanceOracle, make_relation
from repro.datasets import synthetic_signed_network
from repro.exec import ExecutionPolicy, executor_for, shutdown_pools

np = pytest.importorskip("numpy")

from repro.signed.csr import (  # noqa: E402  (needs numpy)
    UNREACHABLE,
    shortest_path_lengths_dense_batch,
)
from repro.signed.labels import (  # noqa: E402
    build_label_index,
    labels_equal,
)

#: Size of the benchmark graph (the paper's Epinions/Slashdot class).
NUM_NODES = 50_000

#: The gated query shape: candidates per sweep, members per team.
GATE_CANDIDATES = 256
TEAM_SIZE = 3

#: Indexed over cold batched-BFS at the gate shape (measured ~25x).
SPEEDUP_BAR = 5.0

#: Budget generous enough for exact labels at 50k nodes (~38 MB measured).
LABEL_BUDGET = 256 * 2**20

SEED = 42


@pytest.fixture(scope="module")
def big_graph():
    graph, _ = synthetic_signed_network(
        NUM_NODES, average_degree=6.0, negative_fraction=0.2, seed=SEED
    )
    yield graph
    shutdown_pools()


@pytest.fixture(scope="module")
def big_csr(big_graph):
    return big_graph.csr_view()


@pytest.fixture(scope="module")
def exact_index(big_csr):
    """The exact hub-label index, built once and shared (it is the expensive
    artefact every test here measures against)."""
    start = time.perf_counter()
    index = build_label_index(big_csr, mode="auto", budget_bytes=LABEL_BUDGET)
    build_seconds = time.perf_counter() - start
    assert index.mode == "exact", "50k nodes must resolve to exact labels"
    return index, build_seconds


def _timed(function, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_indexed_batch_beats_cold_bfs(big_graph, exact_index, benchmark):
    """Indexed batch_distance_to_set >= 5x over the cold batched-BFS path."""
    index, build_seconds = exact_index
    nodes = big_graph.nodes()
    team = nodes[:TEAM_SIZE]

    plain = DistanceOracle(make_relation("NNE", big_graph))
    indexed = DistanceOracle(
        make_relation(
            "NNE",
            big_graph,
            policy=ExecutionPolicy(
                distance_index="labels", label_budget_bytes=LABEL_BUDGET
            ),
        )
    )
    indexed.attach_index(index)

    def cold_bfs(candidates):
        plain.clear_cache()  # every query pays the team's BFS maps
        return plain.batch_distance_to_set(candidates, team)

    curve = {}
    for num_candidates in (64, GATE_CANDIDATES, 1024):
        candidates = nodes[1000 : 1000 + num_candidates]
        cold_seconds, reference = _timed(lambda: cold_bfs(candidates))
        indexed_seconds, served = _timed(
            lambda: indexed.batch_distance_to_set(candidates, team)
        )
        assert served == reference  # bit-identical floats, inf included
        curve[num_candidates] = (cold_seconds, indexed_seconds)

    cold_seconds, indexed_seconds = curve[GATE_CANDIDATES]
    speedup = cold_seconds / indexed_seconds
    saved_per_query = cold_seconds - indexed_seconds
    amortisation = build_seconds / saved_per_query if saved_per_query > 0 else float("inf")

    benchmark.extra_info["build_seconds"] = build_seconds
    benchmark.extra_info["index_nbytes"] = index.nbytes
    benchmark.extra_info["index_entries"] = index.num_entries
    benchmark.extra_info["queries_to_amortise_build"] = amortisation
    for num_candidates, (cold, fast) in curve.items():
        benchmark.extra_info[f"cold_bfs_seconds_{num_candidates}"] = cold
        benchmark.extra_info[f"indexed_seconds_{num_candidates}"] = fast
        benchmark.extra_info[f"speedup_{num_candidates}"] = cold / fast
    gate_candidates = nodes[1000 : 1000 + GATE_CANDIDATES]
    benchmark.pedantic(
        lambda: indexed.batch_distance_to_set(gate_candidates, team),
        rounds=3,
        iterations=1,
    )
    print(
        f"\n[labels] build {build_seconds:.1f}s "
        f"({index.num_entries} entries, {index.nbytes / 2**20:.1f} MB); "
        f"{GATE_CANDIDATES}-candidate sweep: cold BFS {cold_seconds * 1000:.2f}ms, "
        f"indexed {indexed_seconds * 1000:.3f}ms -> {speedup:.1f}x "
        f"(amortised after ~{amortisation:.0f} queries)"
    )
    for num_candidates, (cold, fast) in sorted(curve.items()):
        print(
            f"[labels]   {num_candidates:5d} candidates: "
            f"{cold * 1000:8.2f}ms cold vs {fast * 1000:7.3f}ms indexed "
            f"({cold / fast:.1f}x)"
        )
    assert speedup >= SPEEDUP_BAR, (
        f"indexed batch_distance_to_set only {speedup:.1f}x over cold BFS "
        f"(bar {SPEEDUP_BAR}x)"
    )


def test_exact_labels_bit_identical_to_bfs_at_scale(big_csr, exact_index):
    """Full 50k-target rows from the hub labels == the BFS kernel's rows."""
    index, _build_seconds = exact_index
    rng = np.random.default_rng(SEED)
    sources = sorted(int(s) for s in rng.choice(NUM_NODES, size=8, replace=False))
    reference = shortest_path_lengths_dense_batch(big_csr, sources)
    targets = np.arange(NUM_NODES, dtype=np.int64)
    for row, source in enumerate(sources):
        assert np.array_equal(index.batch_query_from(source, targets), reference[row])


def test_landmark_bounds_sound_at_scale(big_csr, benchmark):
    """Landmark sketches: cheap to build, upper bounds everywhere, and every
    exact-flagged entry equals the true distance."""
    build_seconds, index = _timed(
        lambda: build_label_index(big_csr, mode="landmark"), rounds=1
    )
    rng = np.random.default_rng(SEED + 1)
    sources = [int(s) for s in rng.choice(NUM_NODES, size=4, replace=False)]
    reference = shortest_path_lengths_dense_batch(big_csr, sources)
    targets = np.arange(NUM_NODES, dtype=np.int64)
    exact_fraction = []
    for row, source in enumerate(sources):
        upper, exact = index.batch_bounds_from(source, targets)
        true = reference[row]
        reachable = true != UNREACHABLE
        assert (upper[reachable] >= true[reachable]).all()
        assert (upper[~reachable] == UNREACHABLE).all()
        assert np.array_equal(upper[exact], true[exact])
        exact_fraction.append(float(exact.mean()))
    benchmark.extra_info["landmark_build_seconds"] = build_seconds
    benchmark.extra_info["landmark_num_hubs"] = index.num_hubs
    benchmark.extra_info["landmark_exact_fraction"] = sum(exact_fraction) / len(
        exact_fraction
    )
    benchmark.pedantic(
        lambda: index.batch_bounds_from(sources[0], targets), rounds=3, iterations=1
    )
    print(
        f"\n[landmark] build {build_seconds:.2f}s ({index.num_hubs} hubs), "
        f"provably-exact coverage {100 * sum(exact_fraction) / len(exact_fraction):.1f}% "
        "of probed pairs"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="pooled build_labels comparison needs 2 CPUs",
)
def test_pool_built_landmark_index_bit_identical(big_csr, benchmark):
    """Landmark rows via the build_labels pool kernel == the serial build."""
    serial_seconds, serial = _timed(
        lambda: build_label_index(big_csr, mode="landmark"), rounds=1
    )
    pooled_seconds, pooled = _timed(
        lambda: build_label_index(
            big_csr,
            mode="landmark",
            executor=executor_for(ExecutionPolicy(workers=2)),
        ),
        rounds=1,
    )
    benchmark.extra_info["serial_build_seconds"] = serial_seconds
    benchmark.extra_info["pooled_build_seconds"] = pooled_seconds
    benchmark.pedantic(lambda: labels_equal(serial, pooled), rounds=1, iterations=1)
    print(
        f"\n[landmark] serial build {serial_seconds:.2f}s, "
        f"2-worker pooled {pooled_seconds:.2f}s (bit-identical)"
    )
    assert labels_equal(serial, pooled)
