"""Benchmarks for CSR-native streaming churn (ISSUE 9).

The acceptance bars:

* **Dict-free churn rounds**: on a 200k-node / ~1M-edge graph, one churn
  round applied to the :class:`~repro.signed.lazy.CSRBackedSignedGraph`
  facade (mutations land in overlay rows + the delta log, the next
  ``csr_view()`` folds them vectorised) must be >= 3x faster than the
  dict-materialising baseline — rebuilding the adjacency dicts from the
  planes and churning those, which is what every streaming round paid before
  the facade learned to mutate dict-free.  Both paths must produce
  bit-identical CSR planes.

* **Connected-graph label refresh**: with <= 0.5% of edges churned by sign
  flips (the canonical signed-network streaming event — distances cannot
  move), ``refresh_label_index`` must be >= 5x faster than a full
  ``build_label_index`` rebuild on a *connected* graph, where the
  component-local patch path can never help (the affected sweep always
  covers everything).  The refresh must return "patched" and stay
  bit-identical to the rebuild.  Topology churn on an expander legitimately
  rebuilds — the resweep's bounded bail-out keeps that detour cheap, which
  the benchmark reports (and loosely bounds) as refresh/rebuild overhead.

The CI ``bench-churn`` job runs this file and uploads ``bench-churn.json``.
"""

from __future__ import annotations

import random
import time

import pytest

np = pytest.importorskip("numpy")

from repro.datasets import synthetic_csr_network
from repro.experiments.streaming import apply_edge_churn
from repro.signed import as_signed_graph
from repro.signed.labels import build_label_index, labels_equal, refresh_label_index

#: Churn-round benchmark graph (nodes; ~NUM_NODES*5 undirected edges).
NUM_NODES = 200_000
AVERAGE_DEGREE = 10.0

#: Events per churn round (~0.2% of the edges).
CHURN_EVENTS = 2_000

#: CSR-native round over dict-materialising round, wall clock.
CHURN_SPEEDUP_BAR = 3.0

#: Label-refresh benchmark graph: connected, small enough for a CI rebuild.
LABEL_NODES = 3_000
LABEL_DEGREE = 6.0

#: Flip-only churn fraction for the refresh gate.
FLIP_FRACTION = 0.005

#: refresh_label_index over build_label_index on flip-only churn.
REFRESH_SPEEDUP_BAR = 5.0

#: Refresh overhead bound when topology churn forces a rebuild anyway: the
#: bounded resweep must bail fast, not burn a second build's worth of work.
BAILOUT_OVERHEAD_BAR = 2.0

SEED = 42


def _native_round(csr):
    """One dict-free churn round: facade mutation + vectorised collapse."""
    facade = as_signed_graph(csr)
    counts = apply_edge_churn(facade, CHURN_EVENTS, random.Random(SEED + 1))
    view = facade.csr_view()
    assert not facade.materialised
    return counts, view


def _dict_round(csr):
    """The pre-facade baseline: materialise dicts, churn them, re-index."""
    graph = csr.to_signed_graph()
    counts = apply_edge_churn(graph, CHURN_EVENTS, random.Random(SEED + 1))
    return counts, graph.csr_view()


def test_csr_native_churn_beats_dict_materialising(benchmark):
    """A facade churn round >= 3x over the dict-materialising baseline."""
    csr, _ = synthetic_csr_network(
        NUM_NODES, average_degree=AVERAGE_DEGREE, seed=SEED
    )

    start = time.perf_counter()
    native_counts, native_view = _native_round(csr)
    native_seconds = time.perf_counter() - start

    start = time.perf_counter()
    dict_counts, dict_view = _dict_round(csr)
    dict_seconds = time.perf_counter() - start

    speedup = dict_seconds / native_seconds
    benchmark.extra_info["num_edges"] = csr.number_of_edges()
    benchmark.extra_info["churn_events"] = CHURN_EVENTS
    benchmark.extra_info["native_round_seconds"] = native_seconds
    benchmark.extra_info["dict_round_seconds"] = dict_seconds
    benchmark.extra_info["churn_speedup"] = speedup
    benchmark.pedantic(lambda: _native_round(csr), rounds=3, iterations=1)
    print(
        f"\n[churn] {NUM_NODES} nodes / {csr.number_of_edges()} edges, "
        f"{CHURN_EVENTS} events: native {native_seconds:.2f}s, "
        f"dict {dict_seconds:.2f}s -> {speedup:.1f}x"
    )

    # Same events, bit-identical planes — speed without drift.
    assert native_counts == dict_counts
    assert native_view._nodes == dict_view._nodes
    assert np.array_equal(native_view.indptr, dict_view.indptr)
    assert np.array_equal(native_view.indices, dict_view.indices)
    assert np.array_equal(native_view.signs, dict_view.signs)
    assert speedup >= CHURN_SPEEDUP_BAR, (
        f"CSR-native churn only {speedup:.2f}x over the dict-materialising "
        f"round (bar {CHURN_SPEEDUP_BAR}x)"
    )


def _flip_edges(graph, csr, count, rng):
    """Flip ``count`` random edge signs in place (no topology events)."""
    src = np.repeat(
        np.arange(csr.number_of_nodes(), dtype=np.int64), np.diff(csr.indptr)
    )
    once = np.flatnonzero(src < csr.indices)
    picks = rng.choice(once.size, size=count, replace=False)
    nodes = csr._nodes
    for entry in once[picks].tolist():
        u = nodes[int(src[entry])]
        v = nodes[int(csr.indices[entry])]
        graph.set_sign(u, v, -graph.sign(u, v))
    return count


def test_connected_refresh_beats_rebuild_on_flip_churn(benchmark):
    """Flip-only refresh >= 5x over rebuild; topology bail-out stays cheap."""
    base, _ = synthetic_csr_network(
        LABEL_NODES, average_degree=LABEL_DEGREE, seed=SEED
    )
    graph = base.to_signed_graph()
    csr = graph.csr_view()
    num_edges = csr.number_of_edges()
    flips = max(1, int(num_edges * FLIP_FRACTION))

    start = time.perf_counter()
    index = build_label_index(csr, mode="exact")
    build_seconds = time.perf_counter() - start

    rng = np.random.default_rng(SEED)
    _flip_edges(graph, csr, flips, rng)
    assert graph.affected_nodes_since(index.generation) is None  # connected

    start = time.perf_counter()
    refreshed, how = refresh_label_index(index, graph)
    refresh_seconds = time.perf_counter() - start

    start = time.perf_counter()
    rebuilt = build_label_index(graph.csr_view(), mode="exact")
    rebuild_seconds = time.perf_counter() - start

    speedup = rebuild_seconds / max(refresh_seconds, 1e-9)
    benchmark.extra_info["label_nodes"] = LABEL_NODES
    benchmark.extra_info["num_edges"] = num_edges
    benchmark.extra_info["flips"] = flips
    benchmark.extra_info["build_seconds"] = build_seconds
    benchmark.extra_info["refresh_seconds"] = refresh_seconds
    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["refresh_speedup"] = speedup
    print(
        f"\n[refresh] {LABEL_NODES} nodes / {num_edges} edges, {flips} flips "
        f"({100 * flips / num_edges:.2f}%): refresh {refresh_seconds * 1000:.2f}ms "
        f"({how}), rebuild {rebuild_seconds:.2f}s -> {speedup:.0f}x"
    )

    assert how == "patched"
    assert labels_equal(refreshed, rebuilt)
    assert speedup >= REFRESH_SPEEDUP_BAR, (
        f"connected-graph refresh only {speedup:.2f}x over rebuild "
        f"(bar {REFRESH_SPEEDUP_BAR}x)"
    )

    # Topology churn on an expander rebuilds — but the bounded resweep must
    # recognise that quickly instead of sweeping to exhaustion first.
    nodes = graph.nodes()
    removed = 0
    for offset in range(LABEL_NODES):
        u = nodes[int(rng.integers(LABEL_NODES))]
        neighbours = list(graph.neighbors(u))
        if neighbours and graph.degree(u) > 1:
            graph.remove_edge(u, neighbours[0])
            removed += 1
        if removed >= 3:
            break

    start = time.perf_counter()
    refreshed2, how2 = refresh_label_index(refreshed, graph)
    refresh2_seconds = time.perf_counter() - start
    overhead = refresh2_seconds / max(rebuild_seconds, 1e-9)
    benchmark.extra_info["bailout_refresh_seconds"] = refresh2_seconds
    benchmark.extra_info["bailout_overhead"] = overhead
    benchmark.pedantic(
        lambda: refresh_label_index(index, graph)[1], rounds=1, iterations=1
    )
    print(
        f"[refresh] {removed} removals: refresh {refresh2_seconds:.2f}s "
        f"({how2}) vs rebuild {rebuild_seconds:.2f}s -> {overhead:.2f}x overhead"
    )
    assert labels_equal(refreshed2, build_label_index(graph.csr_view(), mode="exact"))
    assert overhead <= BAILOUT_OVERHEAD_BAR, (
        f"refresh fallback cost {overhead:.2f}x a full rebuild "
        f"(bar {BAILOUT_OVERHEAD_BAR}x)"
    )
