"""Benchmarks for the CSR-first ingestion path (ISSUE 8).

The acceptance bars, on a 200k-node / ~1M-edge synthetic edge list:

* **Parse speed**: the vectorised :func:`repro.signed.ingest.parse_edge_list_csr`
  must be >= 3x faster than the reference dict pipeline (read_edge_list +
  CSR indexing).  Measured headroom is ~10-20x; the bar guards the mechanism.
* **Peak memory**: parsing straight into CSR planes must stay <= 0.5x of the
  dict pipeline's peak RSS.  Each parse runs in a freshly forked child
  (:func:`repro.utils.timing.measure_peak_rss`), with the fork-time baseline
  subtracted, so the comparison isolates the parsers themselves.

Both parses also have to agree on the node and edge counts (the full
bit-identity contract is pinned by ``tests/test_ingest.py``; repeating it
here would just re-run the slow dict parse a third time).

Set ``REPRO_BENCH_INGEST_1M=1`` to also run the million-node ingest: 1M nodes
/ ~10M edges parsed CSR-only, with the wall-clock and peak RSS reported and a
16 GB budget asserted.  The CI ``bench-ingest`` job runs this file (without
the 1M opt-in) and uploads ``bench-ingest.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets import synthetic_csr_network
from repro.signed.csr import CSRSignedGraph
from repro.signed.io import read_edge_list
from repro.signed.ingest import parse_edge_list_csr
from repro.utils.timing import measure_peak_rss

np = pytest.importorskip("numpy")

#: Size of the gated benchmark graph (nodes; ~NUM_NODES*5 undirected edges).
NUM_NODES = 200_000

AVERAGE_DEGREE = 10.0

#: Vectorised parse over dict parse, wall clock (measured ~10-20x).
PARSE_SPEEDUP_BAR = 3.0

#: Vectorised parse peak RSS over dict parse peak RSS (measured ~0.1-0.3x).
PEAK_RSS_BAR = 0.5

#: Nodes in the opt-in run, and its memory budget.
MILLION = 1_000_000
MILLION_BUDGET_BYTES = 16 * 1024**3

SEED = 42


def _write_edge_file(path, num_nodes):
    """A SNAP-style ``u v sign`` file for a synthetic CSR graph, streamed out
    without ever holding the text in memory."""
    csr, _ = synthetic_csr_network(
        num_nodes, average_degree=AVERAGE_DEGREE, seed=SEED
    )
    degrees = np.diff(csr.indptr).astype(np.int64)
    src = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    once = src < csr.indices  # each undirected edge once
    u = src[once].tolist()
    v = csr.indices[once].tolist()
    s = csr.signs[once].tolist()
    with open(path, "w", encoding="ascii") as handle:
        handle.writelines(f"{a} {b} {c}\n" for a, b, c in zip(u, v, s))
    return len(u)


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("ingest-bench") / "edges.txt"
    num_edges = _write_edge_file(path, NUM_NODES)
    return str(path), num_edges


def _csr_parse(path):
    csr = parse_edge_list_csr(path)
    assert csr is not None
    return csr.number_of_nodes(), csr.number_of_edges()


def _dict_parse(path):
    graph = read_edge_list(path)
    csr = CSRSignedGraph.from_signed_graph(graph)
    return csr.number_of_nodes(), csr.number_of_edges()


def test_csr_parse_beats_dict_parse(edge_file, benchmark):
    """Vectorised parse >= 3x faster and <= 0.5x peak RSS vs the dict path."""
    path, num_edges = edge_file
    # Each parse runs in a forked child so its ru_maxrss high-water mark is
    # its own; the fork-time baseline (this process' RSS) is subtracted.
    _, baseline, _ = measure_peak_rss(int)
    csr_counts, csr_peak, csr_seconds = measure_peak_rss(_csr_parse, path)
    dict_counts, dict_peak, dict_seconds = measure_peak_rss(_dict_parse, path)

    csr_net = max(1, csr_peak - baseline)
    dict_net = max(1, dict_peak - baseline)
    speedup = dict_seconds / csr_seconds
    rss_ratio = csr_net / dict_net

    benchmark.extra_info["num_edges"] = num_edges
    benchmark.extra_info["csr_parse_seconds"] = csr_seconds
    benchmark.extra_info["dict_parse_seconds"] = dict_seconds
    benchmark.extra_info["parse_speedup"] = speedup
    benchmark.extra_info["csr_peak_rss_bytes"] = csr_net
    benchmark.extra_info["dict_peak_rss_bytes"] = dict_net
    benchmark.extra_info["peak_rss_ratio"] = rss_ratio
    benchmark.pedantic(lambda: _csr_parse(path), rounds=3, iterations=1)
    print(
        f"\n[ingest] {NUM_NODES} nodes / {num_edges} edges: "
        f"csr {csr_seconds:.2f}s / {csr_net / 2**20:.0f} MiB, "
        f"dict {dict_seconds:.2f}s / {dict_net / 2**20:.0f} MiB "
        f"-> {speedup:.1f}x faster, {rss_ratio:.2f}x the memory"
    )

    assert csr_counts == dict_counts  # same node and edge totals
    assert speedup >= PARSE_SPEEDUP_BAR, (
        f"vectorised parse only {speedup:.2f}x over the dict parser "
        f"(bar {PARSE_SPEEDUP_BAR}x)"
    )
    assert rss_ratio <= PEAK_RSS_BAR, (
        f"vectorised parse used {rss_ratio:.2f}x the dict parser's peak RSS "
        f"(bar {PEAK_RSS_BAR}x)"
    )


def test_loader_csr_only_hit_is_mmap_cheap(edge_file, tmp_path, benchmark):
    """A ``csr_only`` cache hit must skip the parse entirely (mmap load)."""
    from repro.datasets import cache_stats, reset_cache_stats
    from repro.datasets.loaders import load_snap_dataset

    path, _ = edge_file
    cache = tmp_path / "cache"
    cache.mkdir()
    kwargs = dict(
        restrict_to_lcc=False, seed=7, snapshot_cache_dir=cache, csr_only=True
    )
    reset_cache_stats()
    start = time.perf_counter()
    cold = load_snap_dataset("bench", path, **kwargs)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    hit = load_snap_dataset("bench", path, **kwargs)
    hit_seconds = time.perf_counter() - start

    benchmark.extra_info["csr_only_cold_seconds"] = cold_seconds
    benchmark.extra_info["csr_only_hit_seconds"] = hit_seconds
    benchmark.pedantic(
        lambda: load_snap_dataset("bench", path, **kwargs), rounds=3, iterations=1
    )
    print(
        f"\n[loader] csr_only cold {cold_seconds:.2f}s, hit {hit_seconds:.3f}s "
        f"({cold_seconds / hit_seconds:.0f}x)"
    )
    # The gate is structural (no re-parse, no dict graph): both loads pay the
    # same Zipf skill derivation, so wall-clock deltas are contention noise.
    assert cache_stats()["reparses"] == 0
    assert not cold.graph.materialised and not hit.graph.materialised
    assert hit.graph.number_of_edges() == cold.graph.number_of_edges()


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_INGEST_1M") != "1",
    reason="set REPRO_BENCH_INGEST_1M=1 for the million-node ingest run",
)
def test_million_node_ingest_fits_the_budget(tmp_path_factory, benchmark):
    """Opt-in: 1M nodes / ~10M edges, CSR-only, within the 16 GB budget."""
    path = tmp_path_factory.mktemp("ingest-1m") / "edges.txt"
    write_start = time.perf_counter()
    num_edges = _write_edge_file(path, MILLION)
    write_seconds = time.perf_counter() - write_start

    _, baseline, _ = measure_peak_rss(int)
    counts, peak, seconds = measure_peak_rss(_csr_parse, str(path))
    net = max(1, peak - baseline)
    benchmark.extra_info["million_edges"] = num_edges
    benchmark.extra_info["million_parse_seconds"] = seconds
    benchmark.extra_info["million_peak_rss_bytes"] = net
    benchmark.pedantic(int, rounds=1, iterations=1)
    print(
        f"\n[ingest-1M] wrote {num_edges} edges in {write_seconds:.1f}s; "
        f"csr parse {seconds:.1f}s, peak {net / 2**30:.2f} GiB"
    )
    assert counts[0] == MILLION
    assert net <= MILLION_BUDGET_BYTES
