"""Performance benchmarks for the indexed CSR backend (P2).

The acceptance bar for the CSR backend is a >= 5x speedup of the Table-2 pair
statistics on a SNAP-scale synthetic graph, with bit-identical results.  The
graph here (50k nodes) is the size class of the paper's Epinions/Slashdot
datasets; the dict backend pays Python-interpreter cost per visited edge while
the CSR backend runs a handful of vectorised array operations per BFS level.

The one-time CSR index build is excluded from the timed region: the index is
cached on the graph (``csr_view``) and amortised over every subsequent query,
exactly as in the experiment harness.
"""

from __future__ import annotations

import time

import pytest

from repro.compatibility import make_relation, pair_statistics
from repro.datasets import synthetic_signed_network
from repro.signed import signed_bfs, signed_bfs_csr

#: Number of sampled sources for the statistics comparison (kept small so the
#: dict reference side stays a few seconds; the measured ratio is insensitive
#: to this because both sides scale linearly in it).
NUM_SOURCES = 12


@pytest.fixture(scope="module")
def large_graph():
    graph, _ = synthetic_signed_network(
        50_000, average_degree=6.0, negative_fraction=0.2, seed=42
    )
    assert graph.number_of_nodes() >= 50_000
    return graph


@pytest.mark.benchmark(group="perf-csr-bfs")
def test_perf_signed_bfs_csr_single_source(benchmark, large_graph):
    """Algorithm 1 on the CSR backend from one source of the 50k-node graph."""
    csr = large_graph.csr_view()
    source = large_graph.nodes()[0]
    result = benchmark.pedantic(
        signed_bfs_csr, args=(csr, source), rounds=3, iterations=1
    )
    assert result.counts(source) == (1, 0)


def _best_of(repeats: int, function):
    """Fastest of ``repeats`` timed runs (min is robust to CI load spikes)."""
    best_elapsed, best_result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        elapsed = time.perf_counter() - start
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed, best_result = elapsed, result
    return best_elapsed, best_result


def test_csr_pair_statistics_speedup_at_least_5x(large_graph):
    """`pair_statistics` on the CSR backend is >= 5x the dict backend, same counts."""
    nodes = large_graph.number_of_nodes()
    large_graph.csr_view()  # build the cached index outside the timed region

    dict_elapsed, dict_stats = _best_of(
        2,
        lambda: pair_statistics(
            make_relation("SPO", large_graph, backend="dict"),
            num_sampled_sources=NUM_SOURCES,
            seed=7,
        ),
    )
    csr_elapsed, csr_stats = _best_of(
        3,
        lambda: pair_statistics(
            make_relation("SPO", large_graph, backend="csr"),
            num_sampled_sources=NUM_SOURCES,
            seed=7,
        ),
    )

    # Identical estimates: same sampled sources (same seed), same counts.
    assert csr_stats.compatible_pairs == dict_stats.compatible_pairs
    assert csr_stats.evaluated_pairs == dict_stats.evaluated_pairs == NUM_SOURCES * (nodes - 1)

    speedup = dict_elapsed / csr_elapsed
    print(
        f"\npair_statistics on {nodes} nodes / {NUM_SOURCES} sources: "
        f"dict {dict_elapsed:.2f}s, csr {csr_elapsed:.2f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"CSR backend speedup {speedup:.1f}x below the 5x acceptance bar "
        f"(dict {dict_elapsed:.3f}s vs csr {csr_elapsed:.3f}s)"
    )


def test_csr_and_dict_bfs_agree_on_large_graph(large_graph):
    """Spot equivalence on the benchmark graph itself (guards the speedup test)."""
    source = large_graph.nodes()[123]
    expected = signed_bfs(large_graph, source)
    actual = signed_bfs_csr(large_graph.csr_view(), source).to_signed_bfs_result()
    assert actual.lengths == expected.lengths
    assert actual.positive_counts == expected.positive_counts
    assert actual.negative_counts == expected.negative_counts
