"""Benchmark T1 — regenerate Table 1 (dataset statistics)."""

from __future__ import annotations

import pytest

from repro.experiments import run_table1

from conftest import run_once


@pytest.mark.benchmark(group="table1")
def test_table1_dataset_statistics(benchmark, config, contexts):
    """Table 1: #users, #edges, #negative edges, diameter, #skills per dataset."""
    result = run_once(benchmark, run_table1, config, contexts)

    print("\n" + result.as_text())
    rows = {row.name: row for row in result.rows}
    assert set(rows) == set(config.dataset_names)
    for row in rows.values():
        benchmark.extra_info[f"{row.name}_users"] = row.num_users
        benchmark.extra_info[f"{row.name}_edges"] = row.num_edges
        benchmark.extra_info[f"{row.name}_neg_fraction"] = round(row.negative_fraction, 3)
        # Shape check against the paper: a minority of edges is negative.
        assert 0.05 < row.negative_fraction < 0.45
        assert row.diameter is None or row.diameter >= 2
