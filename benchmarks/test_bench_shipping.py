"""Benchmarks for set-valued result shipping through the shared-memory arena.

The acceptance bar (ISSUE 5): on a 50k-node synthetic signed network, a
4-worker set-valued sweep (``batch_bfs`` — the transport-heaviest kernel,
~1 MB of result arrays per source) must be **measurably faster** with the
result arena than with pickled result shipping, while returning
**bit-identical** results.  The savings are parent-side: with the arena the
parent reads zero-copy row views out of one shared segment instead of
unpickling O(n) arrays per source (and the workers skip pickling them).

The identity half runs everywhere (2 workers, real cross-process dispatch);
the timing gate needs real parallel hardware and self-skips below 4 CPUs —
the CI ``bench-parallel`` job provides 4 and uploads ``bench-shipping.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.compatibility import DistanceOracle, make_relation
from repro.datasets import synthetic_signed_network
from repro.exec import ExecutionPolicy, shutdown_pools

#: Size of the benchmark graph (the paper's Epinions/Slashdot class).
NUM_NODES = 50_000

#: Sources per set-valued sweep (a Table-2-scale sample).
NUM_SOURCES = 64

#: Worker count the acceptance bar is defined at.
BAR_WORKERS = 4

#: The wall-clock bar: the arena sweep must beat pickled shipping by this
#: factor.  Deliberately conservative — the parent-side deserialisation cost
#: it removes is a fraction of the sweep, not the whole of it.
ARENA_SPEEDUP_BAR = 1.05

SEED = 4321


@pytest.fixture(scope="module")
def big_graph():
    """A 50k-node signed network with its CSR snapshot prebuilt."""
    graph, _ = synthetic_signed_network(
        NUM_NODES, average_degree=6.0, negative_fraction=0.2, seed=42
    )
    graph.csr_view()  # build the shared index outside every timed region
    yield graph
    shutdown_pools()


def _policy(workers: int, arena: bool) -> ExecutionPolicy:
    return ExecutionPolicy(backend="csr", workers=workers, result_arena=arena)


def _cold_batch_bfs(graph, workers: int, arena: bool):
    """A fresh relation's cold ``batch_bfs`` sweep (nothing cached)."""
    relation = make_relation("SPO", graph, policy=_policy(workers, arena))
    return relation.batch_bfs(graph.nodes()[:NUM_SOURCES])


def _timed(function):
    start = time.perf_counter()
    result = function()
    return time.perf_counter() - start, result


def _as_comparable(results):
    """BFS results as comparable tuples (arrays -> bytes), order preserved."""
    comparable = []
    for result in results:
        comparable.append(
            (
                result.source,
                result.lengths_array.tobytes(),
                result.positive_array.tobytes(),
                result.negative_array.tobytes(),
            )
        )
    return comparable


def test_arena_sweeps_bit_identical(big_graph):
    """Arena, pickled-shipping and serial sweeps agree bit for bit.

    Runs everywhere (no CPU gate): covers ``batch_bfs`` triples,
    ``batch_compatible_sets`` bitmaps and the oracle's ``warm`` maps.
    """
    serial = _as_comparable(_cold_batch_bfs(big_graph, 0, arena=True))
    pickled = _as_comparable(_cold_batch_bfs(big_graph, 2, arena=False))
    arena = _as_comparable(_cold_batch_bfs(big_graph, 2, arena=True))
    assert arena == serial
    assert pickled == serial

    sample = big_graph.nodes()[:24]
    serial_rel = make_relation("SPO", big_graph, policy=_policy(0, True))
    arena_rel = make_relation("SPO", big_graph, policy=_policy(2, True))
    assert arena_rel.batch_compatible_sets(sample) == serial_rel.batch_compatible_sets(sample)

    team = big_graph.nodes()[100:104]
    candidates = big_graph.nodes()[200:260]
    serial_oracle = DistanceOracle(serial_rel)
    arena_oracle = DistanceOracle(arena_rel)
    assert arena_oracle.batch_distance_to_set(candidates, team) == (
        serial_oracle.batch_distance_to_set(candidates, team)
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < BAR_WORKERS,
    reason=f"the >= {ARENA_SPEEDUP_BAR}x bar needs {BAR_WORKERS} real CPUs",
)
def test_arena_beats_pickled_shipping_at_50k(big_graph):
    """4-worker arena sweep >= 1.05x over pickled shipping, same results.

    ``batch_bfs`` over 64 sources ships ~64 MB of result arrays when pickled;
    with the arena only compact tokens cross the pipe and the parent maps the
    rows zero-copy — the delta is the (de)serialisation cost.
    """
    # Warm the pool (process startup + snapshot shipment) outside the timing.
    _cold_batch_bfs(big_graph, BAR_WORKERS, arena=True)

    pickled_elapsed = min(
        _timed(lambda: _cold_batch_bfs(big_graph, BAR_WORKERS, arena=False))[0]
        for _ in range(3)
    )
    arena_elapsed = min(
        _timed(lambda: _cold_batch_bfs(big_graph, BAR_WORKERS, arena=True))[0]
        for _ in range(3)
    )

    speedup = pickled_elapsed / arena_elapsed
    print(
        f"\nbatch_bfs over {NUM_SOURCES} sources on {big_graph.number_of_nodes()} "
        f"nodes with {BAR_WORKERS} workers: pickled {pickled_elapsed:.2f}s, "
        f"arena {arena_elapsed:.2f}s, speedup {speedup:.2f}x"
    )
    assert speedup >= ARENA_SPEEDUP_BAR, (
        f"arena speedup {speedup:.2f}x below the {ARENA_SPEEDUP_BAR}x bar "
        f"(pickled {pickled_elapsed:.3f}s vs arena {arena_elapsed:.3f}s)"
    )


@pytest.mark.benchmark(group="perf-shipping")
def test_perf_arena_batch_bfs_50k(benchmark, big_graph):
    """Arena-shipped cold batch_bfs sweep (tracked in bench-shipping.json)."""
    benchmark.pedantic(
        lambda: _cold_batch_bfs(big_graph, 2, arena=True), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="perf-shipping")
def test_perf_pickled_batch_bfs_50k(benchmark, big_graph):
    """The pickled-shipping counterpart of the arena sweep (same sources)."""
    benchmark.pedantic(
        lambda: _cold_batch_bfs(big_graph, 2, arena=False), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="perf-shipping")
def test_perf_bitmap_compatible_sets_50k(benchmark, big_graph):
    """Pooled compatible-set sweep: n/8-byte bitmaps per source via the arena."""
    relation = make_relation("SPO", big_graph, policy=_policy(2, True))
    sources = big_graph.nodes()[:NUM_SOURCES]

    def sweep_cold():
        relation.clear_cache()
        relation.batch_compatible_sets(sources)

    benchmark.pedantic(sweep_cold, rounds=3, iterations=1)
