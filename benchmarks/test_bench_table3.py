"""Benchmark T3 — regenerate Table 3 (comparison with unsigned team formation)."""

from __future__ import annotations

import pytest

from repro.experiments import run_table3

from conftest import run_once


@pytest.mark.benchmark(group="table3")
def test_table3_unsigned_baseline_compatibility(benchmark, config, team_context, team_tasks):
    """Table 3: % of RarestFirst teams (ignore-sign / delete-negative) that are compatible."""
    result = run_once(benchmark, run_table3, config, team_context, team_tasks)

    print("\n" + result.as_text())
    for projection, row in result.percentages.items():
        # Paper shape: the compatible share grows as the relation relaxes, the
        # strictest relation rejects (almost) every sign-blind team, and the
        # relaxed relations accept a substantial share.
        assert row["SPA"] <= row["SPM"] + 1e-9
        assert row["SPM"] <= row["SPO"] + 1e-9
        assert row["SPO"] <= row["NNE"] + 1e-9
        assert row["SPA"] <= 40.0
        benchmark.extra_info[projection] = {name: round(value, 1) for name, value in row.items()}

    # Deleting negative edges can only help compatibility w.r.t. ignoring signs
    # (allowing a small slack because the two projections may solve different tasks).
    for relation in result.relations:
        assert (
            result.percentages["delete_negative"][relation]
            >= result.percentages["ignore_sign"][relation] - 15.0
        )
