"""Benchmarks for the snapshot store and the word-parallel bitmap kernels.

The acceptance bars (ISSUE 6), all on the 50k-node synthetic signed network:

* **Cold start**: materialising a usable CSR snapshot from a ``.store`` file
  via ``numpy.memmap`` must be >= 5x faster than the cold path (parse the
  edge list, then index it).  Measured headroom is ~100x — the mapped load
  is page-cache metadata work, not parsing — so the bar is deliberately far
  below the observed number and guards the mechanism, not the margin.
* **Word-parallel kernels**: the packed-uint64 multi-source sweeps must beat
  the per-source reference — >= 1.5x for plain path lengths (measured
  ~2.6x), >= 1.05x for signed BFS with its count propagation (measured
  ~1.37x) — while returning bit-identical arrays.
* **File-backed dispatch**: pool sweeps under ``snapshot_store`` must be
  bit-identical to shm-published and serial runs (no timing bar — the mode
  trades a pickle/attach for a save/mmap and exists for its page-cache
  sharing, not for raw dispatch speed).

The identity checks run everywhere; the pool comparison self-skips below
2 CPUs.  The CI ``bench-mmap`` job runs this file and uploads
``bench-mmap.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets import synthetic_signed_network
from repro.exec import ExecutionPolicy, executor_for, serial_executor, shutdown_pools
from repro.signed.csr import (
    CSRSignedGraph,
    shortest_path_lengths_dense_batch,
    signed_bfs_dense_batch,
)
from repro.signed.io import read_edge_list
from repro.signed.store import load_snapshot, save_snapshot

np = pytest.importorskip("numpy")

#: Size of the benchmark graph (the paper's Epinions/Slashdot class).
NUM_NODES = 50_000

#: Sources per word-parallel sweep (four 64-bit words).
NUM_SOURCES = 256

#: Cold parse+index over mmap load (measured ~100x; the bar is the ISSUE's).
COLD_START_BAR = 5.0

#: Word-parallel over per-source, plain path lengths (measured ~2.6x).
PATH_LENGTHS_BAR = 1.5

#: Word-parallel over per-source, signed BFS with counts (measured ~1.37x).
SIGNED_BFS_BAR = 1.05

SEED = 42


@pytest.fixture(scope="module")
def big_graph():
    graph, _ = synthetic_signed_network(
        NUM_NODES, average_degree=6.0, negative_fraction=0.2, seed=SEED
    )
    yield graph
    shutdown_pools()


@pytest.fixture(scope="module")
def big_csr(big_graph):
    return big_graph.csr_view()


@pytest.fixture(scope="module")
def edge_file(big_graph, tmp_path_factory):
    """The benchmark graph spelled as a SNAP-style edge list on disk."""
    path = tmp_path_factory.mktemp("store-bench") / "edges.txt"
    with open(path, "w") as handle:
        for edge in big_graph.edges():
            handle.write(f"{edge.u}\t{edge.v}\t{edge.sign}\n")
    return path


def _timed(function):
    start = time.perf_counter()
    result = function()
    return time.perf_counter() - start, result


def test_store_cold_start_beats_parse(edge_file, big_csr, tmp_path, benchmark):
    """mmap load >= 5x faster than parse+index, and bit-identical to it."""
    store_path = str(tmp_path / "bench.store")
    save_time, _ = _timed(lambda: save_snapshot(big_csr, store_path))

    def cold_parse():
        return CSRSignedGraph.from_signed_graph(read_edge_list(edge_file))

    parse_time, parsed = _timed(cold_parse)
    load_time, loaded = _timed(lambda: load_snapshot(store_path, mmap=True))
    speedup = parse_time / load_time
    benchmark.extra_info["parse_index_seconds"] = parse_time
    benchmark.extra_info["save_seconds"] = save_time
    benchmark.extra_info["mmap_load_seconds"] = load_time
    benchmark.extra_info["cold_start_speedup"] = speedup
    benchmark.pedantic(
        lambda: load_snapshot(store_path, mmap=True), rounds=3, iterations=1
    )
    print(
        f"\n[store] parse+index {parse_time:.3f}s, save {save_time:.3f}s, "
        f"mmap load {load_time * 1000:.2f}ms -> {speedup:.0f}x cold-start speedup"
    )
    # The mapped snapshot carries the same planes the edge list parses to
    # (node order differs between generators, so compare against its own
    # source of truth: the snapshot it was saved from).
    for name in ("indptr", "indices", "signs"):
        assert np.array_equal(
            np.asarray(getattr(loaded, name)), np.asarray(getattr(big_csr, name))
        )
    assert parsed.number_of_edges() == loaded.number_of_edges()
    assert speedup >= COLD_START_BAR, (
        f"store cold start only {speedup:.1f}x over parse "
        f"(bar {COLD_START_BAR}x)"
    )


def test_loader_cache_hit_skips_the_parse(edge_file, tmp_path, benchmark):
    """The parse-once cache must make the second load measurably cheaper and
    return a bit-identical dataset (node order included)."""
    from repro.datasets.loaders import load_snap_dataset

    cache = tmp_path / "cache"
    kwargs = dict(restrict_to_lcc=False, seed=7, snapshot_cache_dir=cache)
    cold_time, cold = _timed(lambda: load_snap_dataset("bench", edge_file, **kwargs))
    hit_time, hit = _timed(lambda: load_snap_dataset("bench", edge_file, **kwargs))
    benchmark.extra_info["loader_cold_seconds"] = cold_time
    benchmark.extra_info["loader_hit_seconds"] = hit_time
    benchmark.pedantic(
        lambda: load_snap_dataset("bench", edge_file, **kwargs),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[loader] cold {cold_time:.3f}s (parse + store save), "
        f"hit {hit_time:.3f}s ({cold_time / hit_time:.2f}x)"
    )
    assert list(hit.graph.nodes()) == list(cold.graph.nodes())
    assert hit.graph.number_of_edges() == cold.graph.number_of_edges()
    # Zipf skills are seeded from node order, so a hit reproduces them too.
    probe = cold.graph.nodes()[:50]
    assert all(hit.skills.skills_of(u) == cold.skills.skills_of(u) for u in probe)
    # The hit skips the parse; it still pays dict rebuild + skill synthesis,
    # so the bar is "cheaper", not a fixed multiple.
    assert hit_time < cold_time


def test_wordparallel_path_lengths_speedup(big_csr, benchmark):
    sources = list(range(NUM_SOURCES))
    # Identity first, on one word's worth of sources, results then freed —
    # the timed runs must not execute under the memory pressure of a held
    # 256 x 50k result set (that skews whichever run goes second).
    fast = shortest_path_lengths_dense_batch(big_csr, sources[:64], wordparallel=True)
    slow = shortest_path_lengths_dense_batch(big_csr, sources[:64], wordparallel=False)
    for a, b in zip(fast, slow):
        assert np.array_equal(a, b)
    del fast, slow

    slow_time, _ = _timed(
        lambda: len(
            shortest_path_lengths_dense_batch(big_csr, sources, wordparallel=False)
        )
    )
    fast_time, _ = _timed(
        lambda: len(
            shortest_path_lengths_dense_batch(big_csr, sources, wordparallel=True)
        )
    )
    speedup = slow_time / fast_time
    benchmark.extra_info["per_source_seconds"] = slow_time
    benchmark.extra_info["wordparallel_seconds"] = fast_time
    benchmark.extra_info["speedup"] = speedup
    benchmark.pedantic(
        lambda: shortest_path_lengths_dense_batch(
            big_csr, sources[:64], wordparallel=True
        ),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[wordparallel] path lengths x{NUM_SOURCES}: per-source "
        f"{slow_time:.3f}s, word-parallel {fast_time:.3f}s -> {speedup:.2f}x"
    )
    assert speedup >= PATH_LENGTHS_BAR, (
        f"word-parallel path lengths only {speedup:.2f}x (bar {PATH_LENGTHS_BAR}x)"
    )


def test_wordparallel_signed_bfs_speedup(big_csr, benchmark):
    sources = list(range(NUM_SOURCES))
    # Identity on one word chunk, freed before the timed runs (see above).
    fast = signed_bfs_dense_batch(big_csr, sources[:64], wordparallel=True)
    slow = signed_bfs_dense_batch(big_csr, sources[:64], wordparallel=False)
    for f, s in zip(fast, slow):
        for a, b in zip(f, s):
            assert np.array_equal(a, b)
    del fast, slow

    slow_time, _ = _timed(
        lambda: len(signed_bfs_dense_batch(big_csr, sources, wordparallel=False))
    )
    fast_time, _ = _timed(
        lambda: len(signed_bfs_dense_batch(big_csr, sources, wordparallel=True))
    )
    speedup = slow_time / fast_time
    benchmark.extra_info["per_source_seconds"] = slow_time
    benchmark.extra_info["wordparallel_seconds"] = fast_time
    benchmark.extra_info["speedup"] = speedup
    benchmark.pedantic(
        lambda: signed_bfs_dense_batch(big_csr, sources[:64], wordparallel=True),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[wordparallel] signed BFS x{NUM_SOURCES}: per-source "
        f"{slow_time:.3f}s, word-parallel {fast_time:.3f}s -> {speedup:.2f}x"
    )
    assert speedup >= SIGNED_BFS_BAR, (
        f"word-parallel signed BFS only {speedup:.2f}x (bar {SIGNED_BFS_BAR}x)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="file-backed vs shm dispatch comparison needs 2 CPUs",
)
def test_file_backed_dispatch_bit_identical_to_shm(big_csr, tmp_path, benchmark):
    """Pool sweeps under ``snapshot_store`` == shm-published == serial."""
    dense = list(range(64))
    serial = serial_executor()
    shm_exec = executor_for(
        ExecutionPolicy(backend="csr", workers=2, min_parallel_sources=1)
    )
    store_exec = executor_for(
        ExecutionPolicy(
            backend="csr",
            workers=2,
            min_parallel_sources=1,
            snapshot_store=str(tmp_path),
        )
    )
    expected = serial.map_kernel("csr_path_lengths", big_csr, dense, {})
    shm_time, via_shm = _timed(
        lambda: shm_exec.map_kernel("csr_path_lengths", big_csr, dense, {})
    )
    store_time, via_store = _timed(
        lambda: store_exec.map_kernel("csr_path_lengths", big_csr, dense, {})
    )
    benchmark.extra_info["shm_dispatch_seconds"] = shm_time
    benchmark.extra_info["store_dispatch_seconds"] = store_time
    benchmark.pedantic(
        lambda: store_exec.map_kernel("csr_path_lengths", big_csr, dense, {}),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[dispatch] 64-source path-length sweep: shm {shm_time:.3f}s, "
        f"file-backed {store_time:.3f}s"
    )
    for left, right in zip(via_store, expected):
        assert np.array_equal(left, right)
    for left, right in zip(via_store, via_shm):
        assert np.array_equal(left, right)
    # The published file lives in the store directory for the snapshot's
    # lifetime and is swept by shutdown_pools (module fixture teardown).
    assert [f for f in os.listdir(tmp_path) if f.endswith(".store")]
