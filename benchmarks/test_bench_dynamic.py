"""Performance benchmarks for the dynamic-graph subsystem.

Two acceptance bars (ISSUE 3), measured on a Table-2-scale 50k-node synthetic
signed network:

* **delta-apply >= 5x**: patching the CSR snapshot with a <= 1% edge batch
  (:meth:`CSRSignedGraph.apply_delta`) must beat a full
  :meth:`CSRSignedGraph.from_signed_graph` rebuild by at least 5x, while
  producing bit-identical arrays;
* **generation memo >= 10x**: a repeat ``compatible_from_many`` against the
  same team (served from the engine's ``(member, generation)`` rule-mask
  memo) must be at least 10x faster than the cold call.

Both also get pytest-benchmark entries so the CI artifact
(``bench-dynamic.json``) tracks them release over release.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.compatibility import CompatibilityEngine, make_relation
from repro.datasets import synthetic_signed_network
from repro.signed.csr import CSRSignedGraph

#: Size of the benchmark graph (the paper's Epinions/Slashdot class).
NUM_NODES = 50_000

#: Edge events in the churn batch — about 0.4% of the graph's ~150k edges,
#: well inside the <= 1% bar and the 5% delta-apply threshold.
CHURN_EVENTS = 600


@pytest.fixture(scope="module")
def churned_graph():
    """A 50k-node graph, its pre-churn snapshot, and the pending delta."""
    graph, _ = synthetic_signed_network(
        NUM_NODES, average_degree=6.0, negative_fraction=0.2, seed=42
    )
    base = graph.csr_view()
    rng = random.Random(7)
    nodes = graph.nodes()
    edges = list(graph.edge_triples())
    for u, v, sign in rng.sample(edges, (2 * CHURN_EVENTS) // 3):
        if graph.has_edge(u, v):
            if rng.random() < 0.5:
                graph.set_sign(u, v, -sign)
            else:
                graph.remove_edge(u, v)
    added = 0
    while added < CHURN_EVENTS // 3:
        u, v = rng.sample(nodes, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.choice([1, -1]))
            added += 1
    delta = graph._delta
    assert delta is not None and not delta.overflowed
    assert delta.num_edge_events <= 0.01 * graph.number_of_edges()
    return graph, base, delta


def _best_of(repeats: int, function):
    """Fastest of ``repeats`` timed runs (min is robust to CI load spikes)."""
    best_elapsed, best_result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        elapsed = time.perf_counter() - start
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed, best_result = elapsed, result
    return best_elapsed, best_result


def test_delta_apply_speedup_at_least_5x(churned_graph):
    """apply_delta on a <= 1% batch >= 5x over a full rebuild, bit-identical."""
    graph, base, delta = churned_graph

    delta_elapsed, patched = _best_of(
        3, lambda: CSRSignedGraph.apply_delta(base, graph, delta)
    )
    rebuild_elapsed, rebuilt = _best_of(
        3, lambda: CSRSignedGraph.from_signed_graph(graph)
    )

    assert patched._nodes == rebuilt._nodes
    assert np.array_equal(patched.indptr, rebuilt.indptr)
    assert np.array_equal(patched.indices, rebuilt.indices)
    assert np.array_equal(patched.signs, rebuilt.signs)

    speedup = rebuild_elapsed / delta_elapsed
    print(
        f"\ndelta maintenance on {graph.number_of_nodes()} nodes "
        f"({delta.num_edge_events} edge events, {graph.number_of_edges()} edges): "
        f"rebuild {rebuild_elapsed * 1000:.1f} ms, apply_delta "
        f"{delta_elapsed * 1000:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"delta-apply speedup {speedup:.1f}x below the 5x acceptance bar "
        f"(rebuild {rebuild_elapsed:.3f}s vs apply {delta_elapsed:.3f}s)"
    )


def test_generation_memoised_team_filter_at_least_10x(churned_graph):
    """Repeat compatible_from_many (mask memo warm) >= 10x over the cold call."""
    graph, _base, _delta = churned_graph
    graph.csr_view()  # settle the churn delta outside the timed region
    relation = make_relation("SPO", graph, backend="csr")
    engine = CompatibilityEngine(relation)
    nodes = graph.nodes()
    team = nodes[:5]
    pool = nodes[100:2100]

    start = time.perf_counter()
    cold = engine.compatible_from_many(pool, team)
    cold_elapsed = time.perf_counter() - start
    warm_elapsed, warm = _best_of(3, lambda: engine.compatible_from_many(pool, team))

    assert warm == cold
    speedup = cold_elapsed / warm_elapsed
    print(
        f"\nmemoised team filter on {graph.number_of_nodes()} nodes "
        f"({len(pool)} candidates, team of {len(team)}): cold "
        f"{cold_elapsed * 1000:.1f} ms, warm {warm_elapsed * 1000:.2f} ms, "
        f"speedup {speedup:.0f}x"
    )
    assert speedup >= 10.0, (
        f"memoisation speedup {speedup:.0f}x below the 10x acceptance bar "
        f"(cold {cold_elapsed:.4f}s vs warm {warm_elapsed:.4f}s)"
    )


@pytest.mark.benchmark(group="perf-dynamic")
def test_perf_apply_delta_50k(benchmark, churned_graph):
    """Timed entry: apply_delta of a ~0.4% churn batch on the 50k graph."""
    graph, base, delta = churned_graph
    patched = benchmark.pedantic(
        CSRSignedGraph.apply_delta, args=(base, graph, delta), rounds=3, iterations=1
    )
    assert patched.number_of_nodes() == graph.number_of_nodes()


@pytest.mark.benchmark(group="perf-dynamic")
def test_perf_full_rebuild_50k(benchmark, churned_graph):
    """Timed entry: the full snapshot rebuild the delta path replaces."""
    graph, _base, _delta = churned_graph
    rebuilt = benchmark.pedantic(
        CSRSignedGraph.from_signed_graph, args=(graph,), rounds=3, iterations=1
    )
    assert rebuilt.number_of_nodes() == graph.number_of_nodes()
