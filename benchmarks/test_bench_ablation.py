"""Ablation benchmarks (design choices called out in DESIGN.md).

* **A1** — the full skill-policy × user-policy cross product of Algorithm 2
  (the paper only reports the two best pairings, LCMD and LCMC).
* **A2** — SBP vs SBPH agreement as a function of the exact search's path
  length cap (the paper reports ~2.5 % disagreement on Slashdot).
* **A3** — diameter cost vs sum-of-distances cost for the same algorithm.
"""

from __future__ import annotations

import pytest

from repro.compatibility import make_relation, relation_overlap
from repro.teams import (
    TeamFormationProblem,
    run_algorithm,
    sum_distance_cost,
)

from conftest import run_once


@pytest.mark.benchmark(group="ablation")
def test_ablation_policy_cross_product(benchmark, config, team_context, team_tasks):
    """A1: success rate and cost for all five policy pairings of Algorithm 2."""
    relation_context = team_context.relation_context("SPO")
    algorithms = ("LCMD", "LCMC", "RFMD", "RFMC", "RANDOM")

    def run_cross_product():
        outcome = {}
        for algorithm in algorithms:
            solved = 0
            total_cost = 0.0
            for task in team_tasks:
                problem = TeamFormationProblem(
                    team_context.dataset.graph,
                    team_context.dataset.skills,
                    relation_context.relation,
                    task,
                    oracle=relation_context.oracle,
                    skill_index=relation_context.skill_index,
                )
                result = run_algorithm(
                    algorithm, problem, max_seeds=config.max_seeds, seed=1
                )
                if result.solved:
                    solved += 1
                    total_cost += result.cost
            outcome[algorithm] = (solved, total_cost / solved if solved else 0.0)
        return outcome

    outcome = run_once(benchmark, run_cross_product)

    print("\nA1 policy cross product (solved, avg diameter):", outcome)
    solved_counts = {name: values[0] for name, values in outcome.items()}
    # Every pairing solves a comparable number of tasks (selection policies
    # matter for cost much more than for feasibility — the paper's finding).
    assert max(solved_counts.values()) - min(solved_counts.values()) <= max(
        3, len(team_tasks) // 3
    )
    benchmark.extra_info["outcome"] = {
        name: {"solved": values[0], "avg_diameter": round(values[1], 2)}
        for name, values in outcome.items()
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_sbp_vs_sbph_agreement(benchmark, contexts):
    """A2: SBP/SBPH agreement under increasing exact-search budgets (Slashdot)."""
    graph = contexts["slashdot"].dataset.graph

    def compute_agreements():
        agreements = {}
        sbph = make_relation("SBPH", graph)
        for budget in (2_000, 10_000, 40_000):
            sbp = make_relation("SBP", graph, max_expansions=budget)
            agreements[budget] = relation_overlap(sbp, sbph, seed=1)
        return agreements

    agreements = run_once(benchmark, compute_agreements)

    print("\nA2 SBP~SBPH agreement by exact-search budget:", agreements)
    for budget, agreement in agreements.items():
        # The heuristic agrees with the (budgeted) exact relation on the vast
        # majority of pairs, mirroring the paper's ~97.5 % agreement.
        assert agreement >= 0.85
        benchmark.extra_info[str(budget)] = round(100.0 * agreement, 2)


@pytest.mark.benchmark(group="ablation")
def test_ablation_cost_functions(benchmark, config, team_context, team_tasks):
    """A3: diameter objective vs sum-of-distances objective for LCMD."""
    relation_context = team_context.relation_context("SPO")

    def run_both_costs():
        diameters, sums = [], []
        for task in team_tasks:
            problem = TeamFormationProblem(
                team_context.dataset.graph,
                team_context.dataset.skills,
                relation_context.relation,
                task,
                oracle=relation_context.oracle,
                skill_index=relation_context.skill_index,
            )
            by_diameter = run_algorithm("LCMD", problem, max_seeds=config.max_seeds)
            by_sum = run_algorithm(
                "LCMD", problem, cost_function=sum_distance_cost, max_seeds=config.max_seeds
            )
            if by_diameter.solved and by_sum.solved:
                diameters.append(
                    (by_diameter.cost, relation_context.oracle.max_pairwise_distance(by_sum.team))
                )
                sums.append(
                    (
                        relation_context.oracle.sum_pairwise_distance(by_diameter.team),
                        by_sum.cost,
                    )
                )
        return diameters, sums

    diameters, sums = run_once(benchmark, run_both_costs)

    # Each objective is (weakly) better at its own metric, aggregated over tasks.
    if diameters:
        diameter_opt = sum(pair[0] for pair in diameters)
        diameter_other = sum(pair[1] for pair in diameters)
        assert diameter_opt <= diameter_other + 1e-9
    if sums:
        sum_other = sum(pair[0] for pair in sums)
        sum_opt = sum(pair[1] for pair in sums)
        assert sum_opt <= sum_other + 1e-9
    benchmark.extra_info["tasks_compared"] = len(diameters)
