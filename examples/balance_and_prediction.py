"""Beyond team formation: clustering and sign prediction with structural balance.

Run with::

    python examples/balance_and_prediction.py

The paper's conclusions propose exploiting compatibility "for other tasks,
such as link prediction or clustering".  This example does both on the
Wikipedia-like dataset:

1. recover the two latent factions with the weak-balance partitioner and
   measure how many edges the partition explains;
2. predict the sign of held-out edges with four predictors — always-positive,
   balanced triangle completion, shortest-path sign (Algorithm 1), and the
   compatibility-based predictor built on the SPM relation.
"""

from __future__ import annotations

from repro.compatibility import make_relation
from repro.datasets import wikipedia_like
from repro.signed import (
    AlwaysPositivePredictor,
    CompatibilityPredictor,
    ShortestPathSignPredictor,
    TriangleVotePredictor,
    compare_predictors,
    greedy_balance_partition,
    partition_agreement,
)
from repro.signed.generators import planted_factions_graph
from repro.utils.tables import format_table


def main() -> None:
    dataset = wikipedia_like(seed=19, scale=0.06)
    graph = dataset.graph
    print(f"Dataset: {dataset.name} — {graph.number_of_nodes()} users, "
          f"{graph.number_of_edges()} edges "
          f"({graph.number_of_negative_edges()} negative)\n")

    # --- 1. Clustering: recover latent camps on a balance-consistent network ---
    # (Two communities whose internal edges are friendly and whose cross edges
    # are hostile, plus 8% sign noise — the setting weak balance describes.)
    clustered_graph, planted = planted_factions_graph(
        400, average_degree=8.0, num_factions=2, sign_noise=0.08, seed=29
    )
    partition, quality = greedy_balance_partition(
        clustered_graph, num_clusters=2, restarts=3, seed=1
    )
    agreement = partition_agreement(partition, planted)
    print("Weak-balance clustering (two planted camps, 8% sign noise):")
    print(f"  frustrated edges: {quality.frustrated_edges}/{quality.total_edges} "
          f"({100 * quality.frustration_ratio:.1f}%)")
    print(f"  agreement with the planted camps: {100 * agreement:.1f}%\n")

    # --- 2. Sign prediction on held-out edges ----------------------------------
    reports = compare_predictors(
        graph,
        [
            lambda g: AlwaysPositivePredictor(g),
            lambda g: TriangleVotePredictor(g),
            lambda g: ShortestPathSignPredictor(g),
            lambda g: CompatibilityPredictor(g, lambda gg: make_relation("SPM", gg)),
        ],
        test_fraction=0.1,
        max_test_edges=300,
        seed=7,
    )
    rows = [
        [report.predictor,
         f"{100 * report.accuracy:.1f}",
         f"{100 * report.positive_recall:.1f}",
         f"{100 * report.negative_recall:.1f}"]
        for report in reports
    ]
    print(format_table(
        ["predictor", "accuracy %", "positive recall %", "negative recall %"],
        rows,
        title="Sign prediction on held-out edges",
    ))
    print(
        "\nThe structure-aware predictors recover part of the negative edges that"
        "\nthe majority-class baseline misses entirely (it never predicts a foe)"
        "\n— the same balance signal the compatibility relations are built on."
    )


if __name__ == "__main__":
    main()
