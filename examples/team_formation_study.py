"""Team-formation study on a larger signed network (the paper's Section 5 workload).

Run with::

    python examples/team_formation_study.py

Scenario: an organisation of a few thousand reviewers (the Epinions-like
stand-in) must staff review committees ("tasks") that need several product
areas covered.  Relationships between reviewers are signed (past
collaborations vs. public disputes), so the staffing tool must not put foes on
the same committee.

The script compares the paper's algorithms (LCMD, LCMC, RANDOM) across
compatibility relations and task sizes and prints success rates and
communication costs — a miniature version of Figure 2.
"""

from __future__ import annotations

from repro.compatibility import DistanceOracle, SkillCompatibilityIndex, make_relation
from repro.datasets import epinions_like
from repro.skills.task import random_tasks
from repro.teams import TeamFormationProblem, run_algorithm
from repro.utils.tables import format_table

RELATIONS = ("SPA", "SPO", "SBPH", "NNE")
ALGORITHMS = ("LCMD", "LCMC", "RANDOM")
NUM_TASKS = 20
TASK_SIZE = 5


def main() -> None:
    dataset = epinions_like(seed=17, scale=0.03)
    graph, skills = dataset.graph, dataset.skills
    print(f"Dataset: {dataset.name} — {graph.number_of_nodes()} reviewers, "
          f"{graph.number_of_edges()} signed relationships\n")

    tasks = random_tasks(skills, size=TASK_SIZE, count=NUM_TASKS, seed=2020)

    rows = []
    for relation_name in RELATIONS:
        relation = make_relation(relation_name, graph)
        oracle = DistanceOracle(relation)
        skill_index = SkillCompatibilityIndex(relation, skills)
        row = [relation_name]
        for algorithm in ALGORITHMS:
            solved = 0
            total_cost = 0.0
            for task in tasks:
                problem = TeamFormationProblem(
                    graph, skills, relation, task, oracle=oracle, skill_index=skill_index
                )
                result = run_algorithm(algorithm, problem, max_seeds=15, seed=7)
                if result.solved:
                    solved += 1
                    total_cost += result.cost
            rate = 100.0 * solved / len(tasks)
            cost = total_cost / solved if solved else float("nan")
            row.append(f"{rate:.0f}% / {cost:.2f}")
        rows.append(row)

    headers = ["relation"] + [f"{algo} (%solved / avg diameter)" for algo in ALGORITHMS]
    print(format_table(headers, rows, title=f"Committee staffing, {NUM_TASKS} tasks of {TASK_SIZE} skills"))
    print(
        "\nReading the table: stricter relations (top rows) solve fewer tasks;"
        "\nLCMD keeps the communication cost lowest, matching Figure 2 of the paper."
    )


if __name__ == "__main__":
    main()
