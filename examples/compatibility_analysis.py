"""Compatibility analysis of a signed network (the paper's Section 3 in practice).

Run with::

    python examples/compatibility_analysis.py

The script generates the Slashdot-like dataset, computes every compatibility
relation of the paper, and reports:

* the fraction of compatible user pairs per relation (the containment chain
  DPE ⊆ SPA ⊆ SPM ⊆ SPO ⊆ SBP ⊆ NNE shows up as increasing percentages);
* the average distance between compatible users;
* how often the SBPH heuristic disagrees with the exact SBP relation;
* a per-pair drill-down illustrating *why* a specific pair is or is not
  compatible (shortest-path sign counts and balanced paths).
"""

from __future__ import annotations

from repro.compatibility import (
    DistanceOracle,
    average_compatible_distance,
    exact_pair_statistics,
    make_relation,
    relation_overlap,
)
from repro.datasets import figure_1a_graph, slashdot_like
from repro.signed.paths import signed_bfs, shortest_balanced_positive_path
from repro.utils.tables import format_table

RELATIONS = ("DPE", "SPA", "SPM", "SPO", "SBPH", "SBP", "NNE")


def relation_summary() -> None:
    """Pairwise compatibility statistics on the Slashdot-like dataset."""
    # A half-scale Slashdot keeps the exact SBP relation (exponential search)
    # comfortably fast for an example; the benchmark harness runs full scale.
    dataset = slashdot_like(seed=13, scale=0.5)
    graph = dataset.graph
    print(f"Dataset: {dataset.name} — {graph.number_of_nodes()} users, "
          f"{graph.number_of_edges()} edges, "
          f"{100 * graph.number_of_negative_edges() / graph.number_of_edges():.1f}% negative\n")

    rows = []
    relations = {}
    for name in RELATIONS:
        kwargs = {"max_expansions": 50_000} if name in ("SBP", "SBPH") else {}
        relation = make_relation(name, graph, **kwargs)
        relations[name] = relation
        stats = exact_pair_statistics(relation)
        avg_distance, _pairs = average_compatible_distance(relation)
        rows.append([name, f"{stats.percentage:.2f}", f"{avg_distance:.2f}"])
    print(format_table(
        ["relation", "compatible pairs %", "avg distance"],
        rows,
        title="Compatibility relations (strictest to most relaxed)",
    ))

    agreement = relation_overlap(relations["SBP"], relations["SBPH"])
    print(f"\nSBP vs SBPH agreement: {100 * agreement:.2f}% "
          f"(the paper reports ~97.5% on the real Slashdot)")


def pair_drilldown() -> None:
    """Explain compatibility for the pair (u, v) of the paper's Figure 1(a)."""
    graph = figure_1a_graph()
    print("\nFigure 1(a) drill-down for the pair (u, v):")

    bfs = signed_bfs(graph, "u")
    positive, negative = bfs.counts("v")
    print(f"  shortest-path length {bfs.length('v')}, "
          f"{positive} positive / {negative} negative shortest paths")
    for name in ("SPA", "SPM", "SPO"):
        relation = make_relation(name, graph)
        print(f"  {name}: {'compatible' if relation.are_compatible('u', 'v') else 'incompatible'}")

    balanced_path = shortest_balanced_positive_path(graph, "u", "v")
    print(f"  shortest positive structurally balanced path: {balanced_path}")
    sbp = make_relation("SBP", graph)
    print(f"  SBP: {'compatible' if sbp.are_compatible('u', 'v') else 'incompatible'} "
          f"(distance {DistanceOracle(sbp).distance('u', 'v'):g})")


def main() -> None:
    relation_summary()
    pair_drilldown()


if __name__ == "__main__":
    main()
