"""Quickstart: form a compatible team on a small hand-crafted signed network.

Run with::

    python examples/quickstart.py

The example walks through the full public API in a few lines: load a dataset,
pick a compatibility relation, describe a task, run a team-formation
algorithm, and inspect / validate the resulting team.
"""

from __future__ import annotations

from repro.compatibility import DistanceOracle, make_relation
from repro.datasets import toy_dataset
from repro.skills import Task
from repro.teams import TeamFormationProblem, lcmd, validate_team


def main() -> None:
    # 1. A dataset bundles a signed graph and a user -> skills assignment.
    dataset = toy_dataset()
    graph = dataset.graph
    print(f"Dataset: {dataset.name} — {graph.number_of_nodes()} users, "
          f"{graph.number_of_edges()} edges "
          f"({graph.number_of_negative_edges()} negative)")

    # 2. Pick how strictly "able to work together" should be interpreted.
    #    SPO = the pair is connected by at least one positive shortest path.
    relation = make_relation("SPO", graph)

    # 3. Describe the task as the set of skills it requires.
    task = Task(["python", "databases", "design", "writing"], name="data-product")
    print(f"Task {task.name!r} requires: {sorted(task.skills)}")

    # 4. Solve it with LCMD (least-compatible skill first, closest user next).
    problem = TeamFormationProblem(graph, dataset.skills, relation, task)
    result = lcmd(problem)

    if not result.solved:
        print("No compatible team found under SPO.")
        return

    print(f"\nTeam found by {result.algorithm} (communication cost = {result.cost:g}):")
    for member in sorted(result.team):
        covered = sorted(dataset.skills.skills_of(member) & task.skills)
        print(f"  {member:>4}: {', '.join(covered)}")

    # 5. Validate the team explicitly: coverage + pairwise compatibility.
    report = validate_team(result.team, task, dataset.skills, relation,
                           oracle=DistanceOracle(relation))
    print(f"\nCovers the task: {report.covers_task}")
    print(f"Pairwise compatible: {report.is_compatible}")
    print(f"Team diameter: {report.cost:g}")

    # 6. Contrast with the strictest relation (DPE: direct friends only).
    strict = make_relation("DPE", graph)
    strict_result = lcmd(
        TeamFormationProblem(graph, dataset.skills, strict, task)
    )
    print(f"\nUnder DPE (direct friends only) the same task is "
          f"{'solvable' if strict_result.solved else 'not solvable'}.")


if __name__ == "__main__":
    main()
