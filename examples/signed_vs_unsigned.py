"""Why signs matter: classic team formation vs. signed-aware team formation.

Run with::

    python examples/signed_vs_unsigned.py

This reproduces the message of the paper's Table 3 on a scenario: a studio
staffs small project teams using the classic RarestFirst algorithm of Lappas
et al., which only sees an unsigned collaboration graph.  We then audit those
teams against the signed network (who actually gets along) and measure how
many contain at least one pair of declared foes — and how the signed-aware
LCMD algorithm avoids the problem at a modest cost increase.
"""

from __future__ import annotations

from repro.compatibility import DistanceOracle, make_relation
from repro.datasets import wikipedia_like
from repro.skills.task import random_tasks
from repro.teams import (
    TeamFormationProblem,
    fraction_of_compatible_teams,
    lcmd,
    run_unsigned_baseline,
)
from repro.utils.tables import format_table

RELATIONS = ("SPA", "SPO", "SBPH", "NNE")
NUM_TASKS = 25
TASK_SIZE = 5


def main() -> None:
    dataset = wikipedia_like(seed=19, scale=0.06)
    graph, skills = dataset.graph, dataset.skills
    print(f"Dataset: {dataset.name} — {graph.number_of_nodes()} users, "
          f"{graph.number_of_edges()} edges "
          f"({graph.number_of_negative_edges()} negative)\n")

    tasks = random_tasks(skills, size=TASK_SIZE, count=NUM_TASKS, seed=42)

    # 1. Classic, sign-blind team formation on the two unsigned projections.
    baseline_teams = {}
    for projection in ("ignore_sign", "delete_negative"):
        results = run_unsigned_baseline(graph, skills, tasks, projection)
        baseline_teams[projection] = [entry.team for entry in results]

    # 2. Audit those teams against the signed compatibility relations.
    rows = []
    for projection, teams in baseline_teams.items():
        row = [projection.replace("_", " ")]
        for relation_name in RELATIONS:
            relation = make_relation(relation_name, graph)
            compatible = fraction_of_compatible_teams(teams, relation)
            row.append(f"{100 * compatible:.0f}%")
        rows.append(row)
    print(format_table(
        ["unsigned baseline"] + list(RELATIONS),
        rows,
        title="Share of sign-blind teams that are actually compatible (Table 3 style)",
    ))

    # 3. Signed-aware formation under SPO: compatibility by construction.
    relation = make_relation("SPO", graph)
    oracle = DistanceOracle(relation)
    solved = 0
    total_cost = 0.0
    for task in tasks:
        problem = TeamFormationProblem(graph, skills, relation, task, oracle=oracle)
        result = lcmd(problem, max_seeds=15)
        if result.solved:
            solved += 1
            total_cost += result.cost
    print(f"\nSigned-aware LCMD under SPO: solved {solved}/{len(tasks)} tasks, "
          f"average diameter {total_cost / max(solved, 1):.2f}, "
          "and every returned team is compatible by construction.")


if __name__ == "__main__":
    main()
