"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` (and ``python setup.py develop``) also work on
environments whose setuptools lacks PEP 660 editable-wheel support (e.g. no
``wheel`` package available offline).
"""

from setuptools import setup

setup()
