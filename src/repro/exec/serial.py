"""The serial executor: run kernels in-process, no pool, no copies.

This is the reference implementation of the executor contract — the pool
executor's results are asserted bit-identical to it.  It is also the executor
every serial policy (``workers <= 1``, the default) resolves to, so the
pre-execution-layer behaviour of the library is preserved exactly: same
kernels, same order, same results, no extra processes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exec.kernels import KERNELS


class Executor:
    """The executor contract: run a named kernel over many sources.

    ``map_kernel`` returns one result per source, **in source order**,
    regardless of how the work was split or where it ran.  Implementations
    must be deterministic: the same (kernel, payload, sources, params) always
    produces the same result list.  *How* results travel is likewise an
    implementation detail: the pool executor may ship set-valued results
    through a shared-memory arena (:mod:`repro.exec.arena`), the serial
    executor never ships anything — callers see the same objects either way.
    """

    #: Number of OS processes doing kernel work (1 for serial).
    workers: int = 1

    #: Whether results may travel through a shared-memory result arena.
    #: False here is the arena's *no-op path*: in-process execution returns
    #: kernel results directly, so there is nothing to encode or decode —
    #: which is also what a degraded pool policy falls back to.
    uses_result_arena: bool = False

    def map_kernel(
        self,
        kernel: str,
        payload,
        sources: Sequence,
        params: Optional[dict] = None,
    ) -> List:
        """Run ``kernel`` over ``sources`` against ``payload``; results in order."""
        raise NotImplementedError

    def invalidate(self) -> None:
        """Drop any shipped payload state (no-op when nothing is shipped)."""

    def close(self) -> None:
        """Release executor resources (no-op for in-process executors)."""


class SerialExecutor(Executor):
    """Run every kernel batch in the calling process."""

    workers = 1

    def map_kernel(
        self,
        kernel: str,
        payload,
        sources: Sequence,
        params: Optional[dict] = None,
    ) -> List:
        source_list = list(sources)
        if not source_list:
            return []
        return KERNELS[kernel](payload, source_list, dict(params or {}))

    def __repr__(self) -> str:
        return "SerialExecutor()"


_SERIAL: Optional[SerialExecutor] = None


def serial_executor() -> SerialExecutor:
    """The process-wide shared :class:`SerialExecutor` (it is stateless)."""
    global _SERIAL
    if _SERIAL is None:
        _SERIAL = SerialExecutor()
    return _SERIAL
