"""``repro.exec`` — the execution-policy layer.

One :class:`ExecutionPolicy` object bundles every knob that used to travel as
loose keyword arguments through the compatibility stack — backend choice,
lockstep/auto thresholds, cache budgets — and adds the worker-pool dimension:
``workers >= 2`` dispatches per-source kernel batches (signed BFS, distance
sweeps, balanced-path searches) to a persistent process pool that receives
frozen CSR snapshots zero-copy through ``multiprocessing.shared_memory``.
Serial and pooled execution are bit-identical; see the README's
"Execution policies" section and :mod:`repro.exec.pool` for the worker model.
"""

from repro.exec.arena import ResultArena
from repro.exec.kernels import KERNELS, register_kernel
from repro.exec.policy import (
    POLICY_DEFAULT,
    CacheSize,
    ExecutionPolicy,
    executor_for,
    reset_executors,
    resolve_policy,
)
from repro.exec.pool import (
    ExecutorUnavailable,
    ProcessPoolExecutor,
    SnapshotDescriptor,
    shutdown_pools,
)
from repro.exec.serial import Executor, SerialExecutor, serial_executor

__all__ = [
    "CacheSize",
    "ExecutionPolicy",
    "Executor",
    "ExecutorUnavailable",
    "KERNELS",
    "POLICY_DEFAULT",
    "ProcessPoolExecutor",
    "ResultArena",
    "SerialExecutor",
    "SnapshotDescriptor",
    "executor_for",
    "register_kernel",
    "reset_executors",
    "resolve_policy",
    "serial_executor",
    "shutdown_pools",
]
