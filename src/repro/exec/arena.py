"""The result arena: shared-memory shipping of set-valued kernel results.

The pool executor's scalar sweeps (compatibility degrees) already reduce
inside the workers, but the *set-valued* sweeps — ``csr_signed_bfs`` triples
behind ``batch_bfs``/``batch_compatible_sets``, the distance oracle's
``csr_path_lengths`` maps behind ``warm``, the SBPH depth maps behind the
balanced reverse sweeps — used to pickle O(n) arrays back to the parent for
every source.  At 50k nodes that is ~1 MB per source of serialisation both
sides of the pipe, and it was the parallel ceiling the ROADMAP named.

This module is the codec layer that removes it:

* **One arena per dispatch.**  The parent allocates a single
  ``multiprocessing.shared_memory`` segment sized for the whole source batch
  (see :func:`arena_nbytes`), laid out as per-kernel *planes* — for
  ``csr_signed_bfs`` a ``(k, n)`` int32 lengths plane followed by two
  ``(k, n)`` int64 count planes, for ``csr_compatible_masks`` a single
  ``(k, ceil(n/8))`` packed-bitmap plane, and so on.  Plane offsets are
  8-byte aligned so every view is a properly aligned ndarray.
* **Chunk-strided writes.**  Each worker task knows its chunk's start
  position in the dispatch, attaches the segment by name, and writes its
  sources' rows straight through the write-into-buffer kernel variants
  (:func:`repro.signed.csr.signed_bfs_dense_batch_into` and friends) — the
  traversal's working arrays *are* the shipped result.  The task returns only
  a compact per-source token (``True``, or ``None`` marking an int64
  overflow), so worker→parent pickling is O(k), not O(k·n).
* **Zero-copy reads.**  The parent maps the same segment once, builds the
  plane views, and decodes each source's result straight off them
  (:func:`decode_results`) — no pickle ever touches the dense data.
  Results that are consumed immediately (compatible-set bitmaps, rebuilt
  SBPH depth maps) decode as zero-copy views; results headed for long-lived
  LRU caches (BFS triples, distance maps) are copied out row by row, so a
  surviving cache entry owns exactly its own bytes instead of pinning the
  whole k-row segment.  The segment is unlinked as soon as the dispatch
  completes (no ``/dev/shm`` entry outlives it) and the mapping itself is
  closed by a ``weakref.finalize`` when the last decoded view dies.

The arena is an optimisation of *transport only*: tokens plus decoded rows
reproduce exactly what the plain kernel would have returned, so pool-vs-serial
bit-identity is preserved by construction.  Kernels without an entry here
(every ``dict_*`` kernel, scalar reductions, locally registered test kernels)
simply ship their results pickled, as before.

numpy is imported lazily throughout, keeping ``import repro.exec`` working on
numpy-free installs (where no CSR kernel — arena or not — ever runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class _ResultPlane:
    """One dense result component: ``width`` items of ``dtype`` per source."""

    dtype: str
    width: int


@dataclass(frozen=True)
class ResultArena:
    """What a worker needs to write (and the parent to read) one dispatch's
    results through shared memory.

    The layout is fully determined by ``(kernel, num_sources, num_nodes)`` —
    both sides recompute it with :func:`_plane_layout` — so the descriptor
    stays a few dozen bytes however large the batch is.  ``name`` is the
    shared-memory segment the parent created (and owns: workers attach,
    write their chunk's rows, and close; only the parent ever unlinks).
    """

    name: str
    kernel: str
    num_sources: int
    num_nodes: int


def mask_width(num_nodes: int) -> int:
    """Bytes per packed compatible-set bitmap row (``ceil(n / 8)``)."""
    from repro.utils.bitset import mask_nbytes

    return mask_nbytes(num_nodes)


def _plane_specs(kernel: str, num_nodes: int) -> Tuple[_ResultPlane, ...]:
    """The per-source result layout of ``kernel`` on an ``n``-node snapshot."""
    if kernel == "csr_signed_bfs":
        return (
            _ResultPlane("<i4", num_nodes),  # lengths
            _ResultPlane("<i8", num_nodes),  # positive counts
            _ResultPlane("<i8", num_nodes),  # negative counts
        )
    if kernel in ("csr_path_lengths", "build_labels"):
        return (_ResultPlane("<i4", num_nodes),)
    if kernel == "csr_sbph":
        return (
            _ResultPlane("<i4", num_nodes),  # positive depths (UNREACHABLE = absent)
            _ResultPlane("<i4", num_nodes),  # negative depths
        )
    if kernel == "csr_compatible_masks":
        return (_ResultPlane("|u1", mask_width(num_nodes)),)
    raise KeyError(f"kernel {kernel!r} has no result-arena layout")


def supports(kernel: str) -> bool:
    """True iff ``kernel``'s results can ship through a result arena."""
    return kernel in _ARENA_KERNELS


_ARENA_KERNELS = frozenset(
    {
        "csr_signed_bfs",
        "csr_path_lengths",
        "build_labels",
        "csr_sbph",
        "csr_compatible_masks",
    }
)


def _plane_layout(kernel: str, num_sources: int, num_nodes: int):
    """``[(spec, byte offset, byte length), ...]`` plus the total arena size.

    Offsets are rounded up to 8-byte boundaries so the int64 planes map to
    aligned views whatever the source count times the int32 plane width.
    """
    import numpy as np

    layout = []
    offset = 0
    for spec in _plane_specs(kernel, num_nodes):
        offset = (offset + 7) & ~7
        nbytes = np.dtype(spec.dtype).itemsize * spec.width * num_sources
        layout.append((spec, offset, nbytes))
        offset += nbytes
    return layout, offset


def arena_nbytes(kernel: str, num_sources: int, num_nodes: int) -> int:
    """Total segment size one dispatch of ``kernel`` needs, in bytes."""
    return _plane_layout(kernel, num_sources, num_nodes)[1]


def map_planes(arena: ResultArena, buffer):
    """``(planes, base)``: the ``(k, width)`` views over an attached segment.

    ``base`` is the single flat uint8 array every plane (and therefore every
    decoded row) is a view of — it is the one object that exports the shared
    memory's buffer, which is what lets the parent hang the segment's
    lifetime off it with a ``weakref.finalize``.
    """
    import numpy as np

    base = np.frombuffer(buffer, dtype=np.uint8)
    layout, _total = _plane_layout(arena.kernel, arena.num_sources, arena.num_nodes)
    planes = []
    for spec, offset, nbytes in layout:
        planes.append(
            base[offset : offset + nbytes]
            .view(spec.dtype)
            .reshape(arena.num_sources, spec.width)
        )
    return planes, base


# ------------------------------------------------------------------ worker side


def write_chunk(
    arena: ResultArena, planes: List, start: int, payload, sources: Sequence, params: dict
) -> List:
    """Run ``arena.kernel`` over ``sources``, writing rows ``start + i``.

    Returns the compact per-source token list the worker ships back instead
    of the dense results (``True`` per completed row; ``None`` marks an int64
    overflow whose row the parent must resolve on the dict backend).
    """
    return _WRITERS[arena.kernel](planes, start, payload, sources, params)


def _write_signed_bfs(planes, start, csr, sources, params) -> List:
    from repro.signed.csr import DEFAULT_BATCH_CHUNK, signed_bfs_dense_batch_into

    stop = start + len(sources)
    return signed_bfs_dense_batch_into(
        csr,
        sources,
        planes[0][start:stop],
        planes[1][start:stop],
        planes[2][start:stop],
        chunk_size=params.get("lockstep_chunk") or DEFAULT_BATCH_CHUNK,
        skip_overflow=params.get("skip_overflow", True),
        lockstep_threshold=params.get("lockstep_threshold"),
    )


def _write_path_lengths(planes, start, csr, sources, params) -> List:
    from repro.signed.csr import (
        DEFAULT_BATCH_CHUNK,
        shortest_path_lengths_dense_batch_into,
    )

    stop = start + len(sources)
    return shortest_path_lengths_dense_batch_into(
        csr,
        sources,
        planes[0][start:stop],
        chunk_size=params.get("lockstep_chunk") or DEFAULT_BATCH_CHUNK,
        lockstep_threshold=params.get("lockstep_threshold"),
    )


def _write_sbph(planes, start, csr, sources, params) -> List:
    from repro.signed.csr import UNREACHABLE, balanced_heuristic_depths

    max_length = params.get("max_length")
    positive_plane, negative_plane = planes
    for row, source in enumerate(sources, start=start):
        positive_depths, negative_depths = balanced_heuristic_depths(
            csr, source, max_length=max_length
        )
        # Sentinel-filled dense rows: absent nodes stay UNREACHABLE, found
        # nodes carry their depth — the parent rebuilds the depth maps from
        # one flatnonzero scan per row.
        positive_plane[row].fill(UNREACHABLE)
        negative_plane[row].fill(UNREACHABLE)
        if positive_depths:
            positive_plane[row][list(positive_depths)] = list(positive_depths.values())
        if negative_depths:
            negative_plane[row][list(negative_depths)] = list(negative_depths.values())
    return [True] * len(sources)


def _write_compatible_masks(planes, start, csr, sources, params) -> List:
    # Delegates to the plain kernel so arena and pickled shipping produce the
    # very same packed bytes; a bitmap row is ceil(n/8) bytes, so the copy is
    # negligible next to the per-source traversal.
    from repro.exec.kernels import KERNELS

    rows = KERNELS["csr_compatible_masks"](csr, sources, params)
    tokens: List = []
    plane = planes[0]
    for row, packed in enumerate(rows, start=start):
        if packed is None:
            tokens.append(None)
            continue
        plane[row][:] = packed
        tokens.append(True)
    return tokens


_WRITERS: Dict[str, Callable] = {
    "csr_signed_bfs": _write_signed_bfs,
    "csr_path_lengths": _write_path_lengths,
    # The label build ships the same per-source distance rows.
    "build_labels": _write_path_lengths,
    "csr_sbph": _write_sbph,
    "csr_compatible_masks": _write_compatible_masks,
}


# ------------------------------------------------------------------ parent side


def decode_results(
    arena: ResultArena, shm, tokens: Sequence, release: Optional[Callable] = None
) -> List:
    """Materialise the dispatch's result list from the mapped arena.

    Each slot reproduces exactly what the plain kernel would have returned
    for that source — bitmap rows come back as zero-copy views into the
    segment, BFS triples and distance maps as per-row copies (they outlive
    the dispatch in LRU caches), dict-shaped results (SBPH depth maps) are
    rebuilt from their sentinel rows.  ``release(shm)`` is invoked
    automatically once the last
    decoded view is garbage-collected (the caller unlinks the name right
    after this returns, so nothing lingers in ``/dev/shm`` either way); the
    pool passes a closer that can defer past views dying inside reference
    cycles.
    """
    import weakref

    planes, base = map_planes(arena, shm.buf)
    decoder = _DECODERS[arena.kernel]
    results = [decoder(planes, position, token) for position, token in enumerate(tokens)]
    # `base` is the only exporter of the shared-memory buffer; every decoded
    # view keeps it alive through its .base chain, so the release fires
    # exactly when the last consumer (cache entry, result object) lets go.
    weakref.finalize(base, release if release is not None else _close_segment, shm)
    return results


def _close_segment(shm) -> None:
    try:  # pragma: no cover - exercised only at GC time
        shm.close()
    except Exception:
        pass


def _decode_signed_bfs(planes, position, token):
    if token is None:
        return None
    # Rows are copied out of the mapped segment: batch_bfs results live in
    # long-lived LRU caches, and a view would pin the whole k-row segment
    # (and defeat the cache's per-entry byte accounting) for as long as any
    # single row survived.  One memcpy per row is noise next to the pickling
    # round-trip this path replaces.
    return (
        planes[0][position].copy(),
        planes[1][position].copy(),
        planes[2][position].copy(),
    )


def _decode_path_lengths(planes, position, token):
    # Copied for the same reason as the BFS triples: distance maps are cached
    # (DistanceOracle._bfs_cache) far beyond the dispatch's lifetime.
    return planes[0][position].copy()


def _decode_sbph(planes, position, token):
    import numpy as np

    from repro.signed.csr import UNREACHABLE

    positive_row = planes[0][position]
    negative_row = planes[1][position]
    positive = {
        int(dense): int(positive_row[dense])
        for dense in np.flatnonzero(positive_row != UNREACHABLE)
    }
    negative = {
        int(dense): int(negative_row[dense])
        for dense in np.flatnonzero(negative_row != UNREACHABLE)
    }
    return positive, negative


def _decode_compatible_masks(planes, position, token):
    if token is None:
        return None
    return planes[0][position]


_DECODERS: Dict[str, Callable] = {
    "csr_signed_bfs": _decode_signed_bfs,
    "csr_path_lengths": _decode_path_lengths,
    "build_labels": _decode_path_lengths,
    "csr_sbph": _decode_sbph,
    "csr_compatible_masks": _decode_compatible_masks,
}
