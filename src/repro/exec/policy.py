"""The :class:`ExecutionPolicy`: one object for every execution knob.

Before this layer existed, the choices "which backend runs the per-source
kernels", "when does the lockstep batch pay", "how big may each cache grow"
were sprinkled across the relations, the distance oracle, the engine and the
experiment runners as loose keyword arguments (``backend="auto"``,
``bfs_cache_size=...``, ``batched=False``).  Adding a *parallelism* dimension
to that string plumbing would have made it unmaintainable, so all of it now
lives here:

* :class:`ExecutionPolicy` — a frozen, hashable bundle of backend choice,
  adaptive thresholds, worker-pool shape and cache budgets.  Every relation,
  oracle and engine holds exactly one and consults it instead of ad-hoc
  parameters.
* :func:`resolve_policy` — the shim that maps the legacy keyword arguments
  (which remain supported, see the README's deprecation note) onto a policy.
* :func:`executor_for` — policy in, executor out: a shared
  :class:`~repro.exec.serial.SerialExecutor` for serial policies, a
  process-pool executor (:mod:`repro.exec.pool`) for ``workers >= 2``, with a
  one-time-warning fallback to serial when pools cannot be created on the
  platform.

The module is importable without numpy (the CSR-specific thresholds default
to ``None`` = "the library constant", resolved lazily at the use site).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, Optional, Union

#: A cache-size knob: an explicit entry bound, ``None`` for unbounded, or
#: ``"auto"`` for the byte-aware bound scaled by graph size (the same type the
#: relations have always accepted — see :mod:`repro.utils.lru`).
CacheSize = Union[int, None, str]


class _PolicyDefault:
    """Sentinel for 'take this knob from the policy' in legacy signatures.

    ``None`` cannot play that role because it is a meaningful cache-size value
    (unbounded), so the legacy cache-size keywords default to this sentinel
    instead.
    """

    _instance: Optional["_PolicyDefault"] = None

    def __new__(cls) -> "_PolicyDefault":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<policy default>"


#: The sentinel instance legacy keyword arguments default to.
POLICY_DEFAULT = _PolicyDefault()

_VALID_BACKENDS = ("auto", "dict", "csr")

_VALID_DISTANCE_INDEX = ("auto", "labels", "bfs")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How per-source kernels are executed and how much their caches may hold.

    Instances are immutable and hashable; derive variants with
    :func:`dataclasses.replace` or :func:`resolve_policy`.

    Parameters
    ----------
    backend:
        ``"auto"`` (size- and diameter-adaptive), ``"dict"`` or ``"csr"`` —
        the kernel backend the SP* relations and the SBPH heuristic run on.
    batched:
        When false, every engine query runs the legacy per-pair code path
        (the reference mode the equivalence tests compare against).
    workers:
        ``0`` or ``1`` — serial execution (the default); ``>= 2`` — dispatch
        per-source kernel batches to a persistent pool of that many worker
        processes; ``-1`` — one worker per CPU.  Results are bit-identical to
        serial execution in every mode.
    chunk_size:
        Sources per worker task.  ``None`` derives a chunk size from the
        batch size and worker count (about four tasks per worker, so stragglers
        even out without drowning the batch in per-task IPC).
    min_parallel_sources:
        Batches smaller than this run in-process even under a pool policy —
        shipping a two-source batch to workers costs more than running it.
    result_arena:
        When true (the default), set-valued CSR kernel dispatches ship their
        dense results through a per-dispatch ``multiprocessing.shared_memory``
        *result arena* (workers write rows in place, the parent reads
        zero-copy views) instead of pickling O(n) arrays per source back
        through the pipe.  Results are bit-identical either way; turn it off
        to benchmark or to sidestep a platform's shared-memory limits.
    arena_budget_bytes:
        Upper bound on one dispatch's result-arena segment; a dispatch whose
        layout would exceed it falls back to pickled result shipping (still
        parallel).  ``0`` disables the check.  The default (256 MiB) admits a
        full 50k-node, 150-source BFS sweep with headroom.
    snapshot_store:
        ``None`` (the default) publishes snapshots to workers through
        ``multiprocessing.shared_memory`` segments.  A directory path
        switches publishing to *file-backed* mode: the parent saves the CSR
        snapshot once into that directory (:mod:`repro.signed.store` format)
        and workers ``numpy.memmap`` the file read-only — same
        ``(identity, generation)`` keying, same churn republish, same ledger
        cleanup, bit-identical results.  Use it to keep huge snapshots out
        of ``/dev/shm``, to share one page-cache copy across many worker
        generations, or to leave a warm store file behind for the next run.
    lockstep_node_threshold:
        Override for :data:`repro.signed.csr.LOCKSTEP_NODE_THRESHOLD`
        (``None`` keeps the library default): the graph size above which the
        multi-source kernels abandon the lockstep ``k x n`` batch for
        cache-resident per-source traversals.
    csr_auto_level_threshold:
        Override for
        :data:`repro.compatibility.shortest_path.CSR_AUTO_LEVEL_THRESHOLD`
        (``None`` keeps the library default): the probe eccentricity above
        which ``backend="auto"`` stays on the dict backend.
    distance_index:
        Whether :class:`~repro.compatibility.distance.DistanceOracle` may
        serve queries from the precomputed distance-label index
        (:mod:`repro.signed.labels`) instead of running a BFS.  ``"bfs"``
        (the default) never consults the index; ``"auto"`` consults it
        whenever the oracle would use the CSR backend anyway; ``"labels"``
        always consults it (degrading to the dict-BFS path with a one-time
        :class:`RuntimeWarning` when numpy is missing).  Batched queries
        build/refresh the index lazily per graph generation; per-pair
        queries only consult an index that is already fresh and fall back to
        exact BFS otherwise.  Answers are exact in every mode — landmark
        bounds are used only when provably tight.
    label_budget_bytes:
        Byte budget for the label planes.  An exact 2-hop build that would
        exceed it falls back to landmark sketches; the landmark row count is
        clamped to fit.  The default (64 MiB) holds exact labels for the 50k
        benchmark graph with headroom.
    compatible_cache_size / bfs_cache_size / result_cache_size /
    distance_cache_size / mask_cache_size:
        The per-source cache budgets previously passed to each layer
        individually (compatible sets, SP* BFS results, balanced-path search
        results, distance maps, engine rule masks).  Same semantics as
        before: an ``int`` bound, ``None`` for unbounded, ``"auto"`` for the
        byte-aware scaled bound.
    seed:
        Base seed for the deterministic per-chunk RNG seeding inside worker
        processes (kernels that draw randomness see the same stream for the
        same chunk regardless of which worker runs it or in which order
        chunks complete).
    """

    backend: str = "auto"
    batched: bool = True
    workers: int = 0
    chunk_size: Optional[int] = None
    min_parallel_sources: int = 4
    result_arena: bool = True
    arena_budget_bytes: int = 256 * 2**20
    snapshot_store: Optional[str] = None
    lockstep_node_threshold: Optional[int] = None
    csr_auto_level_threshold: Optional[int] = None
    distance_index: str = "bfs"
    label_budget_bytes: int = 64 * 2**20
    compatible_cache_size: CacheSize = "auto"
    bfs_cache_size: CacheSize = "auto"
    result_cache_size: CacheSize = "auto"
    distance_cache_size: CacheSize = "auto"
    mask_cache_size: CacheSize = "auto"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backend not in _VALID_BACKENDS:
            raise ValueError(
                f"backend must be one of {_VALID_BACKENDS}, got {self.backend!r}"
            )
        validate_workers(self.workers)
        if self.chunk_size is not None:
            validate_chunk_size(self.chunk_size)
        if self.min_parallel_sources < 1:
            raise ValueError(
                f"min_parallel_sources must be >= 1, got {self.min_parallel_sources}"
            )
        if self.arena_budget_bytes < 0:
            raise ValueError(
                "arena_budget_bytes must be >= 0 (0 disables the budget), "
                f"got {self.arena_budget_bytes}"
            )
        if self.snapshot_store is not None:
            validate_snapshot_store(self.snapshot_store)
        if self.distance_index not in _VALID_DISTANCE_INDEX:
            raise ValueError(
                f"distance_index must be one of {_VALID_DISTANCE_INDEX}, "
                f"got {self.distance_index!r}"
            )
        if (
            not isinstance(self.label_budget_bytes, int)
            or isinstance(self.label_budget_bytes, bool)
            or self.label_budget_bytes < 1
        ):
            raise ValueError(
                "label_budget_bytes must be a positive byte budget for the "
                f"distance-label planes; got {self.label_budget_bytes!r}"
            )

    # ------------------------------------------------------------- resolution

    def resolved_workers(self) -> int:
        """The effective worker count (``-1`` resolves to the CPU count)."""
        if self.workers == -1:
            import os

            return max(1, os.cpu_count() or 1)
        return max(1, self.workers)

    @property
    def parallel(self) -> bool:
        """True iff this policy dispatches kernel batches to a worker pool."""
        return self.resolved_workers() > 1

    def executor(self):
        """The executor serving this policy (see :func:`executor_for`)."""
        return executor_for(self)


def resolve_policy(
    policy: Optional[ExecutionPolicy] = None, **overrides
) -> ExecutionPolicy:
    """Merge legacy keyword arguments onto an :class:`ExecutionPolicy`.

    ``policy=None`` starts from the default policy.  An override equal to
    :data:`POLICY_DEFAULT` keeps the policy's value, as does ``None`` for the
    non-cache knobs (``backend``, ``batched``, ...) where ``None`` has no
    legacy meaning; anything else replaces the field.  Cache-size knobs use
    the sentinel precisely so that an explicit legacy ``None`` (= unbounded)
    still gets through.  This is the single shim behind every deprecated
    per-layer keyword, so "legacy kwarg wins over the policy field when
    explicitly given" holds uniformly.
    """
    base = policy if policy is not None else ExecutionPolicy()
    updates = {}
    for name, value in overrides.items():
        if value is POLICY_DEFAULT:
            continue
        if value is None and not name.endswith("_cache_size"):
            continue
        updates[name] = value
    # replace() re-runs ExecutionPolicy.__post_init__, which is the single
    # validation point for every knob — overrides included.
    return replace(base, **updates) if updates else base


def validate_workers(workers, name: str = "workers") -> None:
    """Raise :class:`ValueError` unless ``workers`` is a legal worker count.

    The single source of the rule and its message: every construction path —
    direct :class:`ExecutionPolicy` instantiation, :func:`resolve_policy`
    overrides (the funnel behind the experiment configs and legacy kwargs)
    and the CLI's parse-time validators — goes through it, so a bad value
    dies with one explanation of what the knob means instead of an opaque
    ``ValueError`` surfacing from ``multiprocessing`` at first dispatch.
    """
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < -1:
        raise ValueError(
            f"{name} must be -1 (one per CPU), 0 or 1 (serial), or >= 2 "
            f"(pool size); got {workers!r}"
        )


def validate_chunk_size(chunk_size, name: str = "chunk_size") -> None:
    """Raise :class:`ValueError` unless ``chunk_size`` is a legal task size."""
    if not isinstance(chunk_size, int) or isinstance(chunk_size, bool) or chunk_size < 1:
        raise ValueError(
            f"{name} must be a positive number of sources per worker "
            f"task (or omitted to derive one per dispatch); got {chunk_size!r}"
        )


def validate_snapshot_store(snapshot_store, name: str = "snapshot_store") -> None:
    """Raise :class:`ValueError` unless ``snapshot_store`` names a usable directory.

    The directory must already exist (publishing must not silently create
    trees on mistyped paths) and be a directory — the same single-source
    rule-and-message discipline as :func:`validate_workers`, shared by
    policy construction and the CLI's ``--snapshot-store`` validators.
    """
    import os

    if not isinstance(snapshot_store, str) or not snapshot_store:
        raise ValueError(
            f"{name} must be the path of an existing directory to publish "
            f"snapshot files into; got {snapshot_store!r}"
        )
    if not os.path.isdir(snapshot_store):
        raise ValueError(
            f"{name} directory does not exist: {snapshot_store!r} (create it "
            "first; the pool will not create store directories implicitly)"
        )


# --------------------------------------------------------------------- lookup

#: Process-pool executors keyed by policy (each wraps a pool shared per
#: worker count); serial policies all share one stateless executor.
_EXECUTORS: Dict[ExecutionPolicy, object] = {}

#: Set after pool creation failed once: later pool policies degrade to serial
#: without retrying (and without re-warning).
_POOLS_UNAVAILABLE = False


def executor_for(policy: ExecutionPolicy):
    """Return the executor that serves ``policy``.

    Serial policies (``workers <= 1``) share one
    :class:`~repro.exec.serial.SerialExecutor`.  Pool policies get a
    :class:`~repro.exec.pool.ProcessPoolExecutor` bound to the policy (pools
    themselves are shared per worker count).  If the platform cannot run a
    pool — no ``multiprocessing.shared_memory``, no process support — the
    policy degrades to the serial executor with a one-time
    :class:`RuntimeWarning`, mirroring the numpy-free backend degradation.
    """
    global _POOLS_UNAVAILABLE
    from repro.exec.serial import serial_executor

    if not policy.parallel or _POOLS_UNAVAILABLE:
        return serial_executor()
    executor = _EXECUTORS.get(policy)
    if executor is None or getattr(executor, "closed", False):
        from repro.exec.pool import ExecutorUnavailable, ProcessPoolExecutor

        try:
            executor = ProcessPoolExecutor(policy)
        except ExecutorUnavailable as error:
            _POOLS_UNAVAILABLE = True
            warnings.warn(
                f"process pools are unavailable on this platform ({error}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return serial_executor()
        _EXECUTORS[policy] = executor
    return executor


def reset_executors() -> None:
    """Close every pool and forget cached executors (tests, forked servers)."""
    global _POOLS_UNAVAILABLE
    from repro.exec import pool

    _EXECUTORS.clear()
    _POOLS_UNAVAILABLE = False
    pool._DEGRADE_WARNED.clear()
    pool.shutdown_pools()
