"""The process-pool executor: per-source kernels fanned out over workers.

The per-source traversals behind the Table-2 sweeps and the engine's ``warm``
paths are embarrassingly parallel — every source's BFS/search is independent —
but they all read one shared graph snapshot.  The executor here makes that
shape explicit:

* **Snapshot shipping.**  A frozen :class:`~repro.signed.csr.CSRSignedGraph`
  is published once per (object, generation) as three raw arrays in
  ``multiprocessing.shared_memory`` segments; workers map the segments and
  build zero-copy ``numpy`` views — no pickling of the arrays, no node
  objects (kernels work on dense ids; see :mod:`repro.exec.kernels`).  With
  the ``snapshot_store`` policy knob set, publication is *file-backed*
  instead: the snapshot is saved once into that directory in the
  :mod:`repro.signed.store` format and workers ``numpy.memmap`` the file
  read-only — same keying, same cleanup ledger discipline, bit-identical
  results.  Dict payloads (:class:`~repro.signed.graph.SignedGraph`) fall
  back to a pickled copy shipped through a shared-memory blob, once per
  generation.
* **Generation checking.**  A publication is keyed by the payload's identity
  *and* its ``generation``; a mutated graph (or a fresh snapshot after a
  churn batch) republishes automatically, so workers can never serve results
  against a stale snapshot.
* **Result shipping.**  Set-valued sweeps used to pickle O(n) result arrays
  back to the parent per source; the kernels in
  :data:`repro.exec.arena._ARENA_KERNELS` now write their dense results into
  a per-dispatch ``multiprocessing.shared_memory`` *result arena*
  (chunk-strided rows, written through the ``*_into`` kernel variants) and
  return only compact per-source tokens.  The parent decodes zero-copy row
  views and unlinks the segment immediately; every created segment sits on a
  parent-owned ledger flushed by :func:`shutdown_pools`, so crashed
  dispatches cannot leak ``/dev/shm`` entries.  See :mod:`repro.exec.arena`.
* **Deterministic merging.**  Sources are split into index-ordered chunks,
  dispatched with :meth:`multiprocessing.pool.Pool.map` (which returns
  results in task order regardless of completion order), and concatenated —
  so the merged result list is bit-identical to a serial run however the
  chunks were scheduled.  Each chunk additionally seeds the worker's ``random``
  module from ``(policy seed, chunk index)``, so even randomness-using kernels
  are reproducible and worker-assignment-independent.  The distance-label
  build (:mod:`repro.signed.labels`) rides this same machinery: its
  ``build_labels`` kernel is dispatched over dense source chunks and ships
  landmark BFS rows through the result arena like any other sweep.
* **Graceful degradation.**  If pools or shared memory are unavailable on the
  platform (or a payload cannot be shipped), execution falls back to the
  in-process serial path with a one-time :class:`RuntimeWarning` — mirroring
  the numpy-free backend degradation.  Results are unchanged either way.

Pools are persistent and shared per worker count; they shut down atexit or
via :func:`shutdown_pools`.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import random
import warnings
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec import arena as arena_module
from repro.exec.arena import ResultArena
from repro.exec.kernels import KERNELS
from repro.exec.policy import ExecutionPolicy
from repro.exec.serial import Executor, serial_executor

#: Test hook: set to True to simulate a platform without shared memory.
_DISABLE_SHARED_MEMORY = False

#: Parent-side bound on simultaneously published payloads per pool (older
#: publications are unlinked and republished on demand).
_PUBLISH_BOUND = 4

#: Worker-side bound on cached attached payloads.
_WORKER_CACHE_BOUND = 4


class ExecutorUnavailable(RuntimeError):
    """Raised when a worker pool (or a payload shipment) cannot be set up."""


#: Parent-owned ledger of every shared-memory segment this process created
#: and has not yet unlinked — snapshot publications and in-flight result
#: arenas alike.  Normal operation adds and removes entries symmetrically;
#: :func:`shutdown_pools` flushes whatever is left, so a dispatch that died
#: between segment creation and its cleanup (worker crash, interrupt) cannot
#: leave stale ``/dev/shm`` entries behind once the pools are torn down.
_SEGMENT_LEDGER: Dict[str, object] = {}

#: Already-unlinked segments whose mapping could not be closed yet because a
#: decoded zero-copy view still exports their buffer (possible when a cache
#: full of views dies inside a reference cycle, where the GC may run the
#: arena finalizer before the views' deallocation).  Holding the handle here
#: keeps ``SharedMemory.__del__`` from raising mid-collection; the sweep
#: below retries the close once the exports are really gone.
_RETIRED_SEGMENTS: List[object] = []


def _close_or_retire(shm) -> None:
    """Close a segment's mapping now, or park it for a later retry."""
    try:
        shm.close()
    except BufferError:  # a decoded view still maps the buffer
        _RETIRED_SEGMENTS.append(shm)
    except Exception:  # pragma: no cover - best-effort cleanup
        pass


def _sweep_retired_segments() -> None:
    """Retry closing parked segment mappings whose views have since died."""
    still_open: List[object] = []
    for shm in _RETIRED_SEGMENTS:
        try:
            shm.close()
        except BufferError:
            still_open.append(shm)
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    _RETIRED_SEGMENTS[:] = still_open


def _ledger_discard(shm, unlink: bool = True) -> None:
    """Drop ``shm`` from the ledger and release it (best-effort)."""
    _SEGMENT_LEDGER.pop(shm.name, None)
    if unlink:
        try:
            shm.unlink()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    _close_or_retire(shm)


def _flush_segment_ledger() -> None:
    """Unlink every segment still on the ledger (crash/interrupt leftovers)."""
    for shm in list(_SEGMENT_LEDGER.values()):
        _ledger_discard(shm)
    _sweep_retired_segments()


#: Parent-owned ledger of snapshot-store files published for workers and not
#: yet unlinked — the file-backed counterpart of :data:`_SEGMENT_LEDGER`.
#: Normal operation removes entries when a publication is released;
#: :func:`shutdown_pools` flushes the rest, so a crashed dispatch cannot
#: strand ``*.store`` files in the policy's ``snapshot_store`` directory.
_STORE_FILE_LEDGER: Dict[str, None] = {}


def _store_discard(path: str, unlink: bool = True) -> None:
    """Drop ``path`` from the store-file ledger and unlink it (best-effort)."""
    _STORE_FILE_LEDGER.pop(path, None)
    if unlink:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def _flush_store_ledger() -> None:
    """Unlink every published store file still on the ledger, plus any
    in-flight store temp files (crash/interrupt leftovers)."""
    import sys

    for path in list(_STORE_FILE_LEDGER):
        _store_discard(path)
    # sys.modules lookup instead of an import: this also runs atexit, where
    # importing is fragile — and if the store module was never imported, no
    # temp file can exist either.
    store = sys.modules.get("repro.signed.store")
    if store is not None:
        store.flush_temp_files()


#: Degradation stages already warned about, shared across every executor
#: instance in the process.  A freshly constructed relation (hence executor)
#: on a pool-less or numpy-free host must not re-warn on every construction —
#: one RuntimeWarning per failure mode per process, like the numpy-free
#: backend warning.  :func:`repro.exec.policy.reset_executors` clears it.
_DEGRADE_WARNED: set = set()


def _require_shared_memory():
    """Import ``multiprocessing.shared_memory`` or explain why we cannot."""
    if _DISABLE_SHARED_MEMORY:
        raise ExecutorUnavailable("multiprocessing.shared_memory is disabled")
    try:
        from multiprocessing import shared_memory
    except ImportError as error:  # pragma: no cover - platform-specific
        raise ExecutorUnavailable(
            f"multiprocessing.shared_memory is unavailable: {error}"
        ) from error
    return shared_memory


# ----------------------------------------------------------------- descriptors


@dataclass(frozen=True)
class _ShmArray:
    """One shared-memory segment holding a flat array (or a pickle blob)."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    size: int = 0  # used bytes for pickle blobs (segments round up)


@dataclass(frozen=True)
class SnapshotDescriptor:
    """What a worker needs to reconstruct a shipped payload.

    ``kind`` is ``"csr"`` (three array segments + node count), ``"pickle"``
    (one blob segment holding a pickled :class:`SignedGraph`), or ``"store"``
    (no segments: ``store_path`` names a :mod:`repro.signed.store` file the
    worker ``numpy.memmap``\\ s read-only — the file-backed publish mode of
    the ``snapshot_store`` policy knob).  The ``publish_id`` is unique per
    publication, which is what worker-side caches key on — a republished
    (mutated) payload always gets a fresh id.
    """

    publish_id: int
    kind: str
    segments: Tuple[_ShmArray, ...]
    num_nodes: int = 0
    store_path: Optional[str] = None


# ------------------------------------------------------------------ worker side

#: Worker-process cache: publish_id -> (payload object, open shm handles).
_WORKER_PAYLOADS: "OrderedDict[int, Tuple[object, list]]" = OrderedDict()

#: Attachments whose buffers may still be referenced by evicted payloads; kept
#: open (bounded by _WORKER_CACHE_BOUND evictions per snapshot size class).
_RETIRED_HANDLES: List[object] = []


def _init_worker() -> None:
    """Pool initializer: keep workers quiet on Ctrl-C (the parent handles it)."""
    import signal

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def _untrack_attachment(shm) -> None:
    """Stop a spawn-mode worker's resource tracker from owning an attachment.

    The parent process owns every segment (it created it and unlinks it).
    Under ``spawn`` each worker runs its *own* resource tracker, and the
    attach-time registration would make that tracker unlink the segment when
    the worker exits — out from under the parent.  Under ``fork`` (and
    ``forkserver``) the tracker process is shared with the parent, duplicate
    registrations collapse in its name set, and unregistering here would
    instead erase the parent's accounting — so we leave it alone.
    """
    try:  # pragma: no cover - accounting only, behaviourally invisible
        import multiprocessing as mp
        from multiprocessing import resource_tracker

        if mp.get_start_method(allow_none=True) != "spawn":
            return
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _attach_payload(descriptor: SnapshotDescriptor):
    """Reconstruct (or fetch from cache) the payload behind ``descriptor``."""
    cached = _WORKER_PAYLOADS.get(descriptor.publish_id)
    if cached is not None:
        _WORKER_PAYLOADS.move_to_end(descriptor.publish_id)
        return cached[0]
    if descriptor.kind == "store":
        # File-backed publication: map the published store file read-only.
        # The node table is skipped — like the shm path, workers get dense
        # placeholder nodes and an empty index; kernels touch only the flat
        # arrays.  The memmaps keep the file readable even after the parent
        # unlinks it on release (POSIX semantics, same as shm segments).
        from repro.signed.store import load_snapshot

        payload = load_snapshot(descriptor.store_path, mmap=True, node_table=False)
        _WORKER_PAYLOADS[descriptor.publish_id] = (payload, [])
        while len(_WORKER_PAYLOADS) > _WORKER_CACHE_BOUND:
            _evict_oldest_payload()
        return payload
    shared_memory = _require_shared_memory()
    if descriptor.kind == "csr":
        import numpy as np

        from repro.signed.csr import CSRSignedGraph

        handles = []
        arrays = []
        for spec in descriptor.segments:
            shm = shared_memory.SharedMemory(name=spec.name)
            _untrack_attachment(shm)
            handles.append(shm)
            arrays.append(
                np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
            )
        indptr, indices, signs = arrays
        # Dense placeholder nodes: the csr_* kernels only ever touch the flat
        # arrays and dense ids, so the worker never needs the real node
        # objects (which may not even be picklable).
        payload = CSRSignedGraph(
            indptr,
            indices,
            signs,
            nodes=list(range(descriptor.num_nodes)),
            index={},
        )
    else:
        spec = descriptor.segments[0]
        shm = shared_memory.SharedMemory(name=spec.name)
        _untrack_attachment(shm)
        payload = pickle.loads(bytes(shm.buf[: spec.size]))
        shm.close()
        handles = []
    _WORKER_PAYLOADS[descriptor.publish_id] = (payload, handles)
    while len(_WORKER_PAYLOADS) > _WORKER_CACHE_BOUND:
        _evict_oldest_payload()
    return payload


def _evict_oldest_payload() -> None:
    """Drop the least-recently-used cached payload, closing its attachments."""
    _, (_old_payload, old_handles) = _WORKER_PAYLOADS.popitem(last=False)
    for handle in old_handles:
        try:
            handle.close()
        except BufferError:  # a stray view still references the buffer
            _RETIRED_HANDLES.append(handle)


def _chunk_seed(base_seed: int, chunk_index: int) -> int:
    """Deterministic per-chunk RNG seed, independent of worker assignment."""
    return (1_000_003 * (base_seed + 1) + chunk_index) & 0x7FFF_FFFF


def _run_chunk(task):
    """Worker entry point: attach the payload, seed, run one kernel chunk.

    With a :class:`~repro.exec.arena.ResultArena` attached to the task, the
    chunk's dense results are written straight into the shared segment
    (chunk-strided rows starting at ``start``) and only the compact token
    list crosses the pipe; without one, the plain kernel's results are
    returned (pickled) as before.
    """
    descriptor, kernel_name, sources, params, chunk_index, base_seed, arena, start = task
    payload = _attach_payload(descriptor)
    random.seed(_chunk_seed(base_seed, chunk_index))
    if arena is None:
        return KERNELS[kernel_name](payload, sources, params)
    return _run_arena_chunk(arena, payload, sources, params, start)


def _run_arena_chunk(arena: ResultArena, payload, sources, params, start: int):
    """Attach the dispatch's result arena and write this chunk's rows."""
    shared_memory = _require_shared_memory()
    shm = shared_memory.SharedMemory(name=arena.name)
    _untrack_attachment(shm)
    try:
        planes, base = arena_module.map_planes(arena, shm.buf)
        tokens = arena_module.write_chunk(arena, planes, start, payload, sources, params)
        del planes, base  # release the buffer exports before closing
        return tokens
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a writer kept a stray view
            _RETIRED_HANDLES.append(shm)


# ------------------------------------------------------------------ parent side


class _Published:
    """Parent-side record of one shipped payload.

    ``store_dir`` records which ``snapshot_store`` setting the publication
    was built under (``None`` = shared memory): executors with different
    settings share one pool handle, and a publication is only reused by an
    executor whose mode matches — otherwise it is released and rebuilt.
    """

    __slots__ = ("descriptor", "handles", "generation", "ref", "store_dir")

    def __init__(self, descriptor, handles, generation, ref, store_dir=None) -> None:
        self.descriptor = descriptor
        self.handles = handles
        self.generation = generation
        self.ref = ref
        self.store_dir = store_dir


class _PoolHandle:
    """One persistent worker pool plus its published-payload registry.

    Handles are shared per worker count across every
    :class:`ProcessPoolExecutor` bound to a policy with that count, so a
    relation, its oracle and its engine all ship each snapshot exactly once.
    """

    def __init__(self, workers: int) -> None:
        _require_shared_memory()  # fail fast before forking anything
        import multiprocessing as mp

        try:
            # Start the parent's resource tracker *before* forking workers:
            # forked workers then inherit it, so their attach-time
            # registrations land in the tracker that also sees the parent's
            # create/unlink — one shared ledger instead of per-worker
            # trackers that would mis-report the parent's segments as leaked.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is an optimisation here
            pass
        try:
            context = mp.get_context()
            self.pool = context.Pool(processes=workers, initializer=_init_worker)
        except (ImportError, OSError, ValueError) as error:
            raise ExecutorUnavailable(f"cannot start a worker pool: {error}") from error
        self.workers = workers
        self.closed = False
        self.published: Dict[int, _Published] = {}
        self.publish_order: deque = deque()
        #: id(payload) -> weakref of payloads whose shipment failed (e.g.
        #: unpicklable nodes); they run serially without re-warning.  The
        #: weakref guards against CPython id reuse: a *new* object at a
        #: recycled address must not inherit the failure.
        self.failed_payloads: Dict[int, Optional[weakref.ref]] = {}
        self._next_publish_id = 0
        #: Result arenas allocated over this pool's lifetime (introspection).
        self.arenas_created = 0

    def mark_failed(self, payload) -> None:
        """Remember that ``payload`` cannot be shipped (serial from now on)."""
        key = id(payload)
        try:
            ref: Optional[weakref.ref] = weakref.ref(
                payload, lambda _ref, key=key: self.failed_payloads.pop(key, None)
            )
        except TypeError:  # pragma: no cover - non-weakrefable payload type
            ref = None
        self.failed_payloads[key] = ref

    def is_failed(self, payload) -> bool:
        """True iff this very object (not a recycled id) failed to ship."""
        key = id(payload)
        if key not in self.failed_payloads:
            return False
        ref = self.failed_payloads[key]
        if ref is None:
            return True
        if ref() is payload:
            return True
        # Stale entry surviving a not-yet-fired callback: drop it.
        self.failed_payloads.pop(key, None)
        return False

    # ------------------------------------------------------------- publishing

    def publish(self, payload, store_dir: Optional[str] = None) -> SnapshotDescriptor:
        """Ship ``payload`` to the workers (reusing a live publication).

        A publication is reused only while the payload object is the same,
        its ``generation`` is unchanged *and* the publish mode matches — a
        churn batch on a :class:`SignedGraph`, or the fresh snapshot it
        produces, republishes automatically (the generation check of the
        tentpole), and so does a policy switch between shared-memory and
        file-backed (``store_dir``) publishing.
        """
        key = id(payload)
        generation = getattr(payload, "generation", None)
        entry = self.published.get(key)
        if (
            entry is not None
            and entry.ref() is payload
            and entry.generation == generation
            and entry.store_dir == store_dir
        ):
            return entry.descriptor
        if entry is not None:
            self.release(key)
        try:
            descriptor, handles = self._build(payload, store_dir)
        except ExecutorUnavailable:
            raise
        except Exception as error:
            raise ExecutorUnavailable(f"cannot ship payload to workers: {error}") from error
        self.published[key] = _Published(
            descriptor,
            handles,
            generation,
            weakref.ref(payload, lambda _ref, key=key: self.release(key)),
            store_dir=store_dir,
        )
        # Invariant: publish_order holds each *live* key exactly once, oldest
        # publish first.  A republish (same object, new generation) moves its
        # key to the back instead of duplicating it, and keys whose
        # publication died (weakref callback) are dropped — so the bound below
        # counts live publications, never the one just created.
        if key in self.publish_order:
            self.publish_order.remove(key)
        self.publish_order.append(key)
        if len(self.publish_order) > len(self.published):
            self.publish_order = deque(
                k for k in self.publish_order if k in self.published
            )
        while len(self.publish_order) > _PUBLISH_BOUND:
            self.release(self.publish_order.popleft())
        return descriptor

    def _build(
        self, payload, store_dir: Optional[str] = None
    ) -> Tuple[SnapshotDescriptor, list]:
        publish_id = self._next_publish_id
        self._next_publish_id += 1
        from repro.signed.graph import SignedGraph

        if store_dir is not None and not isinstance(payload, SignedGraph):
            # File-backed publication: persist the CSR snapshot once into the
            # policy's store directory; workers memmap it read-only.  The
            # file joins the store-file ledger the moment it exists, so even
            # a dispatch that dies before release cannot strand it past
            # shutdown_pools().  Save failures surface as ExecutorUnavailable
            # through publish()'s wrapper → the usual serial degradation.
            # (Dict payloads keep the pickle-blob path: the store format is
            # CSR-specific.)
            from repro.signed.labels import snapshot_labels_for
            from repro.signed.store import save_snapshot

            path = os.path.join(
                store_dir, f"snapshot-{os.getpid()}-{publish_id}.store"
            )
            # Carry the snapshot's label index (if an oracle built one) as
            # the .store v2 label section: workers and later cold starts load
            # it from the file instead of rebuilding.
            save_snapshot(payload, path, labels=snapshot_labels_for(payload))
            _STORE_FILE_LEDGER[path] = None
            descriptor = SnapshotDescriptor(
                publish_id=publish_id,
                kind="store",
                segments=(),
                num_nodes=payload.number_of_nodes(),
                store_path=path,
            )
            return descriptor, []
        shared_memory = _require_shared_memory()
        if isinstance(payload, SignedGraph):
            # copy() strips the CSR cache, delta log and touched-node maps —
            # workers only need the adjacency (same dict insertion order, so
            # dict-kernel traversal order is bit-identical to the parent's).
            blob = pickle.dumps(payload.copy(), protocol=pickle.HIGHEST_PROTOCOL)
            # Dict kernels receive *sources pickled per task*, so they only
            # work when unpickled node copies compare equal to the originals
            # (value semantics: ints, strings, tuples, value dataclasses).
            # Nodes with identity-based __eq__/__hash__ pickle fine but would
            # miss every lookup inside the worker — probe a sample and refuse
            # the shipment so the policy degrades to serial instead.
            roundtrip = pickle.loads(blob)
            import itertools

            for node in itertools.islice(payload, 16):
                if node not in roundtrip:
                    raise ExecutorUnavailable(
                        "graph nodes do not survive pickling with value "
                        f"equality (e.g. {node!r}); dict-backend pool "
                        "execution needs value-semantic nodes"
                    )
            shm = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
            _SEGMENT_LEDGER[shm.name] = shm
            shm.buf[: len(blob)] = blob
            descriptor = SnapshotDescriptor(
                publish_id=publish_id,
                kind="pickle",
                segments=(_ShmArray(shm.name, (), "B", len(blob)),),
            )
            return descriptor, [shm]
        # Anything else is a CSR snapshot: ship the three flat arrays zero-copy.
        import numpy as np

        segments = []
        handles = []
        for array in (payload.indptr, payload.indices, payload.signs):
            array = np.ascontiguousarray(array)
            shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
            _SEGMENT_LEDGER[shm.name] = shm
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[...] = array
            del view
            segments.append(_ShmArray(shm.name, array.shape, array.dtype.str))
            handles.append(shm)
        descriptor = SnapshotDescriptor(
            publish_id=publish_id,
            kind="csr",
            segments=tuple(segments),
            num_nodes=payload.number_of_nodes(),
        )
        return descriptor, handles

    def release(self, key: int) -> None:
        """Unlink one publication (workers keep their mapped copies working)."""
        entry = self.published.pop(key, None)
        if entry is None:
            return
        for shm in entry.handles:
            _ledger_discard(shm)
        path = entry.descriptor.store_path
        if path is not None:
            _store_discard(path)

    # ----------------------------------------------------------- result arenas

    def create_arena(
        self, kernel: str, num_sources: int, num_nodes: int, budget: int
    ) -> Tuple[ResultArena, object]:
        """Allocate the shared-memory result segment for one dispatch.

        The segment goes on the parent-owned ledger immediately — before any
        worker sees its name — so even a dispatch that dies between creation
        and cleanup is flushed by :func:`shutdown_pools`.  Raises
        :class:`ExecutorUnavailable` when the layout exceeds ``budget`` bytes
        (``0`` disables the check) or the platform cannot allocate; callers
        then fall back to pickled result shipping, not to serial execution.
        """
        shared_memory = _require_shared_memory()
        size = arena_module.arena_nbytes(kernel, num_sources, num_nodes)
        if budget and size > budget:
            raise ExecutorUnavailable(
                f"result arena of {size} bytes exceeds the "
                f"{budget}-byte arena budget"
            )
        try:
            shm = shared_memory.SharedMemory(create=True, size=max(1, size))
        except OSError as error:
            raise ExecutorUnavailable(f"cannot allocate a result arena: {error}") from error
        _SEGMENT_LEDGER[shm.name] = shm
        self.arenas_created += 1
        return ResultArena(
            name=shm.name, kernel=kernel, num_sources=num_sources, num_nodes=num_nodes
        ), shm

    def release_all(self) -> None:
        """Unlink every publication (next dispatch republishes)."""
        for key in list(self.published):
            self.release(key)

    # --------------------------------------------------------------- shutdown

    def shutdown(self) -> None:
        """Terminate the pool and unlink every shared-memory segment."""
        if self.closed:
            return
        self.closed = True
        self.release_all()
        try:
            self.pool.terminate()
            self.pool.join()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


_POOL_HANDLES: Dict[int, _PoolHandle] = {}


def _shared_pool_handle(workers: int) -> _PoolHandle:
    """The persistent pool of ``workers`` processes (created on first use)."""
    handle = _POOL_HANDLES.get(workers)
    if handle is None or handle.closed:
        handle = _PoolHandle(workers)
        _POOL_HANDLES[workers] = handle
    return handle


def shutdown_pools() -> None:
    """Terminate every pool and unlink all shared memory (atexit-safe).

    Besides the per-pool teardown, this flushes the parent-owned segment
    ledger — the safety net for segments whose dispatch never reached its own
    cleanup (a worker that died mid-``Pool.map``, an interrupt between arena
    creation and decode), so no stale ``/dev/shm`` entries survive it.
    """
    for handle in list(_POOL_HANDLES.values()):
        handle.shutdown()
    _POOL_HANDLES.clear()
    _flush_segment_ledger()
    _flush_store_ledger()


atexit.register(shutdown_pools)


class ProcessPoolExecutor(Executor):
    """Dispatch kernel batches over a persistent pool of worker processes.

    Bound to one :class:`~repro.exec.policy.ExecutionPolicy` (for worker
    count, chunk size, dispatch threshold and seed); the underlying OS pool
    and the published snapshots are shared across executors with the same
    worker count.  Every result list is bit-identical to
    :class:`~repro.exec.serial.SerialExecutor` on the same inputs — the pool
    only changes *where* the pure kernels run.
    """

    def __init__(self, policy: ExecutionPolicy) -> None:
        self._policy = policy
        self.workers = policy.resolved_workers()
        self._handle = _shared_pool_handle(self.workers)

    @property
    def closed(self) -> bool:
        """True once the underlying pool has been shut down."""
        return self._handle.closed

    @property
    def uses_result_arena(self) -> bool:
        """Whether eligible dispatches ship results through shared memory."""
        return self._policy.result_arena

    def _degrade(self, stage: str, error: Exception) -> None:
        # The seen-set is module-level (not per executor): every freshly built
        # relation constructs its own executor, and a degraded host would
        # otherwise re-warn once per relation instead of once per process.
        if stage in _DEGRADE_WARNED:
            return
        _DEGRADE_WARNED.add(stage)
        warnings.warn(
            f"parallel execution degraded to serial ({stage}: {error})",
            RuntimeWarning,
            stacklevel=4,
        )

    def map_kernel(
        self,
        kernel: str,
        payload,
        sources: Sequence,
        params: Optional[dict] = None,
    ) -> List:
        source_list = list(sources)
        if not source_list:
            return []
        handle = self._handle
        if (
            handle.closed
            or len(source_list) < max(2, self._policy.min_parallel_sources)
            or handle.is_failed(payload)
        ):
            return serial_executor().map_kernel(kernel, payload, source_list, params)
        try:
            descriptor = handle.publish(
                payload, store_dir=self._policy.snapshot_store
            )
        except ExecutorUnavailable as error:
            handle.mark_failed(payload)
            self._degrade("publish", error)
            return serial_executor().map_kernel(kernel, payload, source_list, params)
        # Set-valued CSR kernels ship their dense results through a
        # shared-memory arena instead of pickled arrays: one segment per
        # dispatch, chunk-strided rows, compact tokens over the pipe.  Arena
        # failures (budget, allocation) fall back to pickled shipping — the
        # dispatch stays parallel and the results are identical either way.
        arena = arena_shm = None
        if (
            self._policy.result_arena
            and descriptor.kind in ("csr", "store")
            and arena_module.supports(kernel)
        ):
            try:
                arena, arena_shm = handle.create_arena(
                    kernel,
                    len(source_list),
                    descriptor.num_nodes,
                    self._policy.arena_budget_bytes,
                )
            except ExecutorUnavailable:
                arena = arena_shm = None
        chunk = self._policy.chunk_size or max(
            1, math.ceil(len(source_list) / (self.workers * 4))
        )
        shared_params = dict(params or {})
        tasks = [
            (
                descriptor,
                kernel,
                source_list[start : start + chunk],
                shared_params,
                index,
                self._policy.seed,
                arena,
                start,
            )
            for index, start in enumerate(range(0, len(source_list), chunk))
        ]
        try:
            # Pool.map returns results in *task* order whatever the completion
            # order, so the concatenation below is deterministic by design.
            chunk_results = handle.pool.map(_run_chunk, tasks, chunksize=1)
        except (OSError, EOFError) as error:
            if arena_shm is not None:
                _ledger_discard(arena_shm)
            handle.shutdown()
            self._degrade("dispatch", error)
            return serial_executor().map_kernel(kernel, payload, source_list, params)
        except BaseException:
            # Worker exceptions (and interrupts) propagate, but the dispatch's
            # arena segment must not outlive it — without this, a kernel crash
            # mid-map leaked the segment until process exit.
            if arena_shm is not None:
                _ledger_discard(arena_shm)
            raise
        flat = [result for chunk_result in chunk_results for result in chunk_result]
        if arena is None:
            return flat
        _sweep_retired_segments()
        results = arena_module.decode_results(
            arena, arena_shm, flat, release=_close_or_retire
        )
        # Decoded: drop the name from /dev/shm right away (the mapping stays
        # readable until the last decoded view dies; see decode_results).
        _SEGMENT_LEDGER.pop(arena_shm.name, None)
        try:
            arena_shm.unlink()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        return results

    def invalidate(self) -> None:
        """Unlink every published snapshot (the next dispatch republishes)."""
        self._handle.release_all()

    def close(self) -> None:
        """Shut down the shared pool this executor dispatches to."""
        self._handle.shutdown()

    def __repr__(self) -> str:
        return f"ProcessPoolExecutor(workers={self.workers}, closed={self.closed})"
