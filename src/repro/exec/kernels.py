"""The named per-source kernels the executors run.

A *kernel* is a pure function ``kernel(payload, sources, params) -> list`` —
one result per source, no shared mutable state, no reliance on the process it
runs in.  That purity is the whole contract: the serial executor calls the
very same function in-process that the pool executor runs inside worker
processes, so pool results are bit-identical to serial results by
construction, not by luck.

Payload conventions:

* ``csr_*`` kernels receive a :class:`~repro.signed.csr.CSRSignedGraph` and
  **dense integer source ids**; they only touch the snapshot's flat arrays
  (via the dense cores in :mod:`repro.signed.csr`), never the node list or
  index.  This is what allows the pool to ship a snapshot as three raw arrays
  through ``multiprocessing.shared_memory`` — zero-copy, no node objects.
* ``dict_*`` kernels receive a :class:`~repro.signed.graph.SignedGraph` and
  the original node objects (the pool ships the graph pickled, once per
  generation); results are the ordinary dict-backed result objects.

Kernels are looked up by name so worker processes can resolve them after a
plain module import; extensions register theirs with :func:`register_kernel`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

#: Kernel registry: name -> ``kernel(payload, sources, params)``.
KERNELS: Dict[str, Callable] = {}


def register_kernel(name: str, function: Callable = None):
    """Register ``function`` (or decorate one) as the kernel called ``name``.

    Kernels must be importable module-level functions when used with a
    ``spawn``-based pool; under ``fork`` (the Linux default) the registry is
    inherited, so locally registered kernels work too.
    """
    if function is None:
        def decorator(fn: Callable) -> Callable:
            register_kernel(name, fn)
            return fn

        return decorator
    if name in KERNELS and KERNELS[name] is not function:
        raise ValueError(f"kernel {name!r} is already registered")
    KERNELS[name] = function
    return function


# ---------------------------------------------------------------- CSR kernels
# numpy (and repro.signed.csr) is imported inside the kernels so that merely
# importing repro.exec stays possible on numpy-free installs.


@register_kernel("csr_signed_bfs")
def csr_signed_bfs(csr, sources: Sequence[int], params: dict) -> List:
    """Algorithm 1 from many dense sources: ``(lengths, positive, negative)``
    array triples (``None`` marks an int64 overflow for the caller's dict
    fallback)."""
    from repro.signed.csr import DEFAULT_BATCH_CHUNK, signed_bfs_dense_batch

    return signed_bfs_dense_batch(
        csr,
        sources,
        chunk_size=params.get("lockstep_chunk") or DEFAULT_BATCH_CHUNK,
        skip_overflow=params.get("skip_overflow", True),
        lockstep_threshold=params.get("lockstep_threshold"),
    )


@register_kernel("csr_path_lengths")
def csr_path_lengths(csr, sources: Sequence[int], params: dict) -> List:
    """Sign-agnostic BFS distances from many dense sources (one array each)."""
    from repro.signed.csr import DEFAULT_BATCH_CHUNK, shortest_path_lengths_dense_batch

    return shortest_path_lengths_dense_batch(
        csr,
        sources,
        chunk_size=params.get("lockstep_chunk") or DEFAULT_BATCH_CHUNK,
        lockstep_threshold=params.get("lockstep_threshold"),
    )


@register_kernel("build_labels")
def build_labels(csr, sources: Sequence[int], params: dict) -> List:
    """Landmark BFS rows for the distance-label index, one per dense source.

    Same computation as ``csr_path_lengths`` — a sign-agnostic distance array
    per source — registered under its own name so the label build can be
    dispatched, arena-shipped, and accounted separately from ad-hoc distance
    sweeps (see :mod:`repro.signed.labels`).
    """
    from repro.signed.csr import DEFAULT_BATCH_CHUNK, shortest_path_lengths_dense_batch

    return shortest_path_lengths_dense_batch(
        csr,
        sources,
        chunk_size=params.get("lockstep_chunk") or DEFAULT_BATCH_CHUNK,
        lockstep_threshold=params.get("lockstep_threshold"),
    )


@register_kernel("csr_sbph")
def csr_sbph(csr, sources: Sequence[int], params: dict) -> List:
    """SBPH heuristic search per dense source: ``(positive_depths,
    negative_depths)`` dicts keyed by dense ids (the caller remaps to nodes)."""
    from repro.signed.csr import balanced_heuristic_depths

    max_length = params.get("max_length")
    return [
        balanced_heuristic_depths(csr, source, max_length=max_length)
        for source in sources
    ]


@register_kernel("csr_compatible_degrees")
def csr_compatible_degrees(csr, sources: Sequence[int], params: dict) -> List:
    """Compatibility degrees per dense source, reduced inside the worker.

    Runs Algorithm 1 per source and immediately applies the named SP* pair
    rule plus the reachability/self exclusions, shipping back **one integer
    per source** instead of three O(n) count arrays — the transfer-thrifty
    path behind the Table-2 sampled statistics.  ``None`` marks an int64
    overflow (the caller falls back to the dict backend for that source).
    The count equals
    :meth:`repro.signed.csr.CSRSignedBFSResult.compatible_count` on the same
    arrays, bit for bit.
    """
    from repro.signed.csr import UNREACHABLE, signed_bfs_dense_batch

    rule = _pair_rule_mask_for(params["rule"])
    triples = signed_bfs_dense_batch(
        csr,
        sources,
        skip_overflow=True,
        lockstep_threshold=params.get("lockstep_threshold"),
    )
    counts: List = []
    for source, triple in zip(sources, triples):
        if triple is None:
            counts.append(None)
            continue
        lengths, positive, negative = triple
        mask = rule(positive, negative) & (lengths != UNREACHABLE)
        mask[source] = False
        counts.append(int(mask.sum()))
    return counts


@register_kernel("csr_compatible_masks")
def csr_compatible_masks(csr, sources: Sequence[int], params: dict) -> List:
    """Compatible-set bitmaps per dense source, packed inside the worker.

    Runs Algorithm 1 per source, applies the named SP* pair rule plus the
    reachability exclusion, sets the source's own bit (the compatible set
    always contains its source) and packs the boolean mask into
    ``ceil(n / 8)`` bytes with :func:`numpy.packbits` — so a 50k-node sweep
    ships ~6 KB per source instead of pickled O(n) id arrays, and the arena
    path ships the same bytes zero-copy.  ``None`` marks an int64 overflow
    (the caller resolves that source on the dict backend).  Unpacking a
    bitmap yields exactly the membership of the serial path's
    ``compatible_nodes(rule_mask) + {source}``.
    """
    from repro.signed.csr import UNREACHABLE, signed_bfs_dense_batch
    from repro.utils.bitset import pack_mask

    rule = _pair_rule_mask_for(params["rule"])
    triples = signed_bfs_dense_batch(
        csr,
        sources,
        skip_overflow=True,
        lockstep_threshold=params.get("lockstep_threshold"),
    )
    masks: List = []
    for source, triple in zip(sources, triples):
        if triple is None:
            masks.append(None)
            continue
        lengths, positive, negative = triple
        mask = rule(positive, negative) & (lengths != UNREACHABLE)
        mask[source] = True
        masks.append(pack_mask(mask))
    return masks


def _pair_rule_mask_for(name: str):
    """The vectorised SP* pair rule registered under ``name`` (SPA/SPM/SPO)."""
    from repro.compatibility.shortest_path import (
        AllShortestPathsCompatibility,
        MajorityShortestPathsCompatibility,
        OneShortestPathCompatibility,
    )

    rules = {
        AllShortestPathsCompatibility.name: AllShortestPathsCompatibility._pair_rule_mask,
        MajorityShortestPathsCompatibility.name: MajorityShortestPathsCompatibility._pair_rule_mask,
        OneShortestPathCompatibility.name: OneShortestPathCompatibility._pair_rule_mask,
    }
    return rules[name]


# --------------------------------------------------------------- dict kernels


@register_kernel("dict_signed_bfs")
def dict_signed_bfs(graph, sources: Sequence, params: dict) -> List:
    """Algorithm 1 per source on the dict backend (:class:`SignedBFSResult`)."""
    from repro.signed.paths import signed_bfs

    return [signed_bfs(graph, source) for source in sources]


@register_kernel("dict_path_lengths")
def dict_path_lengths(graph, sources: Sequence, params: dict) -> List:
    """Sign-agnostic BFS distances per source (plain dicts)."""
    from repro.signed.paths import shortest_path_lengths

    return [shortest_path_lengths(graph, source) for source in sources]


@register_kernel("dict_walk_lengths")
def dict_walk_lengths(graph, sources: Sequence, params: dict) -> List:
    """Signed double-cover walk lengths per source:
    ``(positive_lengths, negative_lengths)`` dict pairs."""
    from repro.signed.paths import shortest_signed_walk_lengths

    return [shortest_signed_walk_lengths(graph, source) for source in sources]


@register_kernel("dict_balanced_search")
def dict_balanced_search(graph, sources: Sequence, params: dict) -> List:
    """Balanced-path search per source (:class:`BalancedPathResult`).

    ``params``: ``exact`` selects the exhaustive SBP enumeration versus the
    SBPH heuristic; ``max_length`` / ``max_expansions`` mirror
    :class:`~repro.signed.paths.BalancedPathSearch`.  A fresh search object is
    built per call, so results match the relation's own searches exactly.
    """
    from repro.signed.paths import BalancedPathSearch

    search = BalancedPathSearch(
        graph,
        max_length=params.get("max_length"),
        max_expansions=params.get("max_expansions", 2_000_000),
    )
    if params.get("exact", False):
        return [search.search_exact(source) for source in sources]
    return [search.search_heuristic(source) for source in sources]


#: The degradation contract: every CSR kernel's dict-backend equivalent.
#:
#: When numpy is missing or a payload has no CSR view, the executor (and the
#: compatibility layers above it) answer with the mapped ``dict_*`` kernel —
#: per-source, arbitrary-precision, pure python.  ``build_labels`` degrades to
#: plain per-source distances (the label index itself refuses to build without
#: numpy), and both compatible-set kernels degrade to the per-source signed
#: BFS the dict backend counts from.  ``repro-teams analyze`` enforces that
#: this table stays total over the registry (kernel-registry-parity).
SERIAL_EQUIVALENTS: Dict[str, str] = {
    "csr_signed_bfs": "dict_signed_bfs",
    "csr_path_lengths": "dict_path_lengths",
    "build_labels": "dict_path_lengths",
    "csr_sbph": "dict_balanced_search",
    "csr_compatible_degrees": "dict_signed_bfs",
    "csr_compatible_masks": "dict_signed_bfs",
}
