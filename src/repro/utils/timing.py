"""A tiny timing helper used by the experiment runner and the CLI."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context manager measuring wall-clock time in seconds.

    Example
    -------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Seconds elapsed; valid after the ``with`` block (or live inside it)."""
        if self._start is None:
            raise RuntimeError("Timer has not been started")
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed
