"""A tiny timing helper used by the experiment runner and the CLI."""

from __future__ import annotations

import gc
import time
from typing import Optional


class Timer:
    """Context manager measuring wall-clock time in seconds.

    Example
    -------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Seconds elapsed; valid after the ``with`` block (or live inside it)."""
        if self._start is None:
            raise RuntimeError("Timer has not been started")
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed


def peak_rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process in bytes, or ``None`` if unknown.

    Uses ``resource.getrusage`` (``ru_maxrss`` is kilobytes on Linux); falls
    back to ``VmHWM`` from ``/proc/self/status``.  The counter is a
    high-water mark for the whole process lifetime — to attribute memory to a
    single operation, run it in a fresh process via :func:`measure_peak_rss`.
    """
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except (ImportError, OSError, ValueError):
        pass
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def measure_peak_rss(function, *args, **kwargs):
    """Run ``function(*args, **kwargs)`` in a forked child and audit its memory.

    Returns ``(result, peak_bytes, elapsed_seconds)``.  Because the child
    starts from the parent's (small) baseline, its ``ru_maxrss`` high-water
    mark isolates the memory cost of ``function`` itself — the ingestion
    benchmarks use this to compare the CSR and dict parse paths fairly.
    ``result`` must be picklable; exceptions in the child are re-raised here
    as :class:`RuntimeError`.  Requires a fork-capable platform (Linux).
    """
    import multiprocessing

    context = multiprocessing.get_context("fork")
    receiver, sender = context.Pipe(duplex=False)

    def _child(pipe) -> None:
        try:
            # Exclude inherited objects from the child's GC: a full collection
            # would touch every object header and copy-on-write the whole
            # parent heap into this child's RSS, charging the parent's live
            # set to whatever ``function`` we are auditing.
            gc.freeze()
            with Timer() as timer:
                value = function(*args, **kwargs)
            pipe.send(("ok", value, peak_rss_bytes(), timer.elapsed))
        except BaseException as error:  # noqa: BLE001 - reported to the parent
            pipe.send(("error", repr(error), None, None))
        finally:
            pipe.close()

    process = context.Process(target=_child, args=(sender,))
    process.start()
    sender.close()
    try:
        status, payload, peak, elapsed = receiver.recv()
    except EOFError:
        process.join()
        raise RuntimeError(
            f"measure_peak_rss child died with exit code {process.exitcode}"
        ) from None
    finally:
        receiver.close()
    process.join()
    if status != "ok":
        raise RuntimeError(f"measure_peak_rss child failed: {payload}")
    return payload, peak, elapsed
