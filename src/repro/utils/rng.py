"""Random-number-generator plumbing.

Every stochastic component in the library accepts either ``None`` (fresh,
non-deterministic generator), an integer seed, or an existing
:class:`random.Random` instance.  :func:`ensure_rng` normalises the three forms
into a :class:`random.Random` so that call sites never need to special-case.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

RandomState = Union[None, int, random.Random]


def ensure_rng(seed: RandomState = None) -> random.Random:
    """Return a :class:`random.Random` derived from ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` to seed a new
        generator, or an existing :class:`random.Random` which is returned
        unchanged (so that state is shared with the caller).
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, bool):  # bool is an int subclass; almost surely a bug
        raise TypeError("seed must be None, an int, or a random.Random instance")
    if isinstance(seed, int):
        return random.Random(seed)
    raise TypeError(
        f"seed must be None, an int, or a random.Random instance, got {type(seed).__name__}"
    )


def spawn_rngs(seed: RandomState, count: int) -> List[random.Random]:
    """Derive ``count`` independent generators from a single ``seed``.

    The derived generators are deterministic functions of ``seed`` and their
    index, so experiments that fan out into several stochastic stages stay
    reproducible while the stages remain statistically independent.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return [random.Random(root.getrandbits(64)) for _ in range(count)]
