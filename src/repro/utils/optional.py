"""Optional-dependency probes.

The indexed CSR backend (:mod:`repro.signed.csr`) needs numpy; everything else
in the library runs on the pure-Python dict backend.  These helpers let the
backend-selection code degrade gracefully on numpy-free installs: ``"auto"``
falls back to the dict backend with a one-time warning, while an explicit
``backend="csr"`` raises a clear :class:`ImportError` at construction time.
"""

from __future__ import annotations

import warnings
from typing import Optional

_NUMPY_AVAILABLE: Optional[bool] = None
_WARNED_CONTEXTS: set = set()


def numpy_available() -> bool:
    """True iff numpy can be imported (probed once, then cached)."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            import numpy  # noqa: F401

            _NUMPY_AVAILABLE = True
        except ImportError:
            _NUMPY_AVAILABLE = False
    return _NUMPY_AVAILABLE


def require_numpy(feature: str) -> None:
    """Raise a descriptive :class:`ImportError` when numpy is missing."""
    if not numpy_available():
        raise ImportError(
            f"{feature} requires numpy, which is not installed; install numpy "
            "or use backend='dict' (the pure-Python backend)"
        )


def warn_numpy_missing(context: str) -> None:
    """Warn (once per context) that a CSR fast path degraded to the dict backend."""
    if context in _WARNED_CONTEXTS:
        return
    _WARNED_CONTEXTS.add(context)
    warnings.warn(
        f"numpy is not installed; {context} falls back to the pure-Python "
        "dict backend (install numpy for the vectorised CSR backend)",
        RuntimeWarning,
        stacklevel=3,
    )
