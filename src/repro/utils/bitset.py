"""Packed-bitmap helpers shared by storage, shipping and compute.

Three layers of the library speak "one bit per node":

* the result arena ships compatible sets as ``ceil(n/8)``-byte rows
  (:mod:`repro.exec.arena`);
* the engine's rule-mask memo and the SP* relations unpack those rows back
  into boolean masks and frozensets;
* the word-parallel BFS kernels (:mod:`repro.signed.csr`) keep per-source
  frontier/visited state as ``uint64`` words — 64 traversals advanced by one
  bitwise operation.

Before this module each site carried its own ``np.packbits`` spelling and its
own ``ceil(n/8)`` arithmetic; they are now one vocabulary, so the packed
layout (big-endian bit order, node ``i`` at byte ``i // 8`` bit ``7 - i % 8``
— numpy's ``packbits`` default) cannot drift between the writer in a worker
process and the reader in the parent.

numpy is imported lazily: the module is importable on numpy-free installs,
and every helper that needs numpy raises the library's standard descriptive
:class:`ImportError` through :func:`repro.utils.optional.require_numpy`.
"""

from __future__ import annotations

from typing import List

#: Bits per word of the word-parallel kernels' frontier/visited state.
WORD_BITS = 64


def mask_nbytes(num_bits: int) -> int:
    """Bytes needed for a packed bitmap of ``num_bits`` bits (``ceil(n/8)``)."""
    return (num_bits + 7) // 8


def words_for(num_bits: int) -> int:
    """``uint64`` words needed for ``num_bits`` bits (``ceil(n/64)``)."""
    return (num_bits + WORD_BITS - 1) // WORD_BITS


def pack_mask(mask):
    """Pack a boolean mask into a ``uint8`` bitmap of :func:`mask_nbytes` bytes.

    The canonical packed form every layer agrees on (``numpy.packbits`` with
    its default big-endian bit order); :func:`unpack_mask` is its exact
    inverse.
    """
    import numpy as np

    return np.packbits(mask)


def unpack_mask(packed, count: int):
    """Unpack a bitmap back to a boolean array of ``count`` entries.

    Inverse of :func:`pack_mask`; accepts any buffer of at least
    ``mask_nbytes(count)`` bytes (e.g. a zero-copy result-arena row view).
    """
    import numpy as np

    return np.unpackbits(np.asarray(packed, dtype=np.uint8), count=count).view(np.bool_)


def popcount(packed) -> int:
    """Number of set bits in a packed ``uint8`` bitmap."""
    import numpy as np

    return int(np.bincount(np.asarray(packed, dtype=np.uint8), minlength=256)
               @ _BYTE_POPCOUNT())


_BYTE_POPCOUNT_TABLE = None


def _BYTE_POPCOUNT():
    """The 256-entry per-byte popcount table (built once, lazily)."""
    global _BYTE_POPCOUNT_TABLE
    if _BYTE_POPCOUNT_TABLE is None:
        import numpy as np

        _BYTE_POPCOUNT_TABLE = np.array(
            [bin(byte).count("1") for byte in range(256)], dtype=np.int64
        )
    return _BYTE_POPCOUNT_TABLE


def source_bits(count: int):
    """``uint64`` array of single-bit words: ``source_bits(k)[i] == 1 << i``.

    The per-source bit assignment of the word-parallel kernels (source ``i``
    of a chunk owns bit ``i``); ``count`` must be at most :data:`WORD_BITS`.
    """
    import numpy as np

    if count > WORD_BITS:
        raise ValueError(f"a word holds {WORD_BITS} sources, got {count}")
    return np.uint64(1) << np.arange(count, dtype=np.uint64)


def set_bit_positions(word: int) -> List[int]:
    """The set bit positions of a Python/numpy integer, ascending.

    Used by the word-parallel kernels to iterate only the *active* sources of
    a level (the OR-reduction of the per-edge discovery words), skipping
    exhausted traversals entirely.
    """
    word = int(word)
    positions: List[int] = []
    while word:
        low = word & -word
        positions.append(low.bit_length() - 1)
        word ^= low
    return positions
