"""A minimal bounded LRU mapping used by the per-source caches.

The compatibility relations keep one expensive result per queried source node
(a signed BFS, a balanced-path search, a distance map).  Left unbounded, a full
:class:`~repro.compatibility.matrix.CompatibilityMatrix` on a large graph holds
``O(n)`` results of ``O(n)`` size each — an easy OOM.  :class:`LRUCache` gives
those caches a configurable ceiling while keeping the common small-graph
workloads (where every source fits) entirely unaffected.

``maxsize=None`` disables eviction, which callers can use to restore the old
unbounded behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """A dict-like mapping that evicts its least-recently-used entry when full.

    Supports the small subset of the mapping protocol the relation caches use:
    ``get``, ``__setitem__``, ``__contains__``, ``__len__``, ``items``,
    ``clear``.  Reads (``get``) refresh recency; membership tests do not.

    Example
    -------
    >>> cache = LRUCache(maxsize=2)
    >>> cache["a"] = 1
    >>> cache["b"] = 2
    >>> _ = cache.get("a")   # refresh "a"
    >>> cache["c"] = 3       # evicts "b", the least recently used
    >>> sorted(cache)
    ['a', 'c']
    """

    def __init__(self, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError(f"maxsize must be positive or None, got {maxsize}")
        self._maxsize = maxsize
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> Optional[int]:
        """The capacity bound (``None`` means unbounded)."""
        return self._maxsize

    @property
    def hits(self) -> int:
        """Number of successful :meth:`get` lookups."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed :meth:`get` lookups."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of entries dropped to respect ``maxsize``."""
        return self._evictions

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value for ``key`` (refreshing recency) or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            return default
        self._hits += 1
        self._data.move_to_end(key)
        return value  # type: ignore[return-value]

    def __setitem__(self, key: K, value: V) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self._maxsize is not None and len(self._data) > self._maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate over ``(key, value)`` pairs, least recently used first."""
        return iter(self._data.items())

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()

    def __repr__(self) -> str:
        return (
            f"LRUCache(len={len(self._data)}, maxsize={self._maxsize}, "
            f"hits={self._hits}, misses={self._misses}, evictions={self._evictions})"
        )
