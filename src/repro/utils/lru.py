"""A minimal bounded LRU mapping used by the per-source caches.

The compatibility relations keep one expensive result per queried source node
(a signed BFS, a balanced-path search, a distance map).  Left unbounded, a full
:class:`~repro.compatibility.matrix.CompatibilityMatrix` on a large graph holds
``O(n)`` results of ``O(n)`` size each — an easy OOM.  :class:`LRUCache` gives
those caches a configurable ceiling while keeping the common small-graph
workloads (where every source fits) entirely unaffected.

``maxsize=None`` disables eviction, which callers can use to restore the old
unbounded behaviour.

Because every cached entry is O(n) in the graph size, a fixed *entry* bound is
only half the story: 4096 entries of a million-node graph is hundreds of
gigabytes.  :func:`scaled_cache_size` turns a byte budget into an entry bound
for a given per-entry size, and the relations use it (via their ``"auto"``
cache-size default) so the default bounds shrink automatically on huge graphs.
:attr:`LRUCache.approx_bytes` exposes the resulting byte estimate for
introspection and tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()

#: Default memory budget (bytes) a single per-source cache may grow to under
#: the ``"auto"`` sizing policy.  256 MiB per cache keeps a handful of caches
#: (BFS results, compatible sets, distance maps) within a few GiB total.
DEFAULT_CACHE_BUDGET_BYTES = 256 * 1024 * 1024

#: Rough per-node cost (bytes) of one cached per-source entry.  Dict-backed
#: results pay ~90 bytes per reachable node (dict slots + boxed ints), CSR
#: results ~20 (three numpy scalars); 64 is a deliberate middle ground — this
#: is an order-of-magnitude guard against OOM, not an accounting system.
APPROX_BYTES_PER_NODE = 64

#: Smallest entry bound ``scaled_cache_size`` will return: even on graphs so
#: large that a single entry busts the budget, a few entries must stay cached
#: or the per-pair query paths degrade to recomputing every source.
MIN_SCALED_CACHE_ENTRIES = 4


def fetch_batched(cache, keys, compute_missing):
    """Batched read-through against an :class:`LRUCache`.

    Probes ``cache`` for every key, computes the misses with **one**
    ``compute_missing(missing_keys) -> values`` call (deduplicated, input
    order preserved), writes them through, and returns the values aligned
    with ``keys``.  Results are held locally for the duration of the call, so
    a batch larger than the cache bound is still computed exactly once even
    though the write-through may evict earlier entries.

    This is the single implementation of the probe → dedup → batch-compute →
    write-through pattern shared by the relations' ``batch_bfs`` /
    ``batch_compatible_sets`` and the distance oracle's ``warm``.
    """
    found = {}
    for key in keys:
        value = cache.get(key)
        if value is not None:
            found[key] = value
    missing = [key for key in dict.fromkeys(keys) if key not in found]
    if missing:
        for key, value in zip(missing, compute_missing(missing)):
            found[key] = value
            cache[key] = value
    return [found[key] for key in keys]


def scaled_cache_size(
    ceiling: Optional[int],
    num_nodes: int,
    bytes_per_node: int = APPROX_BYTES_PER_NODE,
    budget_bytes: int = DEFAULT_CACHE_BUDGET_BYTES,
    minimum: int = MIN_SCALED_CACHE_ENTRIES,
) -> Optional[int]:
    """Entry bound for a per-source cache whose entries are O(``num_nodes``).

    Returns ``min(ceiling, budget_bytes // entry_bytes)`` clamped below by
    ``minimum``, where ``entry_bytes = num_nodes * bytes_per_node``.  On small
    graphs this is simply ``ceiling`` (the historical defaults); on
    million-node graphs it shrinks so the cache cannot exceed the byte budget
    by more than ``minimum`` entries.  ``ceiling=None`` (unbounded) is
    returned unchanged — an explicit opt-out stays an opt-out.
    """
    if ceiling is None:
        return None
    entry_bytes = max(1, num_nodes) * max(1, bytes_per_node)
    fitting = budget_bytes // entry_bytes
    return max(minimum, min(ceiling, fitting))


class LRUCache(Generic[K, V]):
    """A dict-like mapping that evicts its least-recently-used entry when full.

    Supports the small subset of the mapping protocol the relation caches use:
    ``get``, ``__setitem__``, ``__contains__``, ``__len__``, ``items``,
    ``clear``.  Reads (``get``) refresh recency; membership tests do not.

    Example
    -------
    >>> cache = LRUCache(maxsize=2)
    >>> cache["a"] = 1
    >>> cache["b"] = 2
    >>> _ = cache.get("a")   # refresh "a"
    >>> cache["c"] = 3       # evicts "b", the least recently used
    >>> sorted(cache)
    ['a', 'c']
    """

    def __init__(
        self,
        maxsize: Optional[int] = None,
        bytes_per_entry: Optional[int] = None,
    ) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError(f"maxsize must be positive or None, got {maxsize}")
        if bytes_per_entry is not None and bytes_per_entry < 0:
            raise ValueError(
                f"bytes_per_entry must be non-negative or None, got {bytes_per_entry}"
            )
        self._maxsize = maxsize
        self._bytes_per_entry = bytes_per_entry
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> Optional[int]:
        """The capacity bound (``None`` means unbounded)."""
        return self._maxsize

    @property
    def bytes_per_entry(self) -> Optional[int]:
        """Estimated size of one entry (``None`` when the owner gave no hint)."""
        return self._bytes_per_entry

    @property
    def approx_bytes(self) -> Optional[int]:
        """Estimated memory held by the cache (``None`` without a size hint).

        The estimate is ``len(cache) * bytes_per_entry`` using the hint the
        owning relation supplied (typically ``num_nodes * bytes_per_node``);
        it tracks occupancy, not the true interned object sizes.
        """
        if self._bytes_per_entry is None:
            return None
        return len(self._data) * self._bytes_per_entry

    @property
    def hits(self) -> int:
        """Number of successful :meth:`get` lookups."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed :meth:`get` lookups."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of entries dropped to respect ``maxsize``."""
        return self._evictions

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value for ``key`` (refreshing recency) or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            return default
        self._hits += 1
        self._data.move_to_end(key)
        return value  # type: ignore[return-value]

    def __setitem__(self, key: K, value: V) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self._maxsize is not None and len(self._data) > self._maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate over ``(key, value)`` pairs, least recently used first."""
        return iter(self._data.items())

    def discard(self, key: K) -> bool:
        """Drop ``key`` if present; returns whether an entry was removed.

        Unlike evictions, discards are the owner's explicit invalidation
        (e.g. generation-based dropping of stale entries) and therefore do
        not count towards :attr:`evictions`.
        """
        return self._data.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()

    def __repr__(self) -> str:
        approx = self.approx_bytes
        bytes_part = f", approx_bytes={approx}" if approx is not None else ""
        return (
            f"LRUCache(len={len(self._data)}, maxsize={self._maxsize}, "
            f"hits={self._hits}, misses={self._misses}, evictions={self._evictions}"
            f"{bytes_part})"
        )
