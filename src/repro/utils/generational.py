"""Generation-keyed LRU caching for per-source results on dynamic graphs.

The compatibility layers cache one expensive result per *source node* (a
signed BFS, a balanced-path search, a distance map, a rule mask).  On a static
graph a plain :class:`~repro.utils.lru.LRUCache` suffices; on a mutating graph
every cached entry is implicitly keyed by the graph state it was computed
against.  :class:`GenerationalLRUCache` makes that key explicit: entries are
valid for ``(source, generation)`` where ``generation`` is the cache's sync
point with :attr:`repro.signed.graph.SignedGraph.generation`.

Rather than storing the generation in every key (which would leave stale
entries pinned until eviction), the cache *re-keys in bulk*: on the first
access after the graph's generation moved, it asks the graph which sources
may have stale results
(:meth:`~repro.signed.graph.SignedGraph.affected_nodes_since` — conservative
by connected component of the current graph), drops exactly those entries,
and promotes every survivor to the new generation.  A mutation in one
component therefore never throws away the cached work of another — the
targeted-invalidation half of the ROADMAP's dynamic-graph item.

The class subclasses :class:`LRUCache`, so byte-aware bounds, hit/miss
statistics and the batched read-through helper
(:func:`~repro.utils.lru.fetch_batched`) all work unchanged.
"""

from __future__ import annotations

from typing import Optional, TypeVar

from repro.utils.lru import LRUCache

K = TypeVar("K")
V = TypeVar("V")


class GenerationalLRUCache(LRUCache[K, V]):
    """An :class:`LRUCache` whose entries auto-expire with graph mutations.

    Parameters
    ----------
    graph:
        The :class:`~repro.signed.graph.SignedGraph` whose ``generation``
        stamps entry validity.  Keys must be source nodes of this graph (the
        per-source caches' natural keys) so that the graph's affected-node
        sets apply to them directly.
    maxsize / bytes_per_entry:
        Forwarded to :class:`LRUCache`.
    component_local:
        Whether a cached result depends only on its source's connected
        component (true for BFS-style results).  When false (e.g. the NNE
        relation's complement-style sets), any node addition or removal
        invalidates everything; edge-level mutations still invalidate by
        component, which remains a superset of the touched endpoints.
    """

    def __init__(
        self,
        graph,
        maxsize: Optional[int] = None,
        bytes_per_entry: Optional[int] = None,
        component_local: bool = True,
    ) -> None:
        super().__init__(maxsize=maxsize, bytes_per_entry=bytes_per_entry)
        self._graph = graph
        self._generation = graph.generation
        self._component_local = component_local
        self._invalidations = 0

    @property
    def generation(self) -> int:
        """The graph generation the cached entries are valid for."""
        return self._generation

    @property
    def invalidations(self) -> int:
        """Entries dropped by generation sync (targeted invalidation)."""
        return self._invalidations

    def sync(self) -> None:
        """Re-key the cache to the graph's current generation.

        Entries whose source may be affected by the mutations since the last
        sync are dropped; all others are promoted to the new generation.
        Called automatically before every read and write, so explicit calls
        are only needed to make invalidation timing deterministic (tests,
        benchmarks).
        """
        generation = self._graph.generation
        if generation == self._generation:
            return
        if not self._component_local and self._graph.node_set_changed_since(
            self._generation
        ):
            affected = None
        else:
            affected = self._graph.affected_nodes_since(self._generation)
        self._generation = generation
        if affected is None:
            self._invalidations += len(self._data)
            self._data.clear()
        elif affected:
            for key in [key for key in self._data if key in affected]:
                if self.discard(key):
                    self._invalidations += 1

    def clear(self) -> None:
        """Drop every entry and fast-forward to the current generation."""
        super().clear()
        self._generation = self._graph.generation

    # Every access syncs first, so a mutated graph can never serve (or accept)
    # an entry under a stale generation.

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        self.sync()
        return super().get(key, default)

    def __setitem__(self, key: K, value: V) -> None:
        self.sync()
        super().__setitem__(key, value)

    def __contains__(self, key: K) -> bool:
        self.sync()
        return super().__contains__(key)

    def __len__(self) -> int:
        self.sync()
        return super().__len__()

    def __iter__(self):
        self.sync()
        return super().__iter__()

    def items(self):
        self.sync()
        return super().items()

    def __repr__(self) -> str:
        return (
            f"GenerationalLRUCache(len={len(self._data)}, maxsize={self.maxsize}, "
            f"generation={self._generation}, invalidations={self._invalidations})"
        )
