"""Argument-validation helpers shared across the library.

These helpers raise :class:`ValueError` (or :class:`TypeError`) with a message
that names the offending parameter, which keeps the validation at call sites
down to a single readable line.
"""

from __future__ import annotations

from numbers import Real


def require_positive(value: Real, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    _require_real(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: Real, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is >= 0."""
    _require_real(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_probability(value: Real, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` lies in the closed interval [0, 1]."""
    require_in_range(value, name, 0.0, 1.0)


def require_in_range(value: Real, name: str, low: Real, high: Real) -> None:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    _require_real(value, name)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def _require_real(value: Real, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
