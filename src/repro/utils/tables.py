"""Plain-text table rendering used by the experiment harness and the CLI.

The experiments print their results in the same row/column layout as the
paper's tables, so a lightweight aligned-text formatter is all that is needed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_percentage(value: float, decimals: int = 2) -> str:
    """Format a ratio in ``[0, 1]`` as a percentage string, e.g. ``0.4472 -> '44.72'``."""
    return f"{100.0 * value:.{decimals}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    align_right: bool = True,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have ``len(headers)`` entries.  Entries
        are converted with :func:`str`; ``None`` renders as ``'-'`` (the paper
        uses a dash for the SBP columns it could not compute).
    title:
        Optional title printed above the table.
    align_right:
        Right-align data columns (numeric tables); the first column is always
        left-aligned since it usually holds labels.
    """
    str_rows: List[List[str]] = []
    for row in rows:
        cells = ["-" if cell is None else str(cell) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row {cells!r} has {len(cells)} cells but there are {len(headers)} headers"
            )
        str_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in str_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0 or not align_right:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(cells) for cells in str_rows)
    return "\n".join(lines)
