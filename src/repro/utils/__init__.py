"""Small shared utilities: RNG handling, validation helpers, text tables, timing."""

from repro.utils.bitset import (
    WORD_BITS,
    mask_nbytes,
    pack_mask,
    popcount,
    unpack_mask,
    words_for,
)
from repro.utils.generational import GenerationalLRUCache
from repro.utils.lru import (
    APPROX_BYTES_PER_NODE,
    DEFAULT_CACHE_BUDGET_BYTES,
    LRUCache,
    fetch_batched,
    scaled_cache_size,
)
from repro.utils.optional import numpy_available, require_numpy, warn_numpy_missing
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import format_table, format_percentage
from repro.utils.timing import Timer
from repro.utils.validation import (
    require_positive,
    require_non_negative,
    require_probability,
    require_in_range,
)

__all__ = [
    "WORD_BITS",
    "mask_nbytes",
    "pack_mask",
    "popcount",
    "unpack_mask",
    "words_for",
    "GenerationalLRUCache",
    "LRUCache",
    "fetch_batched",
    "scaled_cache_size",
    "APPROX_BYTES_PER_NODE",
    "DEFAULT_CACHE_BUDGET_BYTES",
    "numpy_available",
    "require_numpy",
    "warn_numpy_missing",
    "ensure_rng",
    "spawn_rngs",
    "format_table",
    "format_percentage",
    "Timer",
    "require_positive",
    "require_non_negative",
    "require_probability",
    "require_in_range",
]
