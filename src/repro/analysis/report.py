"""Reporters for analysis results: human text and the CI JSON artifact."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.core import Finding, Rule

__all__ = ["render_text", "render_json"]


def render_text(
    fresh: Sequence[Finding],
    waived: Sequence[Finding] = (),
    stale: Sequence[dict] = (),
) -> str:
    """One ``path:line: [rule] message`` line per finding, plus a summary."""
    lines: List[str] = []
    for finding in fresh:
        lines.append(f"{finding.location()}: [{finding.rule}] {finding.message}")
    for record in stale:
        lines.append(
            f"{record['path']}: [baseline] stale entry for rule "
            f"{record['rule']!r} matches nothing (remove it): "
            f"{record['message']}"
        )
    summary = f"{len(fresh)} finding{'s' if len(fresh) != 1 else ''}"
    if waived:
        summary += f", {len(waived)} baselined"
    if stale:
        summary += f", {len(stale)} stale baseline entr{'ies' if len(stale) != 1 else 'y'}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    fresh: Sequence[Finding],
    waived: Sequence[Finding] = (),
    stale: Sequence[dict] = (),
    rules: Sequence[Rule] = (),
) -> str:
    """The machine-readable report the CI job uploads as ``analysis.json``."""
    payload: Dict = {
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "fingerprint": finding.fingerprint(),
            }
            for finding in fresh
        ],
        "baselined": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "fingerprint": finding.fingerprint(),
            }
            for finding in waived
        ],
        "stale_baseline": list(stale),
        "rules": [
            {"id": rule.id, "contract": rule.contract} for rule in rules
        ],
        "summary": {
            "findings": len(fresh),
            "baselined": len(waived),
            "stale_baseline": len(stale),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
