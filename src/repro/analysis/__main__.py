"""``python -m repro.analysis`` — same entry point as ``repro-teams analyze``."""

import sys

from repro.analysis.cli import main

sys.exit(main(prog="python -m repro.analysis"))
