"""The checked-in baseline: accepted findings the gate does not fail on.

A baseline entry waives one finding by its line-independent fingerprint
(rule id + path + message), so routine edits that move code around do not
churn the file.  The policy for this repository is to keep the baseline
**empty**: true positives get fixed, deliberate exceptions get an inline
``# repro: ignore[rule-id]`` next to the code they excuse.  The mechanism
exists so that a future rule can land before its last fix does — park the
stragglers here, burn them down, never add to the file in the same PR that
introduces the code.

``--strict`` additionally fails on *stale* entries (fingerprints matching
nothing), so the baseline can only shrink.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.core import Finding

__all__ = ["Baseline", "filter_baselined", "DEFAULT_BASELINE_NAME"]

#: File name ``analyze`` looks for next to ``pyproject.toml`` by default.
DEFAULT_BASELINE_NAME = "analysis-baseline.json"

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """The set of waived finding fingerprints, with their human context."""

    entries: Dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load ``path``; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(
                f"baseline file {path!r} is not an analyze baseline "
                "(expected a JSON object with a 'findings' list)"
            )
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"baseline file {path!r} has format version {version!r}; "
                f"this analyzer reads version {_FORMAT_VERSION}"
            )
        entries: Dict[str, dict] = {}
        for record in payload["findings"]:
            entries[record["fingerprint"]] = record
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries = {
            finding.fingerprint(): {
                "fingerprint": finding.fingerprint(),
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in findings
        }
        return cls(entries=entries)

    def save(self, path: str) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "findings": sorted(
                self.entries.values(),
                key=lambda record: (record["path"], record["rule"], record["message"]),
            ),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries


def filter_baselined(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding], List[dict]]:
    """Split ``findings`` against ``baseline``.

    Returns ``(fresh, waived, stale)``: findings not in the baseline, findings
    the baseline waives, and baseline entries that matched nothing (stale —
    ``--strict`` fails on them so the file can only shrink).
    """
    fresh: List[Finding] = []
    waived: List[Finding] = []
    matched = set()
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in baseline.entries:
            matched.add(fingerprint)
            waived.append(finding)
        else:
            fresh.append(finding)
    stale = [
        record
        for fingerprint, record in sorted(baseline.entries.items())
        if fingerprint not in matched
    ]
    return fresh, waived, stale
