"""The ``analyze`` entry point.

Shared by ``repro-teams analyze`` and ``python -m repro.analysis``.  Exit
status: 0 when the gate passes, 1 on fresh findings (or, under ``--strict``,
stale baseline entries), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, filter_baselined
from repro.analysis.core import (
    all_rules,
    analyze_project,
    default_target,
    load_project,
)
from repro.analysis.report import render_json, render_text

__all__ = ["build_parser", "main"]


def build_parser(prog: str = "repro-teams analyze") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Run the project's invariant lint rules (AST-based, stdlib-only) "
            "over the source tree."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (the CI analysis.json artifact)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (the baseline can only shrink)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "baseline file of waived findings "
            f"(default: {DEFAULT_BASELINE_NAME} next to the source tree, "
            "when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the current findings as a new baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule id and its contract, then exit",
    )
    return parser


def _default_baseline_path() -> Optional[str]:
    """``analysis-baseline.json`` in the repo root (above src/) or the cwd."""
    package_root = default_target()  # .../src/repro
    repo_root = os.path.dirname(os.path.dirname(package_root))
    for root in (repo_root, os.getcwd()):
        candidate = os.path.join(root, DEFAULT_BASELINE_NAME)
        if os.path.exists(candidate):
            return candidate
    return None


def main(argv: Optional[Sequence[str]] = None, prog: str = "repro-teams analyze") -> int:
    parser = build_parser(prog=prog)
    options = parser.parse_args(argv)

    rules = all_rules()
    if options.list_rules:
        for rule in sorted(rules, key=lambda r: r.id):
            print(f"{rule.id}: {rule.contract}")
        return 0

    paths: List[str] = list(options.paths) or [default_target()]
    for path in paths:
        if not os.path.exists(path):
            parser.error(f"no such file or directory: {path}")

    project, parse_errors = load_project(paths)
    findings = analyze_project(project, rules=rules, parse_errors=parse_errors)

    if options.write_baseline:
        Baseline.from_findings(findings).save(options.write_baseline)
        print(
            f"wrote {len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"to {options.write_baseline}"
        )
        return 0

    baseline_path = options.baseline or _default_baseline_path()
    try:
        baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    except ValueError as error:
        parser.error(str(error))
    fresh, waived, stale = filter_baselined(findings, baseline)

    if options.json:
        print(render_json(fresh, waived, stale, rules))
    else:
        print(render_text(fresh, waived, stale))

    if fresh:
        return 1
    if options.strict and stale:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
