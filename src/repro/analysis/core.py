"""The analysis framework: findings, rule registry, contexts, suppressions.

Deliberately small — a :class:`Finding` record, a :class:`Rule` base class
with a registry, a parsed-module context, and a driver that runs every rule
over every module and then gives cross-module rules one ``finalize`` pass
over the whole project.  Everything is stdlib ``ast``; no third-party
dependency may creep in here (the analyzer gates CI on numpy-free installs
too).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "all_rules",
    "analyze_project",
    "analyze_source",
    "analyze_sources",
    "default_target",
    "iter_python_files",
    "load_project",
    "register_rule",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line.

    ``message`` states the broken contract in one sentence; the rule id plus
    ``path`` and ``message`` (not the line number, which moves under
    unrelated edits) form the baseline fingerprint — see
    :mod:`repro.analysis.baseline`.
    """

    rule: str
    path: str
    line: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        import hashlib

        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.message}".encode("utf-8")
        )
        return digest.hexdigest()[:16]


#: ``# repro: ignore`` / ``# repro: ignore[rule-a, rule-b]`` on the finding's
#: line suppresses it (bare ``ignore`` suppresses every rule on that line).
_SUPPRESSION = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")


def suppressed_rules(line_text: str) -> Optional[frozenset]:
    """The rules an inline comment suppresses on ``line_text``.

    Returns ``None`` when there is no suppression, the empty frozenset for a
    bare ``# repro: ignore`` (= all rules), and the named set otherwise.
    """
    match = _SUPPRESSION.search(line_text)
    if match is None:
        return None
    names = match.group("rules")
    if names is None:
        return frozenset()
    return frozenset(part.strip() for part in names.split(",") if part.strip())


@dataclass
class ModuleContext:
    """One parsed source module as the rules see it."""

    module: str  #: dotted module name, e.g. ``repro.exec.pool``
    path: str  #: path used in findings (repo-relative when possible)
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


@dataclass
class ProjectContext:
    """Every parsed module, for rules that cross module boundaries."""

    modules: Dict[str, ModuleContext] = field(default_factory=dict)

    def get(self, module: str) -> Optional[ModuleContext]:
        return self.modules.get(module)

    def __iter__(self) -> Iterator[ModuleContext]:
        return iter(self.modules.values())


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`id` (kebab-case, stable — it is the suppression
    and baseline key) and :attr:`contract` (the one-line statement of the
    invariant, surfaced by ``analyze --list-rules`` and the README table),
    and override :meth:`check_module` and/or :meth:`finalize`.
    """

    id: str = ""
    contract: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        """Cross-module pass, run once after every module was visited."""
        return ()

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            message=message,
        )


_RULE_REGISTRY: List[Type[Rule]] = []


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default rule set."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} must define a stable id")
    if any(existing.id == cls.id for existing in _RULE_REGISTRY):
        raise ValueError(f"rule id {cls.id!r} is already registered")
    _RULE_REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule (import triggers registration)."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    return [cls() for cls in _RULE_REGISTRY]


# ------------------------------------------------------------------- loading


def iter_python_files(root: str) -> Iterator[str]:
    """Yield every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in ("__pycache__", ".git")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def module_name_for(path: str) -> str:
    """Dotted module name derived from ``path`` (anchored at ``repro``)."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return parts[-1] if parts else ""
    return ".".join(parts[anchor:])


def default_target() -> str:
    """The package source tree, wherever this install keeps it."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _display_path(path: str) -> str:
    """Repo-relative path when the file is under the working tree."""
    absolute = os.path.abspath(path)
    cwd = os.getcwd()
    if absolute.startswith(cwd + os.sep):
        return os.path.relpath(absolute, cwd)
    return absolute


def load_project(paths: Sequence[str]) -> Tuple[ProjectContext, List[Finding]]:
    """Parse every python file under ``paths`` into a :class:`ProjectContext`.

    Files that fail to parse become ``parse-error`` findings instead of
    aborting the run (a syntax error must fail the gate, not crash it).
    """
    project = ProjectContext()
    errors: List[Finding] = []
    for root in paths:
        for file_path in iter_python_files(root):
            try:
                with open(file_path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=file_path)
            except (OSError, SyntaxError, ValueError) as error:
                errors.append(
                    Finding(
                        rule="parse-error",
                        path=_display_path(file_path),
                        line=getattr(error, "lineno", 1) or 1,
                        message=f"cannot analyze file: {error}",
                    )
                )
                continue
            ctx = ModuleContext(
                module=module_name_for(file_path),
                path=_display_path(file_path),
                source=source,
                tree=tree,
            )
            project.modules[ctx.module] = ctx
    return project, errors


# ------------------------------------------------------------------- running


def _apply_suppressions(
    findings: Iterable[Finding], project: ProjectContext
) -> List[Finding]:
    by_path: Dict[str, ModuleContext] = {ctx.path: ctx for ctx in project}
    kept: List[Finding] = []
    for finding in findings:
        ctx = by_path.get(finding.path)
        if ctx is not None:
            rules = suppressed_rules(ctx.line_text(finding.line))
            if rules is not None and (not rules or finding.rule in rules):
                continue
        kept.append(finding)
    return kept


def analyze_project(
    project: ProjectContext,
    rules: Optional[Sequence[Rule]] = None,
    parse_errors: Sequence[Finding] = (),
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over ``project``.

    Inline suppressions are applied; findings come back sorted by path, line
    and rule so output (and the JSON artifact) is deterministic.
    """
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = list(parse_errors)
    for ctx in project:
        for rule in active:
            findings.extend(rule.check_module(ctx))
    for rule in active:
        findings.extend(rule.finalize(project))
    findings = _apply_suppressions(findings, project)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def analyze_sources(
    sources: Dict[str, str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Analyze in-memory ``{module_name: source}`` snippets (rule tests)."""
    project = ProjectContext()
    errors: List[Finding] = []
    for module, source in sources.items():
        path = module.replace(".", "/") + ".py"
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            errors.append(
                Finding(
                    rule="parse-error",
                    path=path,
                    line=error.lineno or 1,
                    message=f"cannot analyze file: {error}",
                )
            )
            continue
        project.modules[module] = ModuleContext(
            module=module, path=path, source=source, tree=tree
        )
    return analyze_project(project, rules=rules, parse_errors=errors)


def analyze_source(
    source: str,
    module: str = "repro.example",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze one in-memory snippet as module ``module``."""
    return analyze_sources({module: source}, rules=rules)
