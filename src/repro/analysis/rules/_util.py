"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "call_name",
    "terminal_name",
    "iter_functions",
    "contains_call_to",
    "keyword_value",
    "string_constants",
    "walk_no_functions",
]


def call_name(node: ast.Call) -> str:
    """The last path component of a call target (``a.b.C(...)`` → ``"C"``)."""
    return terminal_name(node.func)


def terminal_name(node: ast.AST) -> str:
    """The trailing identifier of a Name/Attribute chain (else ``""``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def iter_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(function_def, enclosing_stack)`` for every def in ``tree``.

    The stack holds the enclosing ClassDef/FunctionDef chain, outermost
    first, so rules can tell methods from free functions.
    """

    def visit(node: ast.AST, stack: List[ast.AST]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, list(stack)
                yield from visit(child, stack + [child])
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, stack + [child])
            else:
                yield from visit(child, stack)

    yield from visit(tree, [])


def contains_call_to(node: ast.AST, name: str) -> bool:
    """True iff some call inside ``node`` targets ``name`` (terminal match)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and call_name(sub) == name:
            return True
    return False


def keyword_value(node: ast.Call, name: str) -> Optional[ast.AST]:
    """The AST of keyword argument ``name``, or ``None``."""
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def string_constants(node: ast.AST) -> List[str]:
    """Every string literal anywhere inside ``node``."""
    return [
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    ]


def walk_no_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into function bodies.

    Class bodies *are* descended into — statements there execute at import
    time, which is exactly what the import-discipline rules care about.
    """
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield from walk_no_functions(child)
