"""``kernel-registry-parity``: every CSR kernel degrades and ships cleanly.

Two parity obligations, both cross-module (a :meth:`finalize` rule):

1. **Serial equivalence.**  Every registered non-``dict_*`` kernel must have
   a declared serial equivalent in ``repro.exec.kernels.SERIAL_EQUIVALENTS``
   whose value is itself a registered ``dict_*`` kernel.  That table is the
   degradation contract: when numpy or the pool is missing, the mapped dict
   kernel must be able to answer for its CSR counterpart, and the
   equivalence tests key off the same table.
2. **Arena shipping.**  The sets in ``repro.exec.arena`` must agree with
   each other and with the registry: every ``_ARENA_KERNELS`` member is a
   registered kernel with a ``_WRITERS`` entry (and vice versa), and every
   writer really produces rows — it calls a ``*_into`` write-into core
   defined in ``repro.signed.csr``, delegates through ``KERNELS[...]``, or
   stores into the mapped planes itself.

Fixture tests feed this rule synthetic ``repro.exec.kernels`` /
``repro.exec.arena`` / ``repro.signed.csr`` modules; when a module is absent
from the project its checks are skipped (a partial tree is not a parity
violation).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.core import Finding, ModuleContext, ProjectContext, Rule, register_rule
from repro.analysis.rules._util import call_name, string_constants

_KERNELS_MODULE = "repro.exec.kernels"
_ARENA_MODULE = "repro.exec.arena"
_CSR_MODULE = "repro.signed.csr"


def _registered_kernels(ctx: ModuleContext) -> Dict[str, ast.AST]:
    """``{kernel name: registering node}`` from ``register_kernel`` uses."""
    names: Dict[str, ast.AST] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and call_name(node) == "register_kernel":
            if node.args and isinstance(node.args[0], ast.Constant):
                names[node.args[0].value] = node
    return names


def _module_dict_literal(ctx: ModuleContext, name: str) -> Optional[ast.Dict]:
    for node in ctx.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                value = node.value
                if isinstance(value, ast.Dict):
                    return value
    return None


def _module_assignment(ctx: ModuleContext, name: str) -> Optional[ast.AST]:
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
    return None


def _writer_produces_rows(writer: ast.FunctionDef, into_cores: Set[str]) -> bool:
    for node in ast.walk(writer):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name.endswith("_into"):
                into_cores.add(name)
                return True
        if isinstance(node, ast.Subscript):
            base = node.value
            name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
            if name == "KERNELS":
                return True
        # Direct plane stores: plane[row] = ... / plane[row].fill(...)
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "fill"
        ):
            return True
    return False


@register_rule
class KernelRegistryParityRule(Rule):
    id = "kernel-registry-parity"
    contract = (
        "every registered CSR kernel has a declared dict-backend serial "
        "equivalent, and every arena-shipped kernel has a consistent writer "
        "backed by a *_into core, KERNELS delegation, or direct plane stores"
    )

    def finalize(self, project: ProjectContext):
        findings: List[Finding] = []
        kernels_ctx = project.get(_KERNELS_MODULE)
        if kernels_ctx is None:
            return findings
        registered = _registered_kernels(kernels_ctx)
        findings.extend(self._check_serial_equivalents(kernels_ctx, registered))
        arena_ctx = project.get(_ARENA_MODULE)
        if arena_ctx is not None:
            findings.extend(self._check_arena(arena_ctx, project, set(registered)))
        return findings

    def _check_serial_equivalents(
        self, ctx: ModuleContext, registered: Dict[str, ast.AST]
    ):
        table = _module_dict_literal(ctx, "SERIAL_EQUIVALENTS")
        if table is None:
            yield self.finding(
                ctx,
                ctx.tree,
                "repro.exec.kernels must declare SERIAL_EQUIVALENTS, the "
                "dict literal mapping every CSR kernel to its dict-backend "
                "serial equivalent (the degradation contract)",
            )
            return
        mapped: Dict[str, str] = {}
        for key, value in zip(table.keys, table.values):
            if isinstance(key, ast.Constant) and isinstance(value, ast.Constant):
                mapped[key.value] = value.value
        for name, node in sorted(registered.items()):
            if name.startswith("dict_"):
                continue
            serial = mapped.get(name)
            if serial is None:
                yield self.finding(
                    ctx,
                    node,
                    f"kernel {name!r} has no SERIAL_EQUIVALENTS entry: every "
                    "CSR kernel needs a declared dict-backend equivalent so "
                    "degraded executors can answer for it",
                )
            elif serial not in registered:
                yield self.finding(
                    ctx,
                    table,
                    f"SERIAL_EQUIVALENTS maps {name!r} to unregistered "
                    f"kernel {serial!r}",
                )
            elif not serial.startswith("dict_"):
                yield self.finding(
                    ctx,
                    table,
                    f"SERIAL_EQUIVALENTS maps {name!r} to {serial!r}, which "
                    "is not a dict_* kernel: serial equivalents must run on "
                    "the dict backend without numpy",
                )
        for name in sorted(mapped):
            if name not in registered:
                yield self.finding(
                    ctx,
                    table,
                    f"SERIAL_EQUIVALENTS lists unregistered kernel {name!r}",
                )

    def _check_arena(
        self, ctx: ModuleContext, project: ProjectContext, registered: Set[str]
    ):
        arena_value = _module_assignment(ctx, "_ARENA_KERNELS")
        arena_kernels = (
            set(string_constants(arena_value)) if arena_value is not None else set()
        )
        writers_table = _module_dict_literal(ctx, "_WRITERS")
        writer_names: Dict[str, str] = {}
        if writers_table is not None:
            for key, value in zip(writers_table.keys, writers_table.values):
                if isinstance(key, ast.Constant):
                    writer_names[key.value] = (
                        value.id if isinstance(value, ast.Name) else ""
                    )
        defs = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.FunctionDef)
        }
        for name in sorted(arena_kernels):
            if name not in registered:
                yield self.finding(
                    ctx,
                    arena_value,
                    f"_ARENA_KERNELS lists {name!r}, which is not a "
                    "registered kernel",
                )
            if writers_table is not None and name not in writer_names:
                yield self.finding(
                    ctx,
                    writers_table,
                    f"arena kernel {name!r} has no _WRITERS entry: "
                    "supports() says it ships through the arena but no "
                    "writer can fill its planes",
                )
        for name in sorted(writer_names):
            if name not in arena_kernels:
                yield self.finding(
                    ctx,
                    writers_table,
                    f"_WRITERS has an entry for {name!r} which is not in "
                    "_ARENA_KERNELS: supports() would refuse an arena the "
                    "worker could serve",
                )
        into_cores: Set[str] = set()
        for kernel, writer in sorted(writer_names.items()):
            node = defs.get(writer)
            if node is None:
                continue
            if not _writer_produces_rows(node, into_cores):
                yield self.finding(
                    ctx,
                    node,
                    f"arena writer {writer}() for kernel {kernel!r} neither "
                    "calls a *_into write-into core, delegates via "
                    "KERNELS[...], nor stores into the result planes",
                )
        csr_ctx = project.get(_CSR_MODULE)
        if csr_ctx is not None and into_cores:
            csr_defs = {
                n.name
                for n in ast.walk(csr_ctx.tree)
                if isinstance(n, ast.FunctionDef)
            }
            for core in sorted(into_cores):
                if core not in csr_defs:
                    yield self.finding(
                        ctx,
                        ctx.tree,
                        f"arena writers reference write-into core {core}() "
                        "which repro.signed.csr does not define",
                    )
