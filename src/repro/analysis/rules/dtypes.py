"""``dtype-discipline``: CSR planes keep their declared wire dtypes.

The snapshot format (PR 4) and the shared-memory republish protocol both
write raw plane bytes with *declared* dtypes: ``indptr`` is int64,
``indices`` int32, ``signs`` int8.  A plane built with a different dtype
round-trips through ``save_snapshot``/``mmap`` or a pool republish as
garbage — numpy would happily build an int64 ``indices`` array locally and
the corruption only surfaces when another process maps the bytes.

The check: inside ``repro.signed.*``, any assignment whose target is named
like a plane (``*indptr``, ``*indices``, ``*signs``) and whose value is a
call carrying a ``dtype=`` keyword must use the declared dtype family.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.core import Finding, ModuleContext, Rule, register_rule
from repro.analysis.rules._util import keyword_value, terminal_name

_INT64 = frozenset({"int64", "i8", "<i8", ">i8", "=i8", "longlong"})
_INT32 = frozenset({"int32", "i4", "<i4", ">i4", "=i4", "intc"})
_INT8 = frozenset({"int8", "i1", "<i1", ">i1", "=i1", "|i1", "byte"})


def _plane_family(name: str):
    if name.endswith("indptr"):
        return "indptr", _INT64, "int64"
    if name == "indices" or name.endswith("_indices"):
        return "indices", _INT32, "int32"
    if name == "signs" or name.endswith("_signs"):
        return "signs", _INT8, "int8"
    return None


def _dtype_token(node: ast.AST) -> Optional[str]:
    """Normalise a ``dtype=`` value to a comparable token, if statically known."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, (ast.Attribute, ast.Name)):
        return terminal_name(node)
    if isinstance(node, ast.Call):
        # np.dtype("...") — look through to the argument.
        if terminal_name(node.func) == "dtype" and node.args:
            return _dtype_token(node.args[0])
    return None


@register_rule
class DtypeDisciplineRule(Rule):
    id = "dtype-discipline"
    contract = (
        "CSR planes are built with their declared wire dtypes — indptr "
        "int64, indices int32, signs int8 — so snapshot bytes and "
        "shared-memory views mean the same thing in every process"
    )

    def check_module(self, ctx: ModuleContext):
        findings: List[Finding] = []
        if not ctx.module.startswith("repro.signed"):
            return findings
        for node in ast.walk(ctx.tree):
            targets: Iterable[ast.AST] = ()
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = (node.target,)
            else:
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            dtype_node = keyword_value(value, "dtype")
            if dtype_node is None:
                continue
            token = _dtype_token(dtype_node)
            if token is None:
                continue
            for target in targets:
                family = _plane_family(terminal_name(target))
                if family is None:
                    continue
                plane, allowed, declared = family
                if token not in allowed:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{plane} plane built with dtype {token!r} "
                            f"instead of the declared {declared}: snapshot "
                            "and shared-memory consumers map the raw bytes "
                            "with the declared dtype and would read garbage",
                        )
                    )
        return findings
