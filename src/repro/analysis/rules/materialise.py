"""``no-materialise``: read paths must stay dict-free.

``CSRBackedSignedGraph`` exists so million-node graphs are served straight
from CSR planes; ``_materialise()`` inflates the full python dict adjacency
(gigabytes at scale) and is strictly a last-resort escape hatch owned by
``repro.signed.lazy`` itself.  Read-only code — facades, relations, engine,
executor — must use the dict-free protocol (iteration, ``degree``,
``neighbors_with_signs``) instead.

Touching ``_adjacency`` outside ``repro.signed`` is the same bug with the
lid off: on a CSR-backed facade the attribute access *triggers*
materialisation via ``__getattr__``-style lazy properties, silently turning
an O(1) membership probe into an O(E) inflation.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, ModuleContext, Rule, register_rule


@register_rule
class NoMaterialiseRule(Rule):
    id = "no-materialise"
    contract = (
        "read-only code never calls CSRBackedSignedGraph._materialise or "
        "touches _adjacency outside repro.signed; million-node serving "
        "depends on the dict adjacency never being inflated"
    )

    def check_module(self, ctx: ModuleContext):
        findings: List[Finding] = []
        if ctx.module == "repro.signed.lazy":
            return findings
        in_signed = ctx.module.startswith("repro.signed")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr == "_materialise":
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "_materialise referenced outside repro.signed.lazy: "
                        "inflating the dict adjacency defeats dict-free CSR "
                        "serving (use the graph protocol: iteration, "
                        "degree(), neighbors_with_signs())",
                    )
                )
            elif node.attr == "_adjacency" and not in_signed:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "_adjacency accessed outside repro.signed: on a "
                        "CSR-backed facade this materialises the full dict "
                        "adjacency (iterate the graph or use __contains__ "
                        "instead)",
                    )
                )
        return findings
