"""``lazy-numpy``: the dict backend must import without numpy.

The degradation story (PR 6) is that ``import repro`` and the whole dict
backend work on a bare CPython: numpy only loads when a CSR feature is
actually touched.  That holds because exactly four modules are allowed to
import numpy at module level — the lazily-exported CSR quartet behind
``repro.signed.__getattr__`` — and nothing else may import *them* at module
level either (importing a gated module transitively imports numpy).

Escape hatches that keep the contract and are accepted here:

* imports inside a function body (deferred until the feature is used);
* module-level imports wrapped in ``try/except ImportError`` (the
  ``repro.skills.generators`` pattern: degrade, don't crash);
* imports under ``if TYPE_CHECKING:`` (never executed at runtime).
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, ModuleContext, Rule, register_rule
from repro.analysis.rules._util import walk_no_functions

#: The only modules allowed to assume numpy at import time.
GATED_MODULES = {
    "repro.signed.csr",
    "repro.signed.ingest",
    "repro.signed.lazy",
    "repro.signed.labels",
}
_GATED_LEAVES = {name.rsplit(".", 1)[1] for name in GATED_MODULES}


def _handles_import_error(node: ast.Try) -> bool:
    for handler in node.handlers:
        typ = handler.type
        names = []
        if isinstance(typ, ast.Tuple):
            names = [getattr(e, "id", getattr(e, "attr", "")) for e in typ.elts]
        elif typ is not None:
            names = [getattr(typ, "id", getattr(typ, "attr", ""))]
        else:
            return True  # bare except
        if any(n in {"ImportError", "ModuleNotFoundError", "Exception"} for n in names):
            return True
    return False


def _guarded_nodes(tree: ast.AST) -> set:
    """ids() of statements under try/except ImportError or TYPE_CHECKING."""
    guarded = set()
    for node in walk_no_functions(tree):
        body = None
        if isinstance(node, ast.Try) and _handles_import_error(node):
            body = node.body
        elif isinstance(node, ast.If) and "TYPE_CHECKING" in ast.dump(node.test):
            body = node.body
        if body is not None:
            for stmt in body:
                for sub in ast.walk(stmt):
                    guarded.add(id(sub))
    return guarded


def _resolve_relative(module: str, node: ast.ImportFrom) -> str:
    """Absolute dotted name of a ``from ... import`` target module."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # level=1 strips the module's own leaf, each extra level one more parent.
    base = parts[: len(parts) - node.level]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


@register_rule
class LazyNumpyRule(Rule):
    id = "lazy-numpy"
    contract = (
        "no module-level numpy import (direct or via a CSR module) outside "
        "the four lazily-gated modules, so the dict backend imports on a "
        "numpy-free interpreter"
    )

    def check_module(self, ctx: ModuleContext):
        findings: List[Finding] = []
        if not ctx.module.startswith("repro.") and ctx.module != "repro":
            return findings
        if ctx.module in GATED_MODULES:
            return findings
        guarded = _guarded_nodes(ctx.tree)
        for node in walk_no_functions(ctx.tree):
            if id(node) in guarded:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "numpy":
                        findings.append(self._numpy_finding(ctx, node, alias.name))
                    elif alias.name in GATED_MODULES:
                        findings.append(self._gated_finding(ctx, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_relative(ctx.module, node)
                if target.split(".")[0] == "numpy":
                    findings.append(self._numpy_finding(ctx, node, target))
                elif target in GATED_MODULES:
                    findings.append(self._gated_finding(ctx, node, target))
                elif target == "repro.signed" or (
                    node.level > 0 and target == "repro.signed"
                ):
                    for alias in node.names:
                        if alias.name in _GATED_LEAVES:
                            findings.append(
                                self._gated_finding(
                                    ctx, node, f"repro.signed.{alias.name}"
                                )
                            )
        return findings

    def _numpy_finding(self, ctx, node, name):
        return self.finding(
            ctx,
            node,
            f"module-level import of {name} outside the gated CSR modules: "
            "the dict backend must import on a numpy-free interpreter "
            "(defer the import into the function that needs it, or guard "
            "it with try/except ImportError)",
        )

    def _gated_finding(self, ctx, node, name):
        return self.finding(
            ctx,
            node,
            f"module-level import of numpy-gated module {name}: importing "
            "it transitively imports numpy at import time (go through the "
            "lazy repro.signed exports inside a function, or guard with "
            "try/except ImportError)",
        )
