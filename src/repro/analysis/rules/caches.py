"""``cache-key-discipline``: per-source caches must be generation-keyed.

Every per-source cache in the compatibility layers
(:class:`~repro.utils.generational.GenerationalLRUCache`) keys entry validity
on ``(source, generation)`` by syncing against the graph it was constructed
with.  Two ways to get that wrong, both checked here:

1. constructing a ``GenerationalLRUCache`` without the graph argument — the
   cache then has nothing to sync against and silently serves stale results
   after churn;
2. using a plain :class:`~repro.utils.lru.LRUCache` for a per-source cache
   inside ``repro.compatibility`` — those caches outlive mutations, which is
   exactly the bug class PR 3 eliminated.  A deliberate static cache gets an
   inline ``# repro: ignore[cache-key-discipline]`` stating why.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, ModuleContext, Rule, register_rule
from repro.analysis.rules._util import call_name, keyword_value


def _first_positional_is_graphlike(call: ast.Call) -> bool:
    """Reject literal first arguments — a graph is never a constant."""
    if not call.args:
        return False
    first = call.args[0]
    if isinstance(first, ast.Starred):
        return True  # unpacked argument list: assume the caller knows
    return not isinstance(first, ast.Constant)


@register_rule
class CacheKeyDisciplineRule(Rule):
    id = "cache-key-discipline"
    contract = (
        "per-source caches are GenerationalLRUCache instances constructed "
        "with their graph, so entries expire with the graph generation"
    )

    def check_module(self, ctx: ModuleContext):
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "GenerationalLRUCache":
                if not (
                    _first_positional_is_graphlike(node)
                    or keyword_value(node, "graph") is not None
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "GenerationalLRUCache constructed without its "
                            "graph: entries cannot expire with the "
                            "generation and will be served stale after "
                            "mutations",
                        )
                    )
            elif name == "LRUCache" and ctx.module.startswith("repro.compatibility"):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "plain LRUCache in a compatibility module: per-source "
                        "results must live in a GenerationalLRUCache keyed on "
                        "(source, generation), or carry an explicit "
                        "suppression stating why this cache is "
                        "mutation-independent",
                    )
                )
        return findings
