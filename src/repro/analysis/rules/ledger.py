"""``ledger-discipline``: crash-cleanup ledgers must see every allocation.

The executor and snapshot store survive worker crashes because every
OS-visible resource is registered with a process-local ledger *in the same
function that allocates it*:

* ``shared_memory.SharedMemory(create=True)`` → ``_SEGMENT_LEDGER`` —
  otherwise a crashed run leaks POSIX shm segments until reboot;
* snapshot-store temp files (``_temp_path(...)`` / ``tempfile`` APIs) →
  ``_TEMP_LEDGER`` — otherwise an interrupted save litters ``*.tmp`` files
  next to the store;
* snapshot files published by the pool (``save_snapshot`` in
  ``repro.exec``) → ``_STORE_FILE_LEDGER`` — otherwise republished planes
  outlive the pool that owns them.

"Same function" is the contract, not "somewhere": the ledgers are consulted
by ``atexit``/signal handlers, so a registration deferred to a helper the
crash can skip is no registration at all.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, ModuleContext, Rule, register_rule
from repro.analysis.rules._util import call_name, iter_functions, keyword_value

_TEMPFILE_APIS = {"mkstemp", "NamedTemporaryFile", "mkdtemp"}
_LEDGERS = {"_SEGMENT_LEDGER", "_TEMP_LEDGER", "_STORE_FILE_LEDGER"}


def _ledger_stores(func: ast.AST) -> set:
    """Names of ledgers written (``LEDGER[...] = ...``) inside ``func``."""
    stores = set()
    for node in ast.walk(func):
        targets = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = (node.target,)
        for target in targets:
            if isinstance(target, ast.Subscript):
                base = target.value
                name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
                if name in _LEDGERS:
                    stores.add(name)
        # LEDGER.setdefault(...) / LEDGER.pop-style registration helpers
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
            if name in _LEDGERS and node.func.attr in {"setdefault", "add", "append"}:
                stores.add(name)
    return stores


@register_rule
class LedgerDisciplineRule(Rule):
    id = "ledger-discipline"
    contract = (
        "shared-memory segments, snapshot temp files and published store "
        "files are registered with their crash-cleanup ledger in the same "
        "function that allocates them"
    )

    def check_module(self, ctx: ModuleContext):
        findings: List[Finding] = []
        if not ctx.module.startswith("repro."):
            return findings
        for func, _stack in iter_functions(ctx.tree):
            stores = None  # computed lazily: most functions allocate nothing
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                requirement = self._requirement(ctx, node)
                if requirement is None:
                    continue
                ledger, what = requirement
                if stores is None:
                    stores = _ledger_stores(func)
                if ledger not in stores:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{func.name}() allocates {what} without "
                            f"registering it in {ledger} in the same "
                            "function; a crash between allocation and a "
                            "deferred registration leaks the resource",
                        )
                    )
        return findings

    def _requirement(self, ctx: ModuleContext, call: ast.Call):
        name = call_name(call)
        if name == "SharedMemory":
            create = keyword_value(call, "create")
            if isinstance(create, ast.Constant) and create.value is True:
                return "_SEGMENT_LEDGER", "a SharedMemory segment (create=True)"
            return None
        if name == "_temp_path":
            return "_TEMP_LEDGER", "a snapshot-store temp path"
        if name in _TEMPFILE_APIS:
            return "_TEMP_LEDGER", f"a tempfile.{name} resource"
        if name == "save_snapshot" and ctx.module.startswith("repro.exec"):
            return "_STORE_FILE_LEDGER", "a published snapshot file"
        return None
