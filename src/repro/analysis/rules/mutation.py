"""``mutation-discipline``: adjacency writes must stamp the dynamic-graph state.

The whole dynamic-graph machinery (PR 3 onwards) rests on three facts about
any method that changes adjacency state on :class:`~repro.signed.graph.
SignedGraph` or a subclass (the CSR-backed facade included):

1. it bumps :attr:`generation` via ``self._record_mutation(...)`` — every
   generation-keyed cache, the CSR view and the pool's republish keying
   depend on it;
2. it appends the structured event to the :class:`~repro.signed.delta.
   GraphDelta` log (``self._delta.record_*``) — delta-maintained CSR views
   and the dict-free facade depend on it;
3. sign flips pass ``topology=False`` so the distance-only consumers (the
   label index) are *not* invalidated, and topology mutations do not — the
   ``_touched_topology`` split of PR 9.

Delegating to the base implementation (``SignedGraph.add_edge(self, ...)``
or ``super().add_edge(...)``) satisfies all three by construction.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Finding, ModuleContext, Rule, register_rule
from repro.analysis.rules._util import call_name

#: Mutator method → the delta event it must log.
_MUTATORS = {
    "add_node": "record_node_added",
    "add_edge": "record_edge_added",
    "set_sign": "record_sign_changed",
    "remove_edge": "record_edge_removed",
    "remove_node": "record_node_removed",
}

#: Adjacency-derived counters: writing one marks a method as a mutator even
#: if it is not named like one.
_COUNTERS = {"_num_edges", "_num_positive"}


def _is_signed_graph_class(node: ast.ClassDef) -> bool:
    if node.name == "SignedGraph":
        return True
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if "SignedGraph" in name and name != "CSRSignedGraph":
            return True
    return False


def _delegates(method: ast.FunctionDef) -> bool:
    """True iff the method calls the base-class implementation of itself."""
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == method.name):
            continue
        value = func.value
        if isinstance(value, ast.Name) and "SignedGraph" in value.id:
            return True
        if isinstance(value, ast.Call) and getattr(value.func, "id", "") == "super":
            return True
    return False


def _record_mutation_calls(method: ast.FunctionDef) -> List[ast.Call]:
    return [
        node
        for node in ast.walk(method)
        if isinstance(node, ast.Call) and call_name(node) == "_record_mutation"
    ]


def _logs_delta_event(method: ast.FunctionDef, event: str) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Call) and call_name(node) == event:
            return True
    return False


def _writes_self_counter(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        targets: Iterable[ast.AST] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,)
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _COUNTERS
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return True
    return False


@register_rule
class MutationDisciplineRule(Rule):
    id = "mutation-discipline"
    contract = (
        "SignedGraph mutators must bump the generation (self._record_mutation), "
        "log the structured delta event, and keep the topology/sign-flip split"
    )

    def check_module(self, ctx: ModuleContext):
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef) and _is_signed_graph_class(node)):
                continue
            for method in node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                findings.extend(self._check_method(ctx, node, method))
        return findings

    def _check_method(
        self, ctx: ModuleContext, cls: ast.ClassDef, method: ast.FunctionDef
    ):
        name = method.name
        if name in _MUTATORS:
            if _delegates(method):
                return
            records = _record_mutation_calls(method)
            if not records:
                yield self.finding(
                    ctx,
                    method,
                    f"{cls.name}.{name} writes adjacency state without calling "
                    "self._record_mutation() (generation-keyed caches would "
                    "serve stale results) and does not delegate to the base "
                    "implementation",
                )
            if not _logs_delta_event(method, _MUTATORS[name]):
                yield self.finding(
                    ctx,
                    method,
                    f"{cls.name}.{name} does not log its mutation to the "
                    f"GraphDelta via {_MUTATORS[name]}() (delta-maintained "
                    "CSR views would silently diverge)",
                )
            for call in records:
                topology_false = any(
                    keyword.arg == "topology"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                    for keyword in call.keywords
                )
                if name == "set_sign" and not topology_false:
                    yield self.finding(
                        ctx,
                        call,
                        f"{cls.name}.set_sign must pass topology=False to "
                        "_record_mutation (sign flips cannot move distances; "
                        "marking them topological forces needless label-index "
                        "resweeps)",
                    )
                if name != "set_sign" and topology_false:
                    yield self.finding(
                        ctx,
                        call,
                        f"{cls.name}.{name} passes topology=False to "
                        "_record_mutation but edge/node mutations move "
                        "distances (the label index would keep stale arrays)",
                    )
            return
        if name == "__init__" or name.startswith("__"):
            return
        if _writes_self_counter(method):
            if not (_delegates(method) or _record_mutation_calls(method)):
                yield self.finding(
                    ctx,
                    method,
                    f"{cls.name}.{name} writes an adjacency counter "
                    "(_num_edges/_num_positive) without bumping the "
                    "generation via self._record_mutation()",
                )
