"""The rule set: one module per invariant.

Importing this package registers every rule with the framework registry
(:func:`repro.analysis.core.all_rules` triggers the import).  Each module
carries the full statement of its contract in the rule's docstring; the
README's "Codebase invariants" table is the reader-facing summary.
"""

from repro.analysis.rules import (  # noqa: F401  (import = register)
    caches,
    dtypes,
    imports,
    kernels,
    ledger,
    materialise,
    mutation,
    policy,
)

__all__ = [
    "caches",
    "dtypes",
    "imports",
    "kernels",
    "ledger",
    "materialise",
    "mutation",
    "policy",
]
