"""``policy-shim``: execution knobs enter only through ``resolve_policy``.

:class:`~repro.exec.policy.ExecutionPolicy` is the single funnel for every
execution knob — backend choice, pool shape, cache budgets, arena limits.
Public constructors must not grow loose keyword arguments that shadow those
knobs: a constructor that accepts ``workers=`` but never routes it through
``resolve_policy`` silently forks the configuration surface, and the env-var
overrides (``REPRO_*``) stop applying to it.

The check: any public class in ``repro.*`` whose ``__init__`` takes a
parameter named like a policy knob must call ``resolve_policy`` (or
construct an ``ExecutionPolicy``) inside that ``__init__``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, ModuleContext, Rule, register_rule
from repro.analysis.rules._util import contains_call_to

#: Parameter names that are execution knobs (mirrors ExecutionPolicy fields
#: plus the cache budget knobs resolve_policy distributes).
KNOBS = frozenset(
    {
        "backend",
        "batched",
        "workers",
        "chunk_size",
        "min_parallel_sources",
        "result_arena",
        "arena_budget_bytes",
        "snapshot_store",
        "lockstep_node_threshold",
        "csr_auto_level_threshold",
        "distance_index",
        "label_budget_bytes",
        "compatible_cache_size",
        "bfs_cache_size",
        "result_cache_size",
        "distance_cache_size",
        "mask_cache_size",
        "cache_size",
    }
)


@register_rule
class PolicyShimRule(Rule):
    id = "policy-shim"
    contract = (
        "public constructors accept execution knobs only via resolve_policy "
        "/ ExecutionPolicy, never as loose keyword arguments they interpret "
        "themselves"
    )

    def check_module(self, ctx: ModuleContext):
        findings: List[Finding] = []
        if not ctx.module.startswith("repro."):
            return findings
        if ctx.module == "repro.exec.policy":
            return findings  # the shim itself
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            init = next(
                (
                    item
                    for item in node.body
                    if isinstance(item, ast.FunctionDef) and item.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            params = [a.arg for a in init.args.args[1:]] + [
                a.arg for a in init.args.kwonlyargs
            ]
            knob_params = sorted(set(params) & KNOBS)
            if not knob_params:
                continue
            if contains_call_to(init, "resolve_policy") or contains_call_to(
                init, "ExecutionPolicy"
            ):
                continue
            findings.append(
                self.finding(
                    ctx,
                    init,
                    f"{node.name}.__init__ accepts execution knob(s) "
                    f"{', '.join(knob_params)} without routing them through "
                    "resolve_policy: knobs interpreted outside the policy "
                    "shim fork the configuration surface and ignore REPRO_* "
                    "env overrides",
                )
            )
        return findings
