"""Project-specific static analysis: the codebase's invariants as lint rules.

Nine PRs of scaling work left this repository resting on a set of
hand-maintained correctness contracts — "every adjacency write bumps the
generation", "every shared-memory segment lands on the crash ledger", "numpy
is only imported behind the lazy gate" — that previously lived in reviewers'
heads and scattered tests.  This package encodes them as AST-level lint rules
that run in CI (``repro-teams analyze`` / ``python -m repro.analysis``), so a
new kernel, mutation path or publish mode cannot silently violate them.

Layout:

* :mod:`repro.analysis.core` — the tiny framework: :class:`Finding` records,
  the rule registry, module/project contexts, inline
  ``# repro: ignore[rule-id]`` suppressions and the analysis driver.
* :mod:`repro.analysis.rules` — one module per invariant (see the README's
  "Codebase invariants" table for the contract each rule protects).
* :mod:`repro.analysis.baseline` — the checked-in waiver file for findings
  that are accepted debt (kept empty: true positives get fixed, deliberate
  exceptions get inline suppressions).
* :mod:`repro.analysis.report` — text and JSON reporters.
* :mod:`repro.analysis.cli` — the ``analyze`` entry point shared by
  ``repro-teams analyze`` and ``python -m repro.analysis``.

The package is dependency-free (stdlib ``ast`` only) and numpy-free by
construction — the analyzer must run on any install the library itself runs
on, including the degraded dict-backend one.
"""

from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    all_rules,
    analyze_project,
    analyze_source,
    analyze_sources,
    default_target,
    iter_python_files,
    load_project,
)
from repro.analysis.baseline import Baseline, filter_baselined
from repro.analysis.report import render_json, render_text

__all__ = [
    "Baseline",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "all_rules",
    "analyze_project",
    "analyze_source",
    "analyze_sources",
    "default_target",
    "filter_baselined",
    "iter_python_files",
    "load_project",
    "render_json",
    "render_text",
]
