"""repro — reproduction of "Forming Compatible Teams in Signed Networks" (EDBT 2020).

The package provides:

* :mod:`repro.signed` — the signed-graph substrate (structure, I/O, generators,
  structural balance, signed path algorithms including the paper's Algorithm 1);
* :mod:`repro.skills` — skill assignments, tasks and skill generators;
* :mod:`repro.compatibility` — the DPE / SPA / SPM / SPO / SBP / SBPH / NNE
  compatibility relations, pairwise statistics and distances;
* :mod:`repro.teams` — the TFSN problem, the generic greedy Algorithm 2 with
  its skill/user selection policies (LCMD, LCMC, ...), an exact solver, and
  the unsigned RarestFirst baseline;
* :mod:`repro.exec` — the execution-policy layer: one
  :class:`~repro.exec.ExecutionPolicy` per stack bundling backend choice,
  cache budgets and (optional) process-pool parallelism for the per-source
  kernels, with serial/pooled results guaranteed bit-identical;
* :mod:`repro.datasets` — synthetic stand-ins for the paper's datasets plus
  loaders for the real SNAP files;
* :mod:`repro.experiments` — runnable reproductions of every table and figure
  of the paper's evaluation section.

Quickstart
----------
>>> from repro import datasets, compatibility, teams
>>> from repro.skills import Task
>>> dataset = datasets.toy_dataset()
>>> relation = compatibility.make_relation("SPO", dataset.graph)
>>> problem = teams.TeamFormationProblem(
...     dataset.graph, dataset.skills, relation, Task(["python", "databases"])
... )
>>> result = teams.lcmd(problem)
>>> result.solved
True
"""

from repro import compatibility, datasets, exceptions, signed, skills, teams, utils
from repro import exec as exec  # noqa: PLC0414 - re-export the subpackage explicitly

__version__ = "1.0.0"

__all__ = [
    "compatibility",
    "datasets",
    "exceptions",
    "exec",
    "signed",
    "skills",
    "teams",
    "utils",
    "__version__",
]
