"""Shortest-path compatibility relations: SPA, SPM, SPO (Definition 3.3).

All three are computed from the output of **Algorithm 1**
(:func:`repro.signed.paths.signed_bfs`), which counts the positive and
negative shortest paths from a query node to every other node in one BFS:

* **SPA** — *all* shortest paths between the pair are positive;
* **SPM** — at least as many positive as negative shortest paths (majority);
* **SPO** — at least *one* positive shortest path exists.

The per-source BFS result is cached, so computing the compatible set of a node
and then asking pair queries from the same node costs a single BFS.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.compatibility.base import CompatibilityRelation
from repro.signed.graph import Node, SignedGraph
from repro.signed.paths import SignedBFSResult, signed_bfs


class _ShortestPathRelation(CompatibilityRelation):
    """Shared machinery: one cached signed BFS per source node."""

    def __init__(self, graph: SignedGraph) -> None:
        super().__init__(graph)
        self._bfs_cache: Dict[Node, SignedBFSResult] = {}

    def _bfs(self, source: Node) -> SignedBFSResult:
        result = self._bfs_cache.get(source)
        if result is None:
            result = signed_bfs(self._graph, source)
            self._bfs_cache[source] = result
        return result

    def _clear_subclass_cache(self) -> None:
        self._bfs_cache.clear()

    def _compute_compatible_set(self, u: Node) -> Set[Node]:
        result = self._bfs(u)
        compatible: Set[Node] = set()
        for node in result.lengths:
            if node == u:
                continue
            positive, negative = result.counts(node)
            if self._pair_rule(positive, negative):
                compatible.add(node)
        return compatible

    def are_compatible(self, u: Node, v: Node) -> bool:
        # Use the cached BFS directly instead of materialising the whole
        # compatible set when only pair queries are needed.
        self._require_nodes(u, v)
        if u == v:
            return True
        source, target = (u, v) if u in self._bfs_cache or v not in self._bfs_cache else (v, u)
        result = self._bfs(source)
        if not result.reachable(target):
            return False
        positive, negative = result.counts(target)
        return self._pair_rule(positive, negative)

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        raise NotImplementedError


class AllShortestPathsCompatibility(_ShortestPathRelation):
    """SPA: every shortest path between the pair is positive."""

    name = "SPA"

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        return positive > 0 and negative == 0


class MajorityShortestPathsCompatibility(_ShortestPathRelation):
    """SPM: at least as many positive as negative shortest paths."""

    name = "SPM"

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        return positive > 0 and positive >= negative


class OneShortestPathCompatibility(_ShortestPathRelation):
    """SPO: at least one shortest path between the pair is positive."""

    name = "SPO"

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        return positive > 0
