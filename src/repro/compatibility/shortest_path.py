"""Shortest-path compatibility relations: SPA, SPM, SPO (Definition 3.3).

All three are computed from the output of **Algorithm 1**
(:func:`repro.signed.paths.signed_bfs`), which counts the positive and
negative shortest paths from a query node to every other node in one BFS:

* **SPA** — *all* shortest paths between the pair are positive;
* **SPM** — at least as many positive as negative shortest paths (majority);
* **SPO** — at least *one* shortest path between the pair is positive.

Two interchangeable backends run Algorithm 1:

* ``"dict"`` — the pure-Python BFS over the adjacency dictionary; lowest
  latency on small graphs and the reference implementation;
* ``"csr"`` — the indexed array BFS over the graph's
  :meth:`~repro.signed.graph.SignedGraph.csr_view`
  (:func:`repro.signed.csr.signed_bfs_csr`); an order of magnitude faster per
  source on SNAP-scale graphs and the backend the batched pair statistics use.

``backend="auto"`` (the default) picks ``"csr"`` once the graph has at least
:data:`CSR_AUTO_THRESHOLD` nodes.  Both backends produce identical relations —
the equivalence tests in ``tests/test_csr.py`` compare them bit for bit.

The per-source BFS result is cached in a bounded LRU
(:class:`repro.utils.lru.LRUCache`), so computing the compatible set of a node
and then asking pair queries from the same node costs a single BFS while a
full sweep over a huge graph can no longer exhaust memory; ``bfs_cache_size``
tunes the bound (``None`` restores the unbounded behaviour).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Union

import numpy as np

from repro.compatibility.base import DEFAULT_COMPATIBLE_CACHE_SIZE, CompatibilityRelation
from repro.signed.csr import CSRSignedBFSResult, signed_bfs_csr
from repro.signed.graph import Node, SignedGraph
from repro.signed.paths import SignedBFSResult, signed_bfs
from repro.utils.lru import LRUCache

#: ``backend="auto"`` switches from the dict BFS to the CSR BFS at this size.
CSR_AUTO_THRESHOLD = 1024

#: Default bound on the number of cached per-source BFS results.
DEFAULT_BFS_CACHE_SIZE = 2048

_BFSResult = Union[SignedBFSResult, CSRSignedBFSResult]


class _ShortestPathRelation(CompatibilityRelation):
    """Shared machinery: one cached signed BFS per source node.

    Parameters
    ----------
    graph:
        The signed graph the relation is defined over.
    backend:
        ``"dict"``, ``"csr"`` or ``"auto"`` (pick by graph size).
    bfs_cache_size:
        LRU bound on cached per-source BFS results (``None`` = unbounded).
    """

    def __init__(
        self,
        graph: SignedGraph,
        backend: str = "auto",
        bfs_cache_size: Optional[int] = DEFAULT_BFS_CACHE_SIZE,
        compatible_cache_size: Optional[int] = DEFAULT_COMPATIBLE_CACHE_SIZE,
    ) -> None:
        super().__init__(graph, compatible_cache_size=compatible_cache_size)
        if backend not in ("auto", "dict", "csr"):
            raise ValueError(
                f"backend must be 'auto', 'dict' or 'csr', got {backend!r}"
            )
        self._backend = backend
        self._bfs_cache: LRUCache[Node, _BFSResult] = LRUCache(maxsize=bfs_cache_size)

    def _use_csr(self) -> bool:
        if self._backend == "csr":
            return True
        if self._backend == "dict":
            return False
        return self._graph.number_of_nodes() >= CSR_AUTO_THRESHOLD

    def _bfs(self, source: Node) -> _BFSResult:
        result = self._bfs_cache.get(source)
        if result is None:
            if self._use_csr():
                try:
                    result = signed_bfs_csr(self._graph.csr_view(), source)
                except OverflowError:
                    # Counts past the int64 guard need the dict backend's
                    # arbitrary-precision integers; fall back per source.
                    result = signed_bfs(self._graph, source)
            else:
                result = signed_bfs(self._graph, source)
            self._bfs_cache[source] = result
        return result

    def _clear_subclass_cache(self) -> None:
        self._bfs_cache.clear()

    def _compute_compatible_set(self, u: Node) -> Set[Node]:
        result = self._bfs(u)
        if isinstance(result, CSRSignedBFSResult):
            rule_mask = self._pair_rule_mask(
                result.positive_array, result.negative_array
            )
            return set(result.compatible_nodes(rule_mask))
        compatible: Set[Node] = set()
        for node in result.lengths:
            if node == u:
                continue
            positive, negative = result.counts(node)
            if self._pair_rule(positive, negative):
                compatible.add(node)
        return compatible

    def are_compatible(self, u: Node, v: Node) -> bool:
        # Use the cached BFS directly instead of materialising the whole
        # compatible set when only pair queries are needed.
        self._require_nodes(u, v)
        if u == v:
            return True
        source, target = (u, v) if u in self._bfs_cache or v not in self._bfs_cache else (v, u)
        result = self._bfs(source)
        if not result.reachable(target):
            return False
        positive, negative = result.counts(target)
        return self._pair_rule(positive, negative)

    def batch_compatibility_degrees(self, sources: Sequence[Node]) -> List[int]:
        """Number of *other* compatible nodes for every source, batched.

        On the CSR backend every source runs the vectorised BFS over one
        shared index with the pair rule applied as a vectorised mask — no
        per-node Python iteration and no set materialisation.  On the dict
        backend it falls back to the base class's per-source loop.  The counts
        are identical across backends.
        """
        self._require_nodes(*sources)
        if not self._use_csr():
            return super().batch_compatibility_degrees(sources)
        csr = self._graph.csr_view()
        # Hold the batch results locally: the LRU is only a write-through side
        # effect, so a sample larger than bfs_cache_size is still one batched
        # pass instead of silently recomputing evicted sources one by one.
        results = {}
        for source in sources:
            cached = self._bfs_cache.get(source)
            if cached is not None and isinstance(cached, CSRSignedBFSResult):
                results[source] = cached
        for source in sources:
            if source in results:
                continue
            try:
                result = signed_bfs_csr(csr, source)
            except OverflowError:
                # Cache the dict result now so the fallback below does not
                # re-run the doomed CSR traversal through _bfs.
                self._bfs_cache[source] = signed_bfs(self._graph, source)
                continue
            results[source] = result
            self._bfs_cache[source] = result
        degrees: List[int] = []
        for source in sources:
            result = results.get(source)
            if result is None:
                degrees.append(self.compatibility_degree(source))
                continue
            rule_mask = self._pair_rule_mask(
                result.positive_array, result.negative_array
            )
            degrees.append(result.compatible_count(rule_mask))
        return degrees

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        raise NotImplementedError

    @staticmethod
    def _pair_rule_mask(positive: np.ndarray, negative: np.ndarray) -> np.ndarray:
        """Vectorised counterpart of :meth:`_pair_rule` over count arrays."""
        raise NotImplementedError


class AllShortestPathsCompatibility(_ShortestPathRelation):
    """SPA: every shortest path between the pair is positive."""

    name = "SPA"

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        return positive > 0 and negative == 0

    @staticmethod
    def _pair_rule_mask(positive: np.ndarray, negative: np.ndarray) -> np.ndarray:
        return (positive > 0) & (negative == 0)


class MajorityShortestPathsCompatibility(_ShortestPathRelation):
    """SPM: at least as many positive as negative shortest paths."""

    name = "SPM"

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        return positive > 0 and positive >= negative

    @staticmethod
    def _pair_rule_mask(positive: np.ndarray, negative: np.ndarray) -> np.ndarray:
        return (positive > 0) & (positive >= negative)


class OneShortestPathCompatibility(_ShortestPathRelation):
    """SPO: at least one shortest path between the pair is positive."""

    name = "SPO"

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        return positive > 0

    @staticmethod
    def _pair_rule_mask(positive: np.ndarray, negative: np.ndarray) -> np.ndarray:
        return positive > 0
