"""Shortest-path compatibility relations: SPA, SPM, SPO (Definition 3.3).

All three are computed from the output of **Algorithm 1**
(:func:`repro.signed.paths.signed_bfs`), which counts the positive and
negative shortest paths from a query node to every other node in one BFS:

* **SPA** — *all* shortest paths between the pair are positive;
* **SPM** — at least as many positive as negative shortest paths (majority);
* **SPO** — at least *one* shortest path between the pair is positive.

Two interchangeable backends run Algorithm 1:

* ``"dict"`` — the pure-Python BFS over the adjacency dictionary; lowest
  latency on small graphs, the reference implementation, and the only backend
  available on numpy-free installs;
* ``"csr"`` — the indexed array BFS over the graph's
  :meth:`~repro.signed.graph.SignedGraph.csr_view`
  (:func:`repro.signed.csr.signed_bfs_csr`); an order of magnitude faster per
  source on SNAP-scale graphs, with a true lockstep multi-source kernel
  (:func:`repro.signed.csr.multi_source_signed_bfs`) behind :meth:`batch_bfs`.

``backend="auto"`` (the default) is **size- and diameter-adaptive**: the CSR
backend is considered once the graph has at least :data:`CSR_AUTO_THRESHOLD`
nodes, but because the level-synchronous CSR BFS pays ~20 array operations per
level, high-diameter graphs (paths, grids, meshes) run faster on the dict
backend.  The first BFS in auto mode therefore runs on the dict backend and
counts its levels: if the probe's eccentricity exceeds
:data:`CSR_AUTO_LEVEL_THRESHOLD`, the relation commits to the dict backend;
otherwise it commits to CSR.  The probe result is cached like any other BFS,
so the work is never wasted.  On numpy-free installs ``"auto"`` falls back to
the dict backend with a one-time warning, while an explicit ``backend="csr"``
raises :class:`ImportError` at construction time.  All backends produce
identical relations — the equivalence tests compare them bit for bit.

The per-source BFS result is cached in a bounded LRU
(:class:`repro.utils.lru.LRUCache`); the default ``bfs_cache_size="auto"``
scales the entry bound down on huge graphs so the cache stays within a fixed
byte budget (entries are O(n) — see :func:`repro.utils.lru.scaled_cache_size`).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Union

from repro.compatibility.base import (
    CacheSize,
    CompatibilityRelation,
    resolve_cache_size,
)
from repro.exec.policy import POLICY_DEFAULT, ExecutionPolicy, resolve_policy
from repro.signed.graph import Node, SignedGraph
from repro.signed.paths import SignedBFSResult, signed_bfs
from repro.utils.generational import GenerationalLRUCache
from repro.utils.lru import APPROX_BYTES_PER_NODE, fetch_batched
from repro.utils.optional import numpy_available, require_numpy, warn_numpy_missing

#: ``backend="auto"`` considers the CSR BFS from this graph size upward.
CSR_AUTO_THRESHOLD = 1024

#: ``backend="auto"`` commits to the dict backend when the probe BFS observes
#: more levels than this.  The level-synchronous CSR BFS pays a fixed ~20
#: array operations per level, so beyond a few dozen levels (paths, grids,
#: meshes — the probe's eccentricity is at least half the diameter) the
#: per-edge dict BFS wins despite its interpreter overhead.
CSR_AUTO_LEVEL_THRESHOLD = 32

#: Default bound on the number of cached per-source BFS results (the ceiling
#: the ``"auto"`` byte-aware sizing starts from).
DEFAULT_BFS_CACHE_SIZE = 2048

# The CSR result type is imported lazily (numpy-free installs never load it).
_BFSResult = Union[SignedBFSResult, "CSRSignedBFSResult"]  # noqa: F821


class _ShortestPathRelation(CompatibilityRelation):
    """Shared machinery: one cached signed BFS per source node.

    Parameters
    ----------
    graph:
        The signed graph the relation is defined over.
    backend:
        Legacy override for ``policy.backend``: ``"dict"``, ``"csr"`` or
        ``"auto"`` (size- and diameter-adaptive).  Prefer setting it on the
        policy.
    bfs_cache_size:
        Legacy override for ``policy.bfs_cache_size`` — the LRU bound on
        cached per-source BFS results; ``"auto"`` (the policy default)
        scales :data:`DEFAULT_BFS_CACHE_SIZE` down by graph size so the cache
        respects a byte budget, an ``int`` is used as-is, ``None`` disables
        eviction.
    policy:
        The :class:`~repro.exec.ExecutionPolicy` governing backend choice,
        worker-pool execution and cache budgets.  With ``workers >= 2`` the
        batched entry points (:meth:`batch_bfs`, :meth:`batch_compatible_sets`)
        dispatch their per-source traversals to a process pool; results are
        bit-identical to serial execution.
    """

    def __init__(
        self,
        graph: SignedGraph,
        backend: Optional[str] = None,
        bfs_cache_size: CacheSize = POLICY_DEFAULT,
        compatible_cache_size: CacheSize = POLICY_DEFAULT,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        policy = resolve_policy(
            policy,
            backend=backend,
            bfs_cache_size=bfs_cache_size,
            compatible_cache_size=compatible_cache_size,
        )
        super().__init__(graph, policy=policy)
        graph = self._graph  # the base may have adapted a bare CSR snapshot
        if policy.backend == "csr":
            require_numpy("backend='csr'")
        #: Lazily decided by the diameter probe in auto mode (None = undecided).
        self._auto_prefer_dict: Optional[bool] = None
        num_nodes = graph.number_of_nodes()
        # Generation-keyed: mutating the graph drops only the BFS results
        # whose component a mutation touched; the rest stay valid (results
        # against an older CSR snapshot keep working through the snapshot's
        # shared index — see CSRSignedGraph.shares_index_with).
        self._bfs_cache: GenerationalLRUCache[Node, _BFSResult] = GenerationalLRUCache(
            graph,
            maxsize=resolve_cache_size(
                policy.bfs_cache_size, DEFAULT_BFS_CACHE_SIZE, num_nodes
            ),
            bytes_per_entry=num_nodes * APPROX_BYTES_PER_NODE,
        )

    def _level_threshold(self) -> int:
        """The auto-mode probe eccentricity cut-over (policy override or default)."""
        override = self._policy.csr_auto_level_threshold
        return CSR_AUTO_LEVEL_THRESHOLD if override is None else override

    def _use_csr(self) -> bool:
        if self._policy.backend == "csr":
            return True
        if self._policy.backend == "dict":
            return False
        if self._graph.prefers_csr:
            # CSR-first graphs never pay the dict diameter probe — probing
            # would materialise the adjacency dicts the facade exists to avoid.
            if numpy_available():
                return True
            warn_numpy_missing(f"{self.name} backend='auto'")
            return False
        if self._graph.number_of_nodes() < CSR_AUTO_THRESHOLD:
            return False
        if not numpy_available():
            warn_numpy_missing(f"{self.name} backend='auto'")
            return False
        if self._auto_prefer_dict is None:
            self._probe_diameter()
        return not self._auto_prefer_dict

    #: Maximum dict-BFS probes ``_probe_diameter`` runs before deciding.
    _MAX_DIAMETER_PROBES = 4

    def _probe_diameter(self) -> None:
        """Run a few dict BFS probes and commit auto mode by their level counts.

        A probe's eccentricity is at least half its component's diameter,
        which cleanly separates the social-network regime (a handful of
        levels) from the path/grid regime (hundreds).  One probe per
        *component* (in insertion order, capped) guards against the first
        node being isolated or sitting in a tiny component that says nothing
        about the bulk of the graph; probing stops early once any probe
        crosses the threshold or half the graph is covered.  Probe results
        land in the BFS cache, so the work is reused if those nodes are ever
        queried.
        """
        levels = 0
        seen: Set[Node] = set()
        probes = 0
        half = self._graph.number_of_nodes() / 2
        for node in self._graph:
            if node in seen:
                continue
            result = self._bfs_cache.get(node)
            if result is None:
                result = signed_bfs(self._graph, node)
                self._bfs_cache[node] = result
            if isinstance(result, SignedBFSResult):
                reached = result.lengths
                levels = max(levels, max(reached.values(), default=0))
                seen.update(reached)
            else:  # a cached CSR result (backend switched mid-life)
                import numpy as np

                levels = max(levels, max(0, int(result.lengths_array.max())))
                csr = result.graph
                seen.update(
                    csr.node_at(dense)
                    for dense in np.flatnonzero(result.lengths_array >= 0)
                )
            probes += 1
            if (
                levels > self._level_threshold()
                or len(seen) >= half
                or probes >= self._MAX_DIAMETER_PROBES
            ):
                break
        self._auto_prefer_dict = levels > self._level_threshold()

    def _bfs(self, source: Node) -> _BFSResult:
        result = self._bfs_cache.get(source)
        if result is None:
            if self._use_csr():
                from repro.signed.csr import signed_bfs_csr

                try:
                    result = signed_bfs_csr(self._graph.csr_view(), source)
                except OverflowError:
                    # Counts past the int64 guard need the dict backend's
                    # arbitrary-precision integers; fall back per source.
                    result = signed_bfs(self._graph, source)
            else:
                result = signed_bfs(self._graph, source)
            self._bfs_cache[source] = result
        return result

    def batch_bfs(self, sources: Sequence[Node]) -> List[_BFSResult]:
        """One Algorithm-1 result per source, batched through the executor.

        On the CSR backend, uncached sources are resolved by the policy's
        executor running the ``csr_signed_bfs`` kernel — in-process for a
        serial policy (one lockstep multi-source traversal below the lockstep
        threshold, cache-resident per-source traversals above), or fanned out
        in chunks over the worker pool for ``workers >= 2``.  Sources whose
        counts overflow int64 fall back to the dict backend's
        arbitrary-precision BFS individually, in the parent process.  Results
        are held locally for the duration of the call, so a batch larger than
        the LRU bound is still computed exactly once; they are also written
        through to the cache for follow-up per-pair queries.  Every result is
        bit-identical to what :meth:`_bfs` would have produced, whatever the
        executor.
        """
        source_list = list(sources)
        self._require_nodes(*source_list)
        if not self._use_csr():
            if not self._policy.parallel:
                return [self._bfs(source) for source in source_list]

            def compute_missing_dict(missing: List[Node]) -> List[_BFSResult]:
                return self._executor().map_kernel(
                    "dict_signed_bfs", self._graph, missing
                )

            return fetch_batched(self._bfs_cache, source_list, compute_missing_dict)

        def compute_missing(missing: List[Node]) -> List[_BFSResult]:
            from repro.signed.csr import CSRSignedBFSResult

            csr = self._graph.csr_view()
            triples = self._executor().map_kernel(
                "csr_signed_bfs",
                csr,
                [csr.index_of(source) for source in missing],
                params={
                    "skip_overflow": True,
                    "lockstep_threshold": self._policy.lockstep_node_threshold,
                },
            )
            return [
                # None marks an int64 overflow: that source needs the dict
                # backend's arbitrary-precision counts.
                signed_bfs(self._graph, source)
                if triple is None
                else CSRSignedBFSResult(
                    source=source,
                    graph=csr,
                    lengths_array=triple[0],
                    positive_array=triple[1],
                    negative_array=triple[2],
                )
                for source, triple in zip(missing, triples)
            ]

        return fetch_batched(self._bfs_cache, source_list, compute_missing)

    def _clear_subclass_cache(self) -> None:
        self._bfs_cache.clear()
        self._auto_prefer_dict = None

    def _sync_subclass_caches(self) -> None:
        self._bfs_cache.sync()

    def _compute_compatible_set(self, u: Node) -> Set[Node]:
        result = self._bfs(u)
        if isinstance(result, SignedBFSResult):
            compatible: Set[Node] = set()
            for node in result.lengths:
                if node == u:
                    continue
                positive, negative = result.counts(node)
                if self._pair_rule(positive, negative):
                    compatible.add(node)
            return compatible
        rule_mask = self._pair_rule_mask(result.positive_array, result.negative_array)
        return set(result.compatible_nodes(rule_mask))

    def are_compatible(self, u: Node, v: Node) -> bool:
        # Use the cached BFS directly instead of materialising the whole
        # compatible set when only pair queries are needed.
        self._require_nodes(u, v)
        if u == v:
            return True
        source, target = (u, v) if u in self._bfs_cache or v not in self._bfs_cache else (v, u)
        result = self._bfs(source)
        if not isinstance(result, SignedBFSResult) and target not in result.graph:
            # The cached result survived a mutation elsewhere but predates
            # ``target``'s addition to the graph: a node outside the result's
            # snapshot cannot be in the source's (untouched) component, hence
            # unreachable and incompatible.
            return False
        if not result.reachable(target):
            return False
        positive, negative = result.counts(target)
        return self._pair_rule(positive, negative)

    def batch_compatible_sets(self, sources: Sequence[Node]) -> List[FrozenSet[Node]]:
        """Compatible sets for many sources from one lockstep batched sweep.

        On the CSR backend the uncached sources share one multi-source BFS
        (:meth:`batch_bfs`) and the pair rule is applied as a vectorised mask;
        each returned set equals :meth:`compatible_with` exactly and is
        written into the compatible-set cache.  Results are held locally, so
        samples larger than the cache bound still cost one batched pass.

        Under a pool policy the sweep routes through the
        ``csr_compatible_masks`` kernel instead: the pair rule is applied
        *inside* the workers and each source comes back as a packed
        ``ceil(n/8)``-byte bitmap (through the shared-memory result arena
        when enabled) rather than O(n) BFS arrays — the parent materialises
        the frozensets straight from the bitmap rows.  Sources whose counts
        trip the int64 guard are resolved on the dict backend in the parent,
        exactly like the serial path, without bypassing shipping for the
        rest of the batch.
        """
        source_list = list(sources)
        self._require_nodes(*source_list)
        if not self._use_csr():
            if self._policy.parallel:
                # Prefetch the per-source BFS results through the worker
                # pool; the base-class per-source loop below then reads them
                # from the cache instead of traversing serially.
                self.batch_bfs(source_list)
            return super().batch_compatible_sets(source_list)
        if self._policy.parallel:
            return fetch_batched(
                self._compatible_cache, source_list, self._compute_mask_sets
            )

        def compute_missing(missing: List[Node]) -> List[FrozenSet[Node]]:
            sets: List[FrozenSet[Node]] = []
            for source, result in zip(missing, self.batch_bfs(missing)):
                if isinstance(result, SignedBFSResult):
                    computed = self._compute_compatible_set(source)
                else:
                    rule_mask = self._pair_rule_mask(
                        result.positive_array, result.negative_array
                    )
                    computed = set(result.compatible_nodes(rule_mask))
                computed.add(source)
                sets.append(frozenset(computed))
            return sets

        return fetch_batched(self._compatible_cache, source_list, compute_missing)

    def _batch_compatible_masks(self, sources: Sequence[Node]) -> List:
        """Packed compatible bitmaps per source via the executor.

        One ``uint8`` row of ``ceil(n/8)`` bytes per source (``None`` marks
        an int64 overflow) — ``rule & reachable`` over the snapshot's dense
        ids with the source's own bit set.  Under a pool policy the rows ship
        through the result arena and come back as zero-copy views; under the
        degraded/serial executor the plain kernel computes the same bytes
        in-process (the arena's no-op path).
        """
        csr = self._graph.csr_view()
        return self._executor().map_kernel(
            "csr_compatible_masks",
            csr,
            [csr.index_of(source) for source in sources],
            params={
                "rule": self.name,
                "lockstep_threshold": self._policy.lockstep_node_threshold,
            },
        )

    def _compute_mask_sets(self, missing: List[Node]) -> List[FrozenSet[Node]]:
        """Pool path of :meth:`batch_compatible_sets`: bitmaps in, frozensets out."""
        import numpy as np

        from repro.utils.bitset import unpack_mask

        csr = self._graph.csr_view()
        nodes = csr._nodes
        sets: List[FrozenSet[Node]] = []
        for source, packed in zip(missing, self._batch_compatible_masks(missing)):
            if packed is None:
                # int64 overflow: this source needs the dict backend's
                # arbitrary-precision counts (computed in the parent); the
                # rest of the batch keeps its worker-side bitmaps.
                computed = self._compute_compatible_set(source)
                computed.add(source)
                sets.append(frozenset(computed))
                continue
            mask = unpack_mask(packed, len(nodes))
            sets.append(frozenset(nodes[dense] for dense in np.flatnonzero(mask)))
        return sets

    def batch_compatibility_degrees(self, sources: Sequence[Node]) -> List[int]:
        """Number of *other* compatible nodes for every source, batched.

        On the CSR backend every uncached source shares the lockstep
        multi-source BFS and the pair rule is applied as a vectorised mask —
        no per-node Python iteration and no set materialisation.  On the dict
        backend it falls back to the base class's per-source loop.  Under a
        pool policy, uncached sources are counted *inside* the workers
        (``csr_compatible_degrees``): each per-source BFS reduces to one
        integer before crossing the process boundary, so the sweep ships
        back O(k) ints instead of O(k·n) count arrays (the BFS results are
        then not cached — the count is the product).  The counts are
        identical across backends and executors.
        """
        source_list = list(sources)
        self._require_nodes(*source_list)
        if not self._use_csr():
            # The base class delegates to batch_compatible_sets, whose SP*
            # override already prefetches through the pool when parallel.
            return super().batch_compatibility_degrees(source_list)
        if self._policy.parallel:
            return self._batch_degrees_parallel(source_list)
        degrees: List[int] = []
        for source, result in zip(source_list, self.batch_bfs(source_list)):
            if isinstance(result, SignedBFSResult):
                # Overflow (or probe) fallback: count via the set machinery,
                # which reuses the cached dict BFS.
                degrees.append(self.compatibility_degree(source))
                continue
            rule_mask = self._pair_rule_mask(
                result.positive_array, result.negative_array
            )
            degrees.append(result.compatible_count(rule_mask))
        return degrees

    def _batch_degrees_parallel(self, source_list: List[Node]) -> List[int]:
        """Pool path of :meth:`batch_compatibility_degrees`: worker-side counts.

        Sources with a cached BFS result are counted in the parent from the
        cache (same arithmetic as the serial path); only the misses are
        dispatched, and they come back as bare integers.  Overflow slots
        (``None``) fall back to the dict backend per source, exactly like the
        serial path's ``SignedBFSResult`` branch.
        """
        degrees: List[Optional[int]] = [None] * len(source_list)
        missing: List[Node] = []
        missing_positions: List[int] = []
        for position, source in enumerate(source_list):
            result = self._bfs_cache.get(source)
            if result is None:
                missing.append(source)
                missing_positions.append(position)
            elif isinstance(result, SignedBFSResult):
                degrees[position] = self.compatibility_degree(source)
            else:
                rule_mask = self._pair_rule_mask(
                    result.positive_array, result.negative_array
                )
                degrees[position] = result.compatible_count(rule_mask)
        if missing:
            csr = self._graph.csr_view()
            counts = self._executor().map_kernel(
                "csr_compatible_degrees",
                csr,
                [csr.index_of(source) for source in missing],
                params={
                    "rule": self.name,
                    "lockstep_threshold": self._policy.lockstep_node_threshold,
                },
            )
            for source, position, count in zip(missing, missing_positions, counts):
                degrees[position] = (
                    self.compatibility_degree(source) if count is None else count
                )
        return degrees

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        raise NotImplementedError

    @staticmethod
    def _pair_rule_mask(positive, negative):
        """Vectorised counterpart of :meth:`_pair_rule` over count arrays."""
        raise NotImplementedError


class AllShortestPathsCompatibility(_ShortestPathRelation):
    """SPA: every shortest path between the pair is positive."""

    name = "SPA"

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        return positive > 0 and negative == 0

    @staticmethod
    def _pair_rule_mask(positive, negative):
        return (positive > 0) & (negative == 0)


class MajorityShortestPathsCompatibility(_ShortestPathRelation):
    """SPM: at least as many positive as negative shortest paths."""

    name = "SPM"

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        return positive > 0 and positive >= negative

    @staticmethod
    def _pair_rule_mask(positive, negative):
        return (positive > 0) & (positive >= negative)


class OneShortestPathCompatibility(_ShortestPathRelation):
    """SPO: at least one shortest path between the pair is positive."""

    name = "SPO"

    @staticmethod
    def _pair_rule(positive: int, negative: int) -> bool:
        return positive > 0

    @staticmethod
    def _pair_rule_mask(positive, negative):
        return positive > 0
