"""Pairwise compatibility statistics (the "comp. users" rows of Table 2).

For small graphs the statistics are computed exactly over all unordered node
pairs; for larger graphs a uniform random sample of pairs gives an unbiased
estimate of the same percentage.  Both paths share the :class:`PairStatistics`
result type so the experiment code does not care which one was used.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.compatibility.base import CompatibilityRelation

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids a cycle)
    from repro.compatibility.engine import CompatibilityEngine
from repro.exceptions import NodeNotFoundError
from repro.signed.graph import Node, SignedGraph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class PairStatistics:
    """Fraction of compatible (unordered, distinct) node pairs.

    Attributes
    ----------
    relation_name:
        Name of the compatibility relation the statistics refer to.
    compatible_pairs / evaluated_pairs:
        Raw counts; ``fraction`` is their ratio.
    sampled:
        ``True`` when the pairs were sampled rather than enumerated.
    """

    relation_name: str
    compatible_pairs: int
    evaluated_pairs: int
    sampled: bool

    @property
    def fraction(self) -> float:
        """Compatible fraction in ``[0, 1]`` (0.0 when nothing was evaluated)."""
        if self.evaluated_pairs == 0:
            return 0.0
        return self.compatible_pairs / self.evaluated_pairs

    @property
    def percentage(self) -> float:
        """Compatible fraction as a percentage, as printed in the paper."""
        return 100.0 * self.fraction


class CompatibilityMatrix:
    """Materialised compatible sets for every node of a (small) graph.

    Mostly a convenience for tests, examples and exhaustive experiments; the
    sampled estimators below should be preferred for large graphs.
    """

    def __init__(self, relation: CompatibilityRelation) -> None:
        self._relation = relation
        self._sets: Dict[Node, FrozenSet[Node]] = {
            node: relation.compatible_with(node) for node in relation.graph.nodes()
        }
        # Dense positions (graph insertion order) give a canonical unordered-pair
        # orientation without relying on node comparability or repr uniqueness.
        self._positions: Dict[Node, int] = {
            node: position for position, node in enumerate(self._sets)
        }

    @property
    def relation(self) -> CompatibilityRelation:
        """The relation this matrix was built from."""
        return self._relation

    def compatible_with(self, node: Node) -> FrozenSet[Node]:
        """The compatible set of ``node`` (materialised)."""
        try:
            return self._sets[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def are_compatible(self, u: Node, v: Node) -> bool:
        """Pair query answered from the materialised sets."""
        if u not in self._sets:
            raise NodeNotFoundError(u)
        if v not in self._sets:
            raise NodeNotFoundError(v)
        return u == v or v in self._sets[u]

    def compatible_pairs(self) -> Set[Tuple[Node, Node]]:
        """All unordered compatible pairs of distinct nodes.

        Pairs are oriented by dense node position, so the result is
        well-defined for any hashable node type (no reliance on ``repr``).
        """
        positions = self._positions
        pairs: Set[Tuple[Node, Node]] = set()
        for node, compatible in self._sets.items():
            for other in compatible:
                if other == node:
                    continue
                if positions[node] < positions[other]:
                    pairs.add((node, other))
                else:
                    pairs.add((other, node))
        return pairs

    def statistics(self) -> PairStatistics:
        """Exact :class:`PairStatistics` over all unordered pairs."""
        num_nodes = len(self._sets)
        total_pairs = num_nodes * (num_nodes - 1) // 2
        return PairStatistics(
            relation_name=self._relation.name,
            compatible_pairs=len(self.compatible_pairs()),
            evaluated_pairs=total_pairs,
            sampled=False,
        )


def exact_pair_statistics(relation: CompatibilityRelation) -> PairStatistics:
    """Exact compatible-pair fraction by enumerating all unordered pairs.

    Each unordered pair is visited exactly once by index-based iteration over
    ``enumerate(nodes)`` — every node's compatible set is checked against the
    nodes that follow it — so no ``repr``-based deduplication (or collision
    fallback) is needed and the loop stays O(n²) set lookups.
    """
    nodes = relation.graph.nodes()
    compatible = 0
    total = 0
    for index, u in enumerate(nodes):
        compatible_set = relation.compatible_with(u)
        for v in nodes[index + 1 :]:
            total += 1
            if v in compatible_set:
                compatible += 1
    return PairStatistics(
        relation_name=relation.name,
        compatible_pairs=compatible,
        evaluated_pairs=total,
        sampled=False,
    )


def sampled_pair_statistics(
    relation: CompatibilityRelation,
    num_pairs: int,
    seed: RandomState = None,
) -> PairStatistics:
    """Estimate the compatible-pair fraction from ``num_pairs`` uniform random pairs."""
    require_positive(num_pairs, "num_pairs")
    rng = ensure_rng(seed)
    nodes = relation.graph.nodes()
    if len(nodes) < 2:
        return PairStatistics(relation.name, 0, 0, sampled=True)
    compatible = 0
    for _ in range(num_pairs):
        u, v = rng.sample(nodes, 2)
        if relation.are_compatible(u, v):
            compatible += 1
    return PairStatistics(
        relation_name=relation.name,
        compatible_pairs=compatible,
        evaluated_pairs=num_pairs,
        sampled=True,
    )


def source_sampled_pair_statistics(
    relation: CompatibilityRelation,
    num_sources: int,
    seed: RandomState = None,
    engine: Optional["CompatibilityEngine"] = None,
) -> PairStatistics:
    """Estimate the compatible-pair fraction from a uniform sample of *sources*.

    For every sampled source the full compatible set is computed and compared
    against all other nodes, so the estimate averages ``num_sources`` exact
    per-source fractions.  This amortises the per-source work (one signed BFS
    or balanced-path search) over ``n - 1`` pairs, which is far cheaper than
    sampling independent pairs for relations with expensive per-source
    pre-computation (SBP/SBPH).  The estimator is unbiased because the
    compatible-pair indicator is symmetric in the pair.

    The sample is answered through the relation's batched strategy: the SP*
    family runs one lockstep multi-source CSR BFS, the balanced relations
    resolve the whole sample with one shared reverse sweep, and the
    base-class default loops ``compatible_with``.  Passing an ``engine``
    routes the sweep through
    :meth:`~repro.compatibility.engine.CompatibilityEngine.compatibility_degrees`
    so the call honours the engine's mode (a ``batched=False`` engine answers
    per source — the legacy reference the equivalence tests compare against);
    a batched engine delegates straight back to the relation.  The counts —
    and therefore the returned statistics — are identical across strategies.
    """
    require_positive(num_sources, "num_sources")
    if engine is not None and engine.relation is not relation:
        raise ValueError("the engine must be built on the given relation")
    rng = ensure_rng(seed)
    nodes = relation.graph.nodes()
    if len(nodes) < 2:
        return PairStatistics(relation.name, 0, 0, sampled=True)
    sources = rng.sample(nodes, min(num_sources, len(nodes)))
    if engine is not None:
        compatible = sum(engine.compatibility_degrees(sources))
    else:
        compatible = sum(relation.batch_compatibility_degrees(sources))
    evaluated = len(sources) * (len(nodes) - 1)
    return PairStatistics(
        relation_name=relation.name,
        compatible_pairs=compatible,
        evaluated_pairs=evaluated,
        sampled=True,
    )


def pair_statistics(
    relation: CompatibilityRelation,
    max_exact_nodes: int = 500,
    num_sampled_sources: int = 200,
    seed: RandomState = None,
    engine: Optional["CompatibilityEngine"] = None,
) -> PairStatistics:
    """Exact statistics for small graphs, source-sampled statistics otherwise.

    ``max_exact_nodes`` controls the cut-over: graphs with at most that many
    nodes are enumerated exhaustively (like the paper does for Slashdot),
    larger graphs are estimated from ``num_sampled_sources`` random sources
    (routed through ``engine`` when one is given).
    """
    if relation.graph.number_of_nodes() <= max_exact_nodes:
        return exact_pair_statistics(relation)
    return source_sampled_pair_statistics(
        relation, num_sampled_sources, seed=seed, engine=engine
    )


def relation_overlap(
    first: CompatibilityRelation,
    second: CompatibilityRelation,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
    num_sampled_pairs: int = 20_000,
    seed: RandomState = None,
) -> float:
    """Fraction of evaluated pairs on which the two relations agree.

    Used by the SBP-vs-SBPH ablation (the paper reports a ~2.5 % disagreement
    on Slashdot).  When ``pairs`` is not given, pairs are either enumerated
    (small graphs) or sampled.
    """
    if first.graph is not second.graph and first.graph != second.graph:
        raise ValueError("relations must be defined over the same graph")
    if pairs is None:
        nodes = first.graph.nodes()
        if len(nodes) <= 500:
            pairs = list(itertools.combinations(nodes, 2))
        else:
            rng = ensure_rng(seed)
            pairs = [tuple(rng.sample(nodes, 2)) for _ in range(num_sampled_pairs)]
    pair_list: List[Tuple[Node, Node]] = list(pairs)
    if not pair_list:
        return 1.0
    agreements = sum(
        1
        for u, v in pair_list
        if first.are_compatible(u, v) == second.are_compatible(u, v)
    )
    return agreements / len(pair_list)
