"""Skill compatibility degrees (Section 4 and the "comp. skills" rows of Table 2).

The paper defines the compatibility degree of a pair of skills as the number
of compatible user pairs possessing them:

    cd(s_i, s_j) = |{(u_i, u_j) : (u_i, u_j) ∈ Comp, s_i ∈ skills(u_i), s_j ∈ skills(u_j)}|

and the compatibility degree of a single skill as the sum over all other
skills: ``cd(s) = Σ_{s_j ≠ s} cd(s, s_j)``.  Two skills are *compatible* when
``cd(s_1, s_2) > 0``, i.e. at least one compatible user pair covers them
(including a single user possessing both — "self-compatibility").

These quantities drive the "least compatible skill first" selection policy and
the skill-pair percentages of Table 2.  Because exact ``cd`` values require a
pass over all user pairs with the relevant skills, results are cached per
skill pair.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.compatibility.base import CompatibilityRelation
from repro.skills.assignment import Skill, SkillAssignment
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class SkillPairStatistics:
    """Fraction of skill pairs with at least one compatible user pair."""

    relation_name: str
    compatible_skill_pairs: int
    evaluated_skill_pairs: int
    sampled: bool

    @property
    def fraction(self) -> float:
        """Compatible fraction in ``[0, 1]`` (0.0 when nothing was evaluated)."""
        if self.evaluated_skill_pairs == 0:
            return 0.0
        return self.compatible_skill_pairs / self.evaluated_skill_pairs

    @property
    def percentage(self) -> float:
        """Compatible fraction as a percentage, as printed in the paper."""
        return 100.0 * self.fraction


class SkillCompatibilityIndex:
    """Cached skill-pair and per-skill compatibility degrees for one relation."""

    def __init__(
        self,
        relation: CompatibilityRelation,
        assignment: SkillAssignment,
        count_cap: Optional[int] = None,
    ) -> None:
        """
        Parameters
        ----------
        relation:
            The user-level compatibility relation.
        assignment:
            The user ↔ skill assignment.
        count_cap:
            Optional cap on the counted pairs per skill pair.  The team
            formation policy only needs the *ordering* of degrees (and Table 2
            only needs ``> 0``), so capping the count bounds the worst-case
            work on very frequent skills without changing either consumer.
        """
        self._relation = relation
        self._assignment = assignment
        self._count_cap = count_cap
        self._pair_cache: Dict[FrozenSet[Skill], int] = {}
        # Skill-pair degrees aggregate user pairs across the whole graph, so
        # any effective mutation may change them; the cache is re-validated
        # wholesale against the graph's generation on every read.
        self._generation = relation.graph.generation

    @property
    def relation(self) -> CompatibilityRelation:
        """The user-level relation the index is built on."""
        return self._relation

    @property
    def assignment(self) -> SkillAssignment:
        """The skill assignment the index is built on."""
        return self._assignment

    def pair_degree(self, skill_a: Skill, skill_b: Skill) -> int:
        """``cd(skill_a, skill_b)``: number of compatible user pairs covering the two skills.

        A single user possessing both skills counts as a (self-)compatible
        pair, matching the paper's footnote on self-compatibility.
        """
        generation = self._relation.graph.generation
        if generation != self._generation:
            self._pair_cache.clear()
            self._generation = generation
        key = frozenset((skill_a, skill_b))
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        count = self._count_pair_degree(skill_a, skill_b)
        self._pair_cache[key] = count
        return count

    def skills_compatible(self, skill_a: Skill, skill_b: Skill) -> bool:
        """True iff ``cd(skill_a, skill_b) > 0``."""
        return self.pair_degree(skill_a, skill_b) > 0

    def skill_degree(self, skill: Skill, others: Optional[Iterable[Skill]] = None) -> int:
        """``cd(skill)``: sum of pair degrees against ``others`` (default: all other skills)."""
        if others is None:
            others = self._assignment.skills()
        return sum(self.pair_degree(skill, other) for other in others if other != skill)

    def rank_skills_by_degree(self, skills: Iterable[Skill]) -> List[Skill]:
        """Sort ``skills`` by ascending compatibility degree (least compatible first).

        Degrees are computed *within* the provided skill set, which is what
        the team-formation policy needs (the remaining uncovered skills).
        Ties are broken by skill name for determinism.
        """
        skill_list = list(skills)
        degrees = {
            skill: self.skill_degree(skill, others=skill_list) for skill in skill_list
        }
        return sorted(skill_list, key=lambda skill: (degrees[skill], str(skill)))

    # --------------------------------------------------------------- internals

    def _count_pair_degree(self, skill_a: Skill, skill_b: Skill) -> int:
        users_a = self._assignment.users_with(skill_a)
        users_b = self._assignment.users_with(skill_b)
        # Iterate the smaller side outermost so the per-user compatible set is
        # fetched (and cached) for fewer users.
        if len(users_b) < len(users_a):
            users_a, users_b = users_b, users_a
        count = 0
        for user_a in users_a:
            compatible = self._relation.compatible_with(user_a)
            for user_b in users_b:
                if user_b == user_a or user_b in compatible:
                    count += 1
                    if self._count_cap is not None and count >= self._count_cap:
                        return count
        return count


def skill_pair_statistics(
    index: SkillCompatibilityIndex,
    max_exact_skills: int = 600,
    num_sampled_pairs: int = 5_000,
    seed: RandomState = None,
) -> SkillPairStatistics:
    """Fraction of skill pairs that are compatible (Table 2, "comp. skills").

    Small skill universes are enumerated exhaustively; larger ones are
    estimated from a uniform sample of skill pairs.
    """
    skills = index.assignment.skills()
    if len(skills) < 2:
        return SkillPairStatistics(index.relation.name, 0, 0, sampled=False)
    if len(skills) <= max_exact_skills:
        pairs = list(itertools.combinations(skills, 2))
        sampled = False
    else:
        require_positive(num_sampled_pairs, "num_sampled_pairs")
        rng = ensure_rng(seed)
        pairs = [tuple(rng.sample(skills, 2)) for _ in range(num_sampled_pairs)]
        sampled = True
    compatible = sum(1 for a, b in pairs if index.skills_compatible(a, b))
    return SkillPairStatistics(
        relation_name=index.relation.name,
        compatible_skill_pairs=compatible,
        evaluated_skill_pairs=len(pairs),
        sampled=sampled,
    )


def task_has_compatible_skills(index: SkillCompatibilityIndex, skills: Iterable[Skill]) -> bool:
    """True iff every pair of task skills is compatible.

    This is the "MAX" upper bound of Figure 2(a): a necessary (not sufficient)
    condition for a compatible team covering the task to exist.
    """
    skill_list = list(skills)
    for skill_a, skill_b in itertools.combinations(skill_list, 2):
        if not index.skills_compatible(skill_a, skill_b):
            return False
    return True
