"""The two edge-based compatibility relations: DPE and NNE (Definitions 3.1, 3.2).

* **DPE** (Direct Positive Edge) — the strictest relation: only pairs joined
  by a positive edge are compatible.  Teams under DPE are cliques of friends.
* **NNE** (No Negative Edge) — the most relaxed relation: every pair is
  compatible unless it is joined by a negative edge.

These are respectively the minimal relation satisfying Positive Edge
Compatibility and the maximal relation satisfying Negative Edge
Incompatibility.
"""

from __future__ import annotations

from typing import Set

from repro.compatibility.base import CompatibilityRelation
from repro.signed.graph import NEGATIVE, Node


class DirectPositiveEdgeCompatibility(CompatibilityRelation):
    """DPE: ``(u, v)`` compatible iff the edge ``(u, v, +1)`` exists."""

    name = "DPE"

    def _compute_compatible_set(self, u: Node) -> Set[Node]:
        return set(self._graph.positive_neighbors(u))


class NoNegativeEdgeCompatibility(CompatibilityRelation):
    """NNE: ``(u, v)`` compatible iff there is no edge ``(u, v, -1)``."""

    name = "NNE"
    # A compatible set is "everyone but my enemies": adding or removing *any*
    # node changes every set, so component-conservative cache invalidation is
    # unsound and the generational caches clear wholesale on node-set changes.
    component_local_sets = False

    def _compute_compatible_set(self, u: Node) -> Set[Node]:
        enemies = set(self._graph.negative_neighbors(u))
        return {node for node in self._graph.nodes() if node != u and node not in enemies}

    def are_compatible(self, u: Node, v: Node) -> bool:
        # Overridden to avoid materialising the (almost complete) compatible
        # set for a single pair query on large graphs.
        self._require_nodes(u, v)
        if u == v:
            return True
        if self._graph.has_edge(u, v):
            return self._graph.sign(u, v) != NEGATIVE
        return True
