"""The batched, backend-aware compatibility query service.

Team formation (Section 4 of the paper) keeps asking *one-to-many* questions:
"which holders of skill ``s`` are compatible with the current team?", "how far
is each candidate from the team?".  The per-pair relation API answers them one
:meth:`~repro.compatibility.base.CompatibilityRelation.are_compatible` call at
a time — correct, but each call pays Python-interpreter cost, and none of the
batched CSR kernels (:mod:`repro.signed.csr`) get a chance to amortise work
across the candidates.

:class:`CompatibilityEngine` is the shared service every layer above the
kernels queries instead:

* :class:`~repro.teams.problem.TeamFormationProblem` filters per-skill
  candidates through :meth:`compatible_from_many`;
* the user-selection policies score candidates through
  :meth:`distances_to_team_many` and prefetch compatible sets through
  :meth:`compatible_sets`;
* the generic Algorithm 2 warms the seed users' per-source computations in
  one lockstep batch (:meth:`warm`);
* the experiment harness routes its sampled pair statistics through
  :meth:`compatibility_degrees`.

The engine decides per relation and backend how to serve each query: SP*
relations on the CSR backend answer team filters with one lockstep
multi-source BFS plus a vectorised pair-rule mask; every other relation (and
the ``batched=False`` legacy mode) falls back to exactly the per-pair loop the
call sites used before, so results are identical by construction — the
equivalence tests assert the teams, costs and statistics match bit for bit.

The per-pair relation API (``are_compatible`` / ``compatible_with``) remains
fully supported; it now simply is the thin layer the engine degrades to when
no batched strategy applies.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.compatibility.base import CacheSize, CompatibilityRelation
from repro.compatibility.distance import DistanceOracle
from repro.compatibility.shortest_path import _ShortestPathRelation
from repro.exec.policy import (
    POLICY_DEFAULT,
    ExecutionPolicy,
    executor_for,
    resolve_policy,
)
from repro.signed.graph import Node, SignedGraph
from repro.signed.paths import SignedBFSResult
from repro.utils.generational import GenerationalLRUCache
from repro.utils.lru import scaled_cache_size
from repro.utils.optional import numpy_available

#: Default bound on the number of memoised per-member rule masks (each mask
#: is one byte per node, so the ``"auto"`` sizing rarely shrinks it).
DEFAULT_MASK_CACHE_SIZE = 4096


class CompatibilityEngine:
    """Batched one-to-many compatibility and distance queries for one relation.

    Parameters
    ----------
    relation:
        The compatibility relation to serve queries for.
    oracle:
        Optional pre-built :class:`DistanceOracle`; built from ``relation``
        (under the engine's policy) when omitted.  Sharing the oracle shares
        its distance-map caches.
    batched:
        Deprecated shim for ``policy.batched``: when false, every query runs
        the legacy per-pair code path — the reference mode the equivalence
        tests compare against; production callers leave it on.  ``None``
        (default) takes the policy's value.
    mask_cache_size:
        Legacy override for ``policy.mask_cache_size`` — the bound on the
        engine-level rule-mask memo: for SP* relations on the CSR backend,
        :meth:`compatible_from_many` memoises one boolean mask per
        ``(team member, graph generation)``, so Algorithm 2's repeated
        filters against the same team skip both the BFS lookup and the mask
        recomputation.  ``"auto"`` (the policy default) scales by graph size,
        an ``int`` is used as-is, ``None`` disables eviction.
    policy:
        The :class:`~repro.exec.ExecutionPolicy` the engine serves queries
        under; defaults to the relation's policy.  Under a pool policy the
        batched sweeps behind :meth:`warm`, :meth:`compatible_from_many` and
        :meth:`distances_to_team_many` run on the worker pool.
    """

    def __init__(
        self,
        relation: CompatibilityRelation,
        oracle: Optional[DistanceOracle] = None,
        batched: Optional[bool] = None,
        mask_cache_size: CacheSize = POLICY_DEFAULT,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        self._relation = relation
        self._policy = resolve_policy(
            policy if policy is not None else relation.policy,
            batched=batched,
            mask_cache_size=mask_cache_size,
        )
        self._oracle = (
            oracle
            if oracle is not None
            else DistanceOracle(relation, policy=self._policy)
        )
        if self._oracle.relation is not relation:
            raise ValueError("the oracle must be built on the engine's relation")
        self._batched = self._policy.batched
        num_nodes = relation.graph.number_of_nodes()
        mask_bound = self._policy.mask_cache_size
        if isinstance(mask_bound, str):
            if mask_bound != "auto":
                raise ValueError(
                    f"mask_cache_size must be an int, None or 'auto', got {mask_bound!r}"
                )
            resolved = scaled_cache_size(
                DEFAULT_MASK_CACHE_SIZE, num_nodes, bytes_per_node=1
            )
        else:
            resolved = mask_bound
        # member -> (node-list identity of the snapshot, mask array).  The
        # generational wrapper drops entries whose member's component a
        # mutation touched; the identity tag guards against dense-id drift
        # when the node set changes (new snapshots then carry a new list).
        self._mask_cache: GenerationalLRUCache[Node, Tuple[object, object]] = (
            GenerationalLRUCache(
                relation.graph,
                maxsize=resolved,
                bytes_per_entry=max(1, num_nodes),
            )
        )

    # ------------------------------------------------------------- properties

    @property
    def relation(self) -> CompatibilityRelation:
        """The compatibility relation this engine serves."""
        return self._relation

    @property
    def oracle(self) -> DistanceOracle:
        """The distance oracle consistent with the relation."""
        return self._oracle

    @property
    def graph(self) -> SignedGraph:
        """The signed graph the relation is bound to."""
        return self._relation.graph

    @property
    def batched(self) -> bool:
        """Whether batched strategies are enabled (false = legacy per-pair)."""
        return self._batched

    @property
    def policy(self) -> ExecutionPolicy:
        """The execution policy the engine serves queries under."""
        return self._policy

    def executor(self):
        """The executor behind the engine's batched sweeps (serial or pooled)."""
        return executor_for(self._policy)

    # ------------------------------------------------------- pairwise facade

    def are_compatible(self, u: Node, v: Node) -> bool:
        """Per-pair query, delegated to the relation."""
        return self._relation.are_compatible(u, v)

    def compatible_set(self, u: Node) -> FrozenSet[Node]:
        """The compatible set of ``u`` (always contains ``u``), cached."""
        return self._relation.compatible_with(u)

    def distance(self, u: Node, v: Node) -> float:
        """Pairwise distance under the relation's definition."""
        return self._oracle.distance(u, v)

    # --------------------------------------------------------- batched queries

    def compatible_sets(self, sources: Sequence[Node]) -> List[FrozenSet[Node]]:
        """Compatible sets for many sources through the relation's batch path.

        SP* relations resolve uncached sources with one lockstep multi-source
        BFS; balanced relations share one reverse sweep; the rest loop.  Each
        set equals :meth:`compatible_set` exactly.
        """
        source_list = list(sources)
        if not self._batched:
            return [self._relation.compatible_with(source) for source in source_list]
        return self._relation.batch_compatible_sets(source_list)

    def compatibility_degrees(self, sources: Sequence[Node]) -> List[int]:
        """Number of *other* compatible nodes per source, batched."""
        source_list = list(sources)
        if not self._batched:
            return [self._relation.compatibility_degree(s) for s in source_list]
        return self._relation.batch_compatibility_degrees(source_list)

    def warm(self, sources: Sequence[Node], distances: bool = True) -> None:
        """Prefetch per-source computations the coming queries will need.

        For SP* relations on the CSR backend this runs one lockstep
        multi-source BFS over the uncached sources (bounded by the BFS cache
        size, so a huge seed list cannot churn the cache).  The matching
        distance maps are warmed alongside only when ``distances`` is true —
        callers whose downstream queries never ask for distances (e.g.
        Algorithm 2 under the most-compatible or random user policy) pass
        false and skip that sweep.  Purely an optimisation — results of later
        queries are unchanged.
        """
        if not self._batched:
            return
        source_list = list(dict.fromkeys(sources))
        if not source_list:
            return
        relation = self._relation
        if isinstance(relation, _ShortestPathRelation) and relation._use_csr():
            budget = relation._bfs_cache.maxsize
            if budget is not None:
                source_list = source_list[:budget]
            relation.batch_bfs(source_list)
            if distances:
                self._oracle.warm(source_list)

    def compatible_from_many(
        self, candidates: Iterable[Node], team: Sequence[Node]
    ) -> FrozenSet[Node]:
        """The candidates compatible with *every* member of ``team``.

        Team members themselves are excluded from the result, mirroring the
        legacy candidate filter.  SP* relations on the CSR backend answer with
        one batched BFS over the team plus vectorised pair-rule masks indexed
        at the candidates; everything else runs the legacy per-pair loop.
        The result is identical either way (the SP* pair rules are symmetric
        in the pair, so membership in the member's masked set *is* the pair
        query).
        """
        team_list = list(team)
        team_set = set(team_list)
        survivors = [c for c in candidates if c not in team_set]
        if not team_list or not survivors:
            return frozenset(survivors)
        relation = self._relation
        if (
            self._batched
            and isinstance(relation, _ShortestPathRelation)
            and relation._use_csr()
        ):
            return self._compatible_from_many_csr(survivors, team_list)
        return frozenset(
            candidate
            for candidate in survivors
            # Query with the team member first: the relations cache their
            # per-source computation, and the members recur across candidates.
            if all(relation.are_compatible(member, candidate) for member in team_list)
        )

    def _member_rule_masks(self, team: Sequence[Node], csr) -> List[tuple]:
        """One memoised ``(mask, fallback_result)`` per team member, aligned
        with ``team``.

        A mask is the member's vectorised pair rule AND reachability over the
        snapshot's dense ids — the entire per-member contribution to a team
        filter.  Masks live in the engine's ``(member, generation)`` memo;
        misses are resolved with one batched BFS over exactly the missing
        members.  A slot of ``(None, result)`` marks a member whose BFS
        result cannot be indexed against ``csr`` (dict fallback, or a
        surviving result from a snapshot with a different node set): the
        caller runs the per-pair path on that very result rather than
        re-fetching it (the BFS LRU can be smaller than the team).

        Under a pool policy the misses are fetched as worker-packed bitmaps
        (``csr_compatible_masks`` — ``rule & reachable``, which is exactly
        this memo's mask since a source always passes its own pair rule), so
        each member ships ``n/8`` bytes instead of three O(n) count arrays;
        only int64-overflow members fall back to the batched-BFS path.
        """
        from repro.signed.csr import UNREACHABLE

        relation = self._relation
        nodes_tag = csr._nodes
        masks: dict = {}
        missing: List[Node] = []
        for member in dict.fromkeys(team):
            entry = self._mask_cache.get(member)
            if entry is not None and entry[0] is nodes_tag:
                masks[member] = (entry[1], None)
            else:
                missing.append(member)
        if missing and self._policy.parallel:
            from repro.utils.bitset import unpack_mask

            # Members whose BFS results already sit in the relation's cache
            # (earlier pair queries, a warm()) must not pay a fresh worker-side
            # traversal: indexable results yield their mask locally, the rest
            # (dict fallbacks, foreign snapshots) go to the batch_bfs loop
            # below — also a cache hit.  Only true misses are dispatched.
            dispatch: List[Node] = []
            uncached: List[Node] = []
            for member in missing:
                cached = relation._bfs_cache.get(member)
                if cached is None:
                    dispatch.append(member)
                elif not isinstance(
                    cached, SignedBFSResult
                ) and cached.graph.shares_index_with(csr):
                    mask = relation._pair_rule_mask(
                        cached.positive_array, cached.negative_array
                    ) & (cached.lengths_array != UNREACHABLE)
                    self._mask_cache[member] = (nodes_tag, mask)
                    masks[member] = (mask, None)
                else:
                    uncached.append(member)
            for member, packed in zip(
                dispatch, relation._batch_compatible_masks(dispatch)
            ):
                if packed is None:
                    uncached.append(member)
                    continue
                mask = unpack_mask(packed, len(nodes_tag))
                self._mask_cache[member] = (nodes_tag, mask)
                masks[member] = (mask, None)
            missing = uncached
        if missing:
            for member, result in zip(missing, relation.batch_bfs(missing)):
                if isinstance(result, SignedBFSResult) or not result.graph.shares_index_with(csr):
                    masks[member] = (None, result)
                    continue
                mask = relation._pair_rule_mask(
                    result.positive_array, result.negative_array
                ) & (result.lengths_array != UNREACHABLE)
                self._mask_cache[member] = (nodes_tag, mask)
                masks[member] = (mask, None)
        return [masks[member] for member in team]

    def _compatible_from_many_csr(
        self, survivors: Sequence[Node], team: Sequence[Node]
    ) -> FrozenSet[Node]:
        """Vectorised team filter: memoised per-member rule masks, indexed at
        the candidates (one batched BFS only for members without a valid memo
        entry)."""
        import numpy as np

        relation = self._relation
        csr = self.graph.csr_view()
        index = csr._index
        try:
            ids = np.fromiter(
                (index[candidate] for candidate in survivors),
                dtype=np.int64,
                count=len(survivors),
            )
        except KeyError as missing:
            from repro.exceptions import NodeNotFoundError

            raise NodeNotFoundError(missing.args[0]) from None
        keep = np.ones(len(survivors), dtype=bool)
        for member, (mask, result) in zip(team, self._member_rule_masks(team, csr)):
            if mask is None:
                # Dict results (overflow or probe fallback) and results from
                # an incompatible snapshot go through the per-pair checks,
                # which resolve nodes via the result's own index — exactly
                # the legacy are_compatible semantics.
                for position, candidate in enumerate(survivors):
                    if not keep[position]:
                        continue
                    if (
                        not isinstance(result, SignedBFSResult)
                        and candidate not in result.graph
                    ):
                        # Candidate newer than the surviving snapshot: not in
                        # the member's (untouched) component, so unreachable.
                        keep[position] = False
                        continue
                    if not result.reachable(candidate):
                        keep[position] = False
                        continue
                    positive, negative = result.counts(candidate)
                    if not relation._pair_rule(positive, negative):
                        keep[position] = False
                continue
            keep &= mask[ids]
            if not keep.any():
                break
        return frozenset(
            survivors[position] for position in np.flatnonzero(keep)
        )

    def distance_to_team(self, node: Node, team: Iterable[Node]) -> float:
        """Largest distance from ``node`` to any team member (legacy single)."""
        return self._oracle.distance_to_set(node, team)

    def distances_to_team_many(
        self, candidates: Sequence[Node], team: Sequence[Node]
    ) -> List[float]:
        """:meth:`distance_to_team` for every candidate, batched.

        Under ``distance_index="auto"|"labels"`` the oracle serves this from
        the precomputed label index (building or delta-refreshing it lazily
        for the current generation) and only falls back to BFS sweeps on a
        miss or an untight landmark bound.  Otherwise the team's distance
        maps are computed in one lockstep sweep and the per-candidate maxima
        are taken with array indexing on the CSR backend.  Values equal the
        per-candidate calls exactly in every mode.
        """
        candidate_list = list(candidates)
        if not self._batched:
            return [
                self._oracle.distance_to_set(candidate, team)
                for candidate in candidate_list
            ]
        return self._oracle.batch_distance_to_set(candidate_list, team)

    def refresh(self) -> None:
        """Eagerly resync the engine with a mutated graph.

        Every cache the engine touches is generation-keyed and resyncs
        lazily, so calling this is never required for correctness.  It exists
        to move the (possibly delta-applied) CSR snapshot rebuild and the
        targeted cache invalidation out of the next query's latency — the
        natural point in a streaming workload is right after an update batch,
        before queries resume.

        Under a pool policy no extra work is needed for the workers: shipped
        snapshots are keyed by ``(object, generation)``, so the first sweep
        after a generation bump republishes the fresh snapshot automatically
        and unlinks the stale one.
        """
        if numpy_available() and self.graph._csr_cache is not None:
            self.graph.csr_view()
        self._mask_cache.sync()
        self._relation.sync_caches()
        # Also delta-refreshes the oracle's distance-label index, if built.
        self._oracle.sync()

    def index_stats(self):
        """The oracle's distance-label index stats (``None`` when unbuilt).

        See :meth:`DistanceOracle.index_stats` — structure sizes plus
        served/fallback/build/patch counters for observability.
        """
        return self._oracle.index_stats()

    def clear_caches(self) -> None:
        """Drop the relation's, the oracle's and the engine's own caches.

        With generation-keyed caches this is no longer required after graph
        mutations (stale entries expire by themselves); it remains the full
        reset for tests and memory pressure.
        """
        self._relation.clear_cache()
        self._oracle.clear_cache()
        self._mask_cache.clear()

    def __repr__(self) -> str:
        return (
            f"CompatibilityEngine(relation={self._relation.name}, "
            f"batched={self._batched})"
        )
