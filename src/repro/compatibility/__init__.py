"""Compatibility relations between users of a signed network (Section 3 of the paper).

The module exposes the six relations by the acronyms the paper uses and a
small registry (:data:`RELATION_NAMES`, :func:`make_relation`) so experiments
and the CLI can construct them generically.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

from repro.compatibility.base import CompatibilityRelation
from repro.compatibility.balanced import (
    HeuristicBalancedPathCompatibility,
    StructurallyBalancedPathCompatibility,
)
from repro.compatibility.direct import (
    DirectPositiveEdgeCompatibility,
    NoNegativeEdgeCompatibility,
)
from repro.compatibility.distance import DistanceOracle, average_compatible_distance
from repro.compatibility.engine import CompatibilityEngine
from repro.compatibility.matrix import (
    CompatibilityMatrix,
    PairStatistics,
    exact_pair_statistics,
    pair_statistics,
    relation_overlap,
    sampled_pair_statistics,
    source_sampled_pair_statistics,
)
from repro.compatibility.shortest_path import (
    AllShortestPathsCompatibility,
    MajorityShortestPathsCompatibility,
    OneShortestPathCompatibility,
)
from repro.compatibility.skill_compat import (
    SkillCompatibilityIndex,
    SkillPairStatistics,
    skill_pair_statistics,
    task_has_compatible_skills,
)
from repro.exceptions import UnknownRelationError
from repro.signed.graph import SignedGraph

#: Relation classes keyed by the acronyms used throughout the paper.
RELATION_CLASSES: Dict[str, Type[CompatibilityRelation]] = {
    "DPE": DirectPositiveEdgeCompatibility,
    "SPA": AllShortestPathsCompatibility,
    "SPM": MajorityShortestPathsCompatibility,
    "SPO": OneShortestPathCompatibility,
    "SBP": StructurallyBalancedPathCompatibility,
    "SBPH": HeuristicBalancedPathCompatibility,
    "NNE": NoNegativeEdgeCompatibility,
}

#: Relation names ordered from strictest to most relaxed (Proposition 3.5).
RELATION_NAMES: Sequence[str] = ("DPE", "SPA", "SPM", "SPO", "SBPH", "SBP", "NNE")


def make_relation(name: str, graph: SignedGraph, **kwargs) -> CompatibilityRelation:
    """Instantiate the relation called ``name`` (case-insensitive) over ``graph``.

    Extra keyword arguments are forwarded to the relation constructor (the
    balanced-path relations accept ``max_path_length`` and ``max_expansions``).
    """
    key = name.upper()
    relation_class = RELATION_CLASSES.get(key)
    if relation_class is None:
        raise UnknownRelationError(name)
    return relation_class(graph, **kwargs)


__all__ = [
    "CompatibilityRelation",
    "DirectPositiveEdgeCompatibility",
    "NoNegativeEdgeCompatibility",
    "AllShortestPathsCompatibility",
    "MajorityShortestPathsCompatibility",
    "OneShortestPathCompatibility",
    "StructurallyBalancedPathCompatibility",
    "HeuristicBalancedPathCompatibility",
    "CompatibilityEngine",
    "DistanceOracle",
    "average_compatible_distance",
    "CompatibilityMatrix",
    "PairStatistics",
    "exact_pair_statistics",
    "sampled_pair_statistics",
    "source_sampled_pair_statistics",
    "pair_statistics",
    "relation_overlap",
    "SkillCompatibilityIndex",
    "SkillPairStatistics",
    "skill_pair_statistics",
    "task_has_compatible_skills",
    "RELATION_CLASSES",
    "RELATION_NAMES",
    "make_relation",
]
