"""Structurally balanced path compatibility: SBP (exact) and SBPH (heuristic).

Definition 3.4 of the paper: ``(u, v)`` are SBP-compatible iff there exists a
*positive* path between them whose induced subgraph is structurally balanced.
Enumerating such paths is exponential in the worst case (the prefix property
fails, Figure 1(b)), so the paper — and this module — also provides a
heuristic, **SBPH**, that only considers paths satisfying the prefix property.

Symmetry
--------
Section 2 requires every compatibility relation to be *symmetric*.  Positive
balanced paths are inherently symmetric (reversing a path changes neither its
sign nor the subgraph it induces), but both searches are *directional*
under-approximations: the heuristic keeps a single representative path per
``(node, sign)`` state, and the exact search can hit its expansion budget, so
"the search from ``u`` finds ``v``" may disagree with "the search from ``v``
finds ``u``" (on the Figure 1(b) graph the heuristic misses ``u → v`` but
finds the reversed path ``v → u``).  The relations therefore define the pair
as compatible iff **either direction** finds a positive balanced path — a
canonical, query-order-independent check applied consistently by
:meth:`~_BalancedPathRelation.are_compatible`,
:meth:`~_BalancedPathRelation._compute_compatible_set` and
:meth:`~_BalancedPathRelation.positive_balanced_distance`.  The symmetrised
relation is still sound (every reported pair is joined by a real positive
balanced path) and still under-approximates exact SBP.

Both relations additionally expose the length of the best positive balanced
path found, which is the distance the team-formation cost uses under SBP/SBPH.
Per-source search results live in a bounded LRU (``result_cache_size``; the
default ``"auto"`` scales the bound down on huge graphs), so a full sweep over
a large graph cannot exhaust memory.

Backends
--------
The SBPH heuristic search has two bit-identical implementations: the
per-edge dict search (:meth:`~repro.signed.paths.BalancedPathSearch.search_heuristic`)
and the indexed (node, sign)-state CSR BFS
(:func:`repro.signed.csr.balanced_heuristic_search_csr`), which vectorises
frontier expansion and visited-state filtering.  ``backend="auto"`` (default)
uses the CSR search on large graphs when numpy is available; the exact SBP
enumeration always runs on the dict machinery.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set

from repro.compatibility.base import CacheSize, CompatibilityRelation, resolve_cache_size
from repro.exec.policy import POLICY_DEFAULT, ExecutionPolicy, resolve_policy
from repro.signed.graph import NEGATIVE, Node, SignedGraph
from repro.signed.paths import (
    INFINITY,
    BalancedPathResult,
    BalancedPathSearch,
    shortest_signed_walk_lengths,
)
from repro.utils.generational import GenerationalLRUCache
from repro.utils.lru import APPROX_BYTES_PER_NODE, fetch_batched
from repro.utils.optional import numpy_available, require_numpy, warn_numpy_missing

#: Default bound on the number of cached per-source balanced-path results.
#: Sized to hold a full sweep of graphs up to its own size (the symmetric
#: closure touches every node's search once), so repeated set queries stay
#: amortised on the bundled datasets; larger graphs re-search evicted sources
#: on later sweeps — raise the bound (or pass ``None``) if memory allows.
DEFAULT_RESULT_CACHE_SIZE = 4096

#: Sources per :meth:`_BalancedPathRelation.batch_search` dispatch inside the
#: reverse sweeps.  Bounds how many O(n) search results the sweep holds
#: outside the LRU at once (the LRU's own byte-aware bound stays the ceiling
#: for what is *retained*), while still giving a worker pool whole chunks to
#: chew on.
REVERSE_SWEEP_CHUNK = 64


class _BalancedPathRelation(CompatibilityRelation):
    """Shared machinery: one cached balanced-path search per source node."""

    #: Whether the search is exhaustive (overridden by subclasses).
    exact_search = True

    #: ``backend="auto"`` uses the CSR heuristic search from this size upward.
    CSR_SEARCH_THRESHOLD = 1024

    def __init__(
        self,
        graph: SignedGraph,
        max_path_length: Optional[int] = None,
        max_expansions: int = 2_000_000,
        result_cache_size: CacheSize = POLICY_DEFAULT,
        compatible_cache_size: CacheSize = POLICY_DEFAULT,
        backend: Optional[str] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        policy = resolve_policy(
            policy,
            backend=backend,
            result_cache_size=result_cache_size,
            compatible_cache_size=compatible_cache_size,
        )
        super().__init__(graph, policy=policy)
        graph = self._graph  # the base may have adapted a bare CSR snapshot
        if policy.backend == "csr":
            require_numpy("backend='csr'")
        self._search = BalancedPathSearch(
            graph, max_length=max_path_length, max_expansions=max_expansions
        )
        num_nodes = graph.number_of_nodes()
        # Truncation must survive cache eviction: remember *which* sources hit
        # the expansion cap in a small persistent set of node ids, not via the
        # evictable results themselves.  The set is generation-pruned on its
        # own (``_prune_truncated``) because flags deliberately outlive cache
        # entries: a mutation in a flagged source's component drops the flag
        # (its re-search may no longer truncate) even when the result itself
        # was evicted long ago.
        self._truncated_sources: Set[Node] = set()
        self._truncated_generation = graph.generation
        # Generation-keyed: a mutation drops only the search results whose
        # component it touched (balanced paths never leave a component).
        self._result_cache: GenerationalLRUCache[Node, BalancedPathResult] = (
            GenerationalLRUCache(
                graph,
                maxsize=resolve_cache_size(
                    policy.result_cache_size, DEFAULT_RESULT_CACHE_SIZE, num_nodes
                ),
                bytes_per_entry=num_nodes * APPROX_BYTES_PER_NODE,
            )
        )
        self.max_path_length = max_path_length

    def _prune_truncated(self) -> None:
        """Drop truncation flags whose source's component a mutation touched."""
        generation = self._graph.generation
        if generation == self._truncated_generation:
            return
        if self._truncated_sources:
            affected = self._graph.affected_nodes_since(self._truncated_generation)
            if affected is None:
                self._truncated_sources.clear()
            else:
                self._truncated_sources -= affected
        self._truncated_generation = generation

    def _use_csr_search(self) -> bool:
        """Whether the heuristic search should run on the CSR backend.

        Only the SBPH heuristic has a CSR implementation; the exact SBP
        enumeration is inherently path-by-path.  High-diameter graphs pay the
        level-synchronous fixed cost here too — force ``backend="dict"`` for
        paths and grids.
        """
        if self.exact_search:
            return False
        if self._policy.backend == "csr":
            return True
        if self._policy.backend == "dict":
            return False
        if self._graph.number_of_nodes() < self.CSR_SEARCH_THRESHOLD:
            return False
        if not numpy_available():
            warn_numpy_missing(f"{self.name} backend='auto'")
            return False
        return True

    def _search_from(self, source: Node) -> BalancedPathResult:
        self._prune_truncated()
        result = self._result_cache.get(source)
        if result is None:
            if self.exact_search:
                result = self._search.search_exact(source)
            elif self._use_csr_search():
                result = self._search.search_heuristic_indexed(source)
            else:
                result = self._search.search_heuristic(source)
            self._result_cache[source] = result
            if result.truncated:
                self._truncated_sources.add(source)
        return result

    def batch_search(self, sources: Sequence[Node]) -> List[BalancedPathResult]:
        """One balanced-path search result per source, via the executor.

        Uncached sources are resolved by the policy's executor — in-process
        under a serial policy, fanned out in chunks over the worker pool for
        ``workers >= 2`` (the CSR SBPH search ships dense depth maps back and
        is re-keyed to node objects here; dict searches ship whole results).
        Each result is bit-identical to :meth:`_search_from`; results are
        written through to the result cache and truncation flags are recorded
        exactly as the per-source path would have.
        """
        source_list = list(sources)
        self._require_nodes(*source_list)
        self._prune_truncated()

        def compute_missing(missing: List[Node]) -> List[BalancedPathResult]:
            results = self._map_searches(missing)
            for source, result in zip(missing, results):
                if result.truncated:
                    self._truncated_sources.add(source)
            return results

        return fetch_batched(self._result_cache, source_list, compute_missing)

    def _map_searches(self, sources: List[Node]) -> List[BalancedPathResult]:
        """Run the relation's search for every source through the executor.

        On the CSR backend under a pool policy the workers write each
        source's SBPH depth maps as sentinel-filled dense rows of the
        dispatch's shared-memory result arena (this is what keeps the
        balanced *reverse sweeps* — every candidate of
        :meth:`batch_compatible_sets` / :meth:`batch_distance_to_set` —
        off the pickle path); the depths are re-keyed to node objects here
        either way, so results are identical to the serial search.
        """
        executor = self._executor()
        if self._use_csr_search():
            from repro.signed.csr import balanced_result_from_depths

            csr = self._graph.csr_view()
            raw = executor.map_kernel(
                "csr_sbph",
                csr,
                [csr.index_of(source) for source in sources],
                params={"max_length": self.max_path_length},
            )
            return [
                balanced_result_from_depths(
                    csr, source, positive_depths, negative_depths, self.max_path_length
                )
                for source, (positive_depths, negative_depths) in zip(sources, raw)
            ]
        return executor.map_kernel(
            "dict_balanced_search",
            self._graph,
            sources,
            params={
                "exact": self.exact_search,
                "max_length": self.max_path_length,
                "max_expansions": self._search._max_expansions,
            },
        )

    def _clear_subclass_cache(self) -> None:
        self._result_cache.clear()
        self._truncated_sources.clear()
        self._truncated_generation = self._graph.generation

    def _sync_subclass_caches(self) -> None:
        self._result_cache.sync()
        self._prune_truncated()

    def _found_positive(self, source: Node, target: Node) -> bool:
        """Directional check: does the search *from* ``source`` reach ``target``?"""
        return target in self._search_from(source).positive_lengths

    def are_compatible(self, u: Node, v: Node) -> bool:
        # Canonical symmetric check: the pair is compatible iff a positive
        # balanced path is found in either direction.  Overridden here (rather
        # than inherited via compatible_with) so a pair query costs at most two
        # searches instead of a full symmetric closure.
        self._require_nodes(u, v)
        if u == v:
            return True
        if not self._pair_allowed(u, v):
            return False
        return self._found_positive(u, v) or self._found_positive(v, u)

    def _compute_compatible_set(self, u: Node) -> Set[Node]:
        result = self._search_from(u)
        compatible = {
            node
            for node in result.positive_lengths
            if node != u and self._pair_allowed(u, node)
        }
        # Symmetric closure: nodes whose own search finds a positive balanced
        # path back to ``u`` even though the search from ``u`` missed them
        # (prefix-property failures, truncated exact searches).  A positive
        # balanced path implies a positive *walk*, so the cheap double-cover
        # BFS prunes the candidates before any expensive reverse search runs.
        positive_walks, _ = shortest_signed_walk_lengths(self._graph, u)
        for node in positive_walks:
            if node == u or node in compatible or not self._pair_allowed(u, node):
                continue
            if self._found_positive(node, u):
                compatible.add(node)
        return compatible

    def batch_compatible_sets(self, sources: Sequence[Node]) -> List[FrozenSet[Node]]:
        """The symmetric compatible set of every source, from one shared sweep.

        The symmetric relation needs, for each source ``s``, both the forward
        search from ``s`` and the reverse information "whose search finds
        ``s``".  Computing that per source via :meth:`compatible_with` costs a
        full reverse sweep *per call* once the LRU starts evicting; this batch
        entry point instead streams one pass over every candidate's search and
        tests membership of all sampled sources at once, so the whole sample
        costs one sweep regardless of cache pressure.  Each returned set
        equals ``compatible_with(source)`` exactly (the source included) and
        is written into the compatible-set cache, so follow-up per-source
        queries (e.g. the average-distance estimator) are cache hits.
        """
        source_list = list(sources)
        self._require_nodes(*source_list)
        compatible_sets: List[Set[Node]] = []
        candidates: Set[Node] = set()
        forward_results = self.batch_search(source_list)
        # A reverse find implies a positive walk from the source, so the
        # union of the sources' positive-walk neighbourhoods bounds the
        # reverse sweep (same pruning as _compute_compatible_set) — nodes
        # in components containing no sampled source are never searched.
        # The double-cover walks go through the pool alongside the searches
        # when the policy is parallel.
        if self._policy.parallel:
            walks = self._executor().map_kernel(
                "dict_walk_lengths", self._graph, source_list
            )
        else:
            walks = [
                shortest_signed_walk_lengths(self._graph, source)
                for source in source_list
            ]
        for source, result, (positive_walks, _negative) in zip(
            source_list, forward_results, walks
        ):
            compatible_sets.append(
                {
                    node
                    for node in result.positive_lengths
                    if node != source and self._pair_allowed(source, node)
                }
            )
            candidates.update(positive_walks)
        # One reverse pass: each candidate is searched (at most) once, and
        # every sampled source checks membership in that one result.  The
        # sweep is dispatched in chunks so only REVERSE_SWEEP_CHUNK O(n)
        # results are held outside the LRU at any moment.
        candidate_list = list(candidates)
        for start in range(0, len(candidate_list), REVERSE_SWEEP_CHUNK):
            chunk = candidate_list[start : start + REVERSE_SWEEP_CHUNK]
            for node, node_result in zip(chunk, self.batch_search(chunk)):
                positive_lengths = node_result.positive_lengths
                for position, source in enumerate(source_list):
                    if node == source or node in compatible_sets[position]:
                        continue
                    if source in positive_lengths and self._pair_allowed(source, node):
                        compatible_sets[position].add(node)
        frozen: List[FrozenSet[Node]] = []
        for source, found in zip(source_list, compatible_sets):
            found.add(source)
            result_set = frozenset(found)
            self._compatible_cache[source] = result_set
            frozen.append(result_set)
        return frozen

    def batch_compatibility_degrees(self, sources: Sequence[Node]) -> List[int]:
        """Number of *other* compatible nodes per source (one shared sweep).

        Counts equal ``len(compatible_with(s)) - 1`` exactly; see
        :meth:`batch_compatible_sets`.
        """
        return [len(found) - 1 for found in self.batch_compatible_sets(sources)]

    def batch_distance_to_set(
        self, candidates: Sequence[Node], team: Sequence[Node]
    ) -> List[float]:
        """Largest balanced distance from each candidate to any team member.

        The batched counterpart of looping
        :meth:`~repro.compatibility.distance.DistanceOracle.distance_to_set`
        under a balanced relation (the last per-candidate loop in LCMD): the
        team members' forward searches are resolved once and shared by every
        candidate, and the candidates' reverse searches run as one chunked
        sweep through the executor (parallel under a pool policy) instead of
        one :meth:`_search_from` at a time.  Every value equals
        ``max(positive_balanced_distance(member, candidate) for member in
        team)`` exactly — same symmetric two-direction minimum, same
        ``inf`` for missing paths and negative-edge pairs.
        """
        candidate_list = list(candidates)
        team_list = list(team)
        if not candidate_list:
            return []
        if not team_list:
            return [0.0] * len(candidate_list)
        self._require_nodes(*candidate_list)
        self._require_nodes(*team_list)
        distances: List[float] = [0.0] * len(candidate_list)
        # Cheap pre-pass first: a direct negative edge to any member makes the
        # maximum inf without any search (the short-circuit the per-candidate
        # loop had) — only the surviving candidates join the reverse sweep.
        searchable: List[int] = []
        for position, candidate in enumerate(candidate_list):
            if any(
                member != candidate and not self._pair_allowed(member, candidate)
                for member in team_list
            ):
                distances[position] = INFINITY
            else:
                searchable.append(position)
        if not searchable:
            return distances
        member_results = self.batch_search(team_list)
        for start in range(0, len(searchable), REVERSE_SWEEP_CHUNK):
            positions = searchable[start : start + REVERSE_SWEEP_CHUNK]
            chunk = [candidate_list[position] for position in positions]
            for position, candidate, candidate_result in zip(
                positions, chunk, self.batch_search(chunk)
            ):
                best = 0.0
                for member, member_result in zip(team_list, member_results):
                    if member == candidate:
                        continue  # distance 0 never raises the maximum
                    distance = min(
                        member_result.positive_length(candidate),
                        candidate_result.positive_length(member),
                    )
                    if distance > best:
                        best = distance
                    if best == INFINITY:
                        break
                distances[position] = best
        return distances

    def positive_balanced_distance(self, u: Node, v: Node) -> float:
        """Length of the best positive balanced path found between ``u`` and ``v``.

        Returns ``inf`` when no such path was found.  This is the distance the
        paper uses for the communication cost under SBP/SBPH.  Like the
        relation itself, the distance is symmetric: both search directions are
        consulted and the shorter of the two path lengths wins, so compatible
        pairs always have a finite distance regardless of query order.
        """
        self._require_nodes(u, v)
        if u == v:
            return 0.0
        if not self._pair_allowed(u, v):
            return INFINITY
        forward = self._search_from(u).positive_length(v)
        backward = self._search_from(v).positive_length(u)
        return min(forward, backward)

    def _pair_allowed(self, u: Node, v: Node) -> bool:
        """Enforce Negative Edge Incompatibility explicitly.

        A positive balanced path between ``u`` and ``v`` cannot coexist with a
        direct negative edge (the edge would close an unbalanced cycle), so
        for the *exact* relation this check is redundant; the heuristic search
        keeps it as a guard so SBPH always satisfies Property 2 even when its
        path bookkeeping is approximate.
        """
        if self._graph.has_edge(u, v) and self._graph.sign(u, v) == NEGATIVE:
            return False
        return True


class StructurallyBalancedPathCompatibility(_BalancedPathRelation):
    """SBP: exact (exhaustive) structurally balanced positive path search.

    Worst-case exponential; intended for small graphs, mirroring the paper
    (which reports SBP only on Slashdot).  ``max_expansions`` bounds the work
    per source; if the bound is hit the relation under-approximates and the
    per-source result is flagged ``truncated``.
    """

    name = "SBP"
    exact_search = True

    def truncated_sources(self) -> Set[Node]:
        """Sources whose exact search hit the expansion cap (results partial).

        Tracked independently of the (bounded, evictable) result cache, so the
        report stays complete even after a sweep larger than the cache.
        """
        self._prune_truncated()
        return set(self._truncated_sources)


class HeuristicBalancedPathCompatibility(_BalancedPathRelation):
    """SBPH: heuristic search restricted to prefix-property balanced paths.

    The directional search (:meth:`BalancedPathSearch.search_heuristic`) keeps
    one representative path per ``(node, sign)`` state and therefore depends
    on the search direction; the relation symmetrises it by accepting a pair
    when either endpoint's search finds the other (see the module docstring).
    """

    name = "SBPH"
    exact_search = False
