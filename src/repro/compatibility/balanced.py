"""Structurally balanced path compatibility: SBP (exact) and SBPH (heuristic).

Definition 3.4 of the paper: ``(u, v)`` are SBP-compatible iff there exists a
*positive* path between them whose induced subgraph is structurally balanced.
Enumerating such paths is exponential in the worst case (the prefix property
fails, Figure 1(b)), so the paper — and this module — also provides a
heuristic, **SBPH**, that only considers paths satisfying the prefix property.

Both relations additionally expose the length of the best positive balanced
path found, which is the distance the team-formation cost uses under SBP/SBPH.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.compatibility.base import CompatibilityRelation
from repro.signed.graph import NEGATIVE, Node, SignedGraph
from repro.signed.paths import BalancedPathResult, BalancedPathSearch


class _BalancedPathRelation(CompatibilityRelation):
    """Shared machinery: one cached balanced-path search per source node."""

    #: Whether the search is exhaustive (overridden by subclasses).
    exact_search = True

    def __init__(
        self,
        graph: SignedGraph,
        max_path_length: Optional[int] = None,
        max_expansions: int = 2_000_000,
    ) -> None:
        super().__init__(graph)
        self._search = BalancedPathSearch(
            graph, max_length=max_path_length, max_expansions=max_expansions
        )
        self._result_cache: Dict[Node, BalancedPathResult] = {}
        self.max_path_length = max_path_length

    def _search_from(self, source: Node) -> BalancedPathResult:
        result = self._result_cache.get(source)
        if result is None:
            if self.exact_search:
                result = self._search.search_exact(source)
            else:
                result = self._search.search_heuristic(source)
            self._result_cache[source] = result
        return result

    def _clear_subclass_cache(self) -> None:
        self._result_cache.clear()

    def _compute_compatible_set(self, u: Node) -> Set[Node]:
        result = self._search_from(u)
        compatible = {
            node
            for node in result.positive_lengths
            if node != u and self._pair_allowed(u, node)
        }
        return compatible

    def positive_balanced_distance(self, u: Node, v: Node) -> float:
        """Length of the best positive balanced path found from ``u`` to ``v``.

        Returns ``inf`` when no such path was found.  This is the distance the
        paper uses for the communication cost under SBP/SBPH.
        """
        self._require_nodes(u, v)
        if u == v:
            return 0.0
        result = self._search_from(u)
        return result.positive_length(v)

    def _pair_allowed(self, u: Node, v: Node) -> bool:
        """Enforce Negative Edge Incompatibility explicitly.

        A positive balanced path between ``u`` and ``v`` cannot coexist with a
        direct negative edge (the edge would close an unbalanced cycle), so
        for the *exact* relation this check is redundant; the heuristic search
        keeps it as a guard so SBPH always satisfies Property 2 even when its
        path bookkeeping is approximate.
        """
        if self._graph.has_edge(u, v) and self._graph.sign(u, v) == NEGATIVE:
            return False
        return True


class StructurallyBalancedPathCompatibility(_BalancedPathRelation):
    """SBP: exact (exhaustive) structurally balanced positive path search.

    Worst-case exponential; intended for small graphs, mirroring the paper
    (which reports SBP only on Slashdot).  ``max_expansions`` bounds the work
    per source; if the bound is hit the relation under-approximates and the
    per-source result is flagged ``truncated``.
    """

    name = "SBP"
    exact_search = True

    def truncated_sources(self) -> Set[Node]:
        """Sources whose exact search hit the expansion cap (results partial)."""
        return {source for source, result in self._result_cache.items() if result.truncated}


class HeuristicBalancedPathCompatibility(_BalancedPathRelation):
    """SBPH: heuristic search restricted to prefix-property balanced paths."""

    name = "SBPH"
    exact_search = False
