"""The abstract compatibility relation ``Comp ⊆ V × V``.

Section 2 of the paper requires every compatibility relation to be reflexive
and symmetric and to satisfy two properties:

* **Positive Edge Compatibility** — endpoints of a positive edge are compatible;
* **Negative Edge Incompatibility** — endpoints of a negative edge are not.

:class:`CompatibilityRelation` encodes that contract.  Concrete relations are
bound to a :class:`~repro.signed.graph.SignedGraph` at construction time and
answer two queries:

* :meth:`are_compatible` — is the pair ``(u, v)`` in the relation?
* :meth:`compatible_with` — the set of nodes compatible with ``u`` (used by
  the "most compatible" team-formation policy and by the pairwise statistics).

Implementations cache whatever per-source computation they need (a signed BFS,
a balanced-path search, ...), so repeated queries from the same source are
cheap.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.exec.policy import (
    POLICY_DEFAULT,
    CacheSize,
    ExecutionPolicy,
    executor_for,
    resolve_policy,
)
from repro.signed.graph import NEGATIVE, POSITIVE, Node, SignedGraph
from repro.utils.generational import GenerationalLRUCache
from repro.utils.lru import APPROX_BYTES_PER_NODE, scaled_cache_size

#: Default bound on the number of cached per-source compatible sets (the
#: ceiling the byte-aware ``"auto"`` sizing starts from).
DEFAULT_COMPATIBLE_CACHE_SIZE = 4096


def resolve_cache_size(value: CacheSize, ceiling: int, num_nodes: int) -> Optional[int]:
    """Resolve a :data:`CacheSize` parameter to an entry bound.

    ``"auto"`` scales ``ceiling`` down so the cache stays within the default
    byte budget for a graph of ``num_nodes`` nodes; integers and ``None`` pass
    through unchanged.  Any other string is rejected.
    """
    if isinstance(value, str):
        if value != "auto":
            raise ValueError(f"cache size must be an int, None or 'auto', got {value!r}")
        return scaled_cache_size(ceiling, num_nodes)
    return value


class CompatibilityRelation(abc.ABC):
    """Base class for every compatibility relation.

    Parameters
    ----------
    graph:
        The signed graph the relation is defined over.
    compatible_cache_size:
        Legacy override for ``policy.compatible_cache_size`` — the LRU bound
        on cached per-source compatible sets; each set is O(n), so the bound
        caps the relation's memory at roughly ``compatible_cache_size * n``
        references on dense relations.  ``"auto"`` (the policy default)
        scales :data:`DEFAULT_COMPATIBLE_CACHE_SIZE` down by graph size to
        respect a byte budget; ``None`` disables eviction.  Prefer setting it
        on the policy.
    policy:
        The :class:`~repro.exec.ExecutionPolicy` governing backend choice,
        worker-pool execution and cache budgets.  ``None`` uses the default
        (serial) policy; explicitly passed legacy keyword arguments override
        the matching policy fields.
    """

    #: Short name used in the paper's tables (e.g. ``"SPA"``); set by subclasses.
    name: str = "ABSTRACT"

    #: Whether a source's compatible set depends only on its connected
    #: component (true for every path-based relation).  Relations with global
    #: dependence (NNE's complement-style sets) override this so the
    #: generation-keyed caches invalidate wholesale on node-set changes.
    component_local_sets: bool = True

    def __init__(
        self,
        graph: SignedGraph,
        compatible_cache_size: CacheSize = POLICY_DEFAULT,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        if not isinstance(graph, SignedGraph):
            # Bare CSR snapshots (CSR-first ingestion) are adapted to the
            # canonical lazy facade; the dict backend only materialises if a
            # dict-only code path is actually exercised.
            from repro.signed.lazy import as_signed_graph

            graph = as_signed_graph(graph)
        self._graph = graph
        self._policy = resolve_policy(
            policy, compatible_cache_size=compatible_cache_size
        )
        num_nodes = graph.number_of_nodes()
        # Generation-keyed: entries auto-expire when a mutation touches their
        # source's connected component, so mutating the graph never requires a
        # manual clear_cache() and never wipes unaffected components.
        self._compatible_cache: GenerationalLRUCache[Node, FrozenSet[Node]] = (
            GenerationalLRUCache(
                graph,
                maxsize=resolve_cache_size(
                    self._policy.compatible_cache_size,
                    DEFAULT_COMPATIBLE_CACHE_SIZE,
                    num_nodes,
                ),
                bytes_per_entry=num_nodes * APPROX_BYTES_PER_NODE,
                component_local=type(self).component_local_sets,
            )
        )

    @property
    def graph(self) -> SignedGraph:
        """The signed graph this relation is bound to."""
        return self._graph

    @property
    def policy(self) -> ExecutionPolicy:
        """The execution policy this relation runs under."""
        return self._policy

    def _executor(self):
        """The executor serving this relation's policy (serial or pooled)."""
        return executor_for(self._policy)

    # ----------------------------------------------------------------- public

    def are_compatible(self, u: Node, v: Node) -> bool:
        """True iff ``(u, v)`` belongs to the relation.

        Reflexive by construction: ``are_compatible(u, u)`` is always ``True``
        for nodes in the graph.
        """
        self._require_nodes(u, v)
        if u == v:
            return True
        return v in self.compatible_with(u)

    def compatible_with(self, u: Node) -> FrozenSet[Node]:
        """The set of nodes compatible with ``u`` (always contains ``u``)."""
        if u not in self._graph:
            raise NodeNotFoundError(u)
        cached = self._compatible_cache.get(u)
        if cached is None:
            computed = set(self._compute_compatible_set(u))
            computed.add(u)
            cached = frozenset(computed)
            self._compatible_cache[u] = cached
        return cached

    def compatibility_degree(self, u: Node) -> int:
        """Number of *other* nodes compatible with ``u``."""
        return len(self.compatible_with(u)) - 1

    def all_compatible(self, nodes: Iterable[Node]) -> bool:
        """True iff every pair of ``nodes`` is compatible (the team condition)."""
        node_list = list(nodes)
        for index, u in enumerate(node_list):
            compatible = self.compatible_with(u)
            for v in node_list[index + 1 :]:
                if v not in compatible:
                    return False
        return True

    def incompatible_pairs(self, nodes: Iterable[Node]) -> Iterator[Tuple[Node, Node]]:
        """Yield the incompatible pairs among ``nodes`` (useful for diagnostics)."""
        node_list = list(nodes)
        for index, u in enumerate(node_list):
            compatible = self.compatible_with(u)
            for v in node_list[index + 1 :]:
                if v not in compatible:
                    yield (u, v)

    def batch_compatible_sets(self, sources: Iterable[Node]) -> List[FrozenSet[Node]]:
        """Compatible sets for many sources at once (results cached as usual).

        The default runs :meth:`compatible_with` per source; relations with a
        cheaper batched strategy (the SP* family's indexed multi-source BFS,
        the balanced relations' shared reverse sweep) override this, and the
        pairwise statistics call it instead of looping so they pick up
        whichever strategy the relation implements.
        """
        return [self.compatible_with(source) for source in sources]

    def batch_compatibility_degrees(self, sources: Iterable[Node]) -> List[int]:
        """Number of *other* compatible nodes per source (see :meth:`batch_compatible_sets`)."""
        return [len(found) - 1 for found in self.batch_compatible_sets(sources)]

    def clear_cache(self) -> None:
        """Drop all cached per-source computations.

        Not required after graph mutations — the caches are generation-keyed
        and expire stale entries by themselves (targeted by connected
        component).  This remains the full reset for memory pressure or
        tests.
        """
        self._compatible_cache.clear()
        self._clear_subclass_cache()

    def sync_caches(self) -> None:
        """Eagerly re-key every generational cache to the current generation.

        Purely a latency optimisation: the caches sync lazily on their next
        access anyway.  Callers that know a mutation batch just ended (e.g.
        :meth:`~repro.compatibility.engine.CompatibilityEngine.refresh`) use
        this to take the invalidation sweep out of the next query.
        """
        self._compatible_cache.sync()
        self._sync_subclass_caches()

    # ----------------------------------------------------- property validation

    def satisfies_positive_edge_compatibility(self) -> bool:
        """Check Property 1 of the paper on every positive edge of the graph."""
        return all(
            self.are_compatible(u, v)
            for u, v, sign in self._graph.edge_triples()
            if sign == POSITIVE
        )

    def satisfies_negative_edge_incompatibility(self) -> bool:
        """Check Property 2 of the paper on every negative edge of the graph."""
        return not any(
            self.are_compatible(u, v)
            for u, v, sign in self._graph.edge_triples()
            if sign == NEGATIVE
        )

    def is_valid_relation(self) -> bool:
        """Check both required properties (exhaustively, edge by edge)."""
        return (
            self.satisfies_positive_edge_compatibility()
            and self.satisfies_negative_edge_incompatibility()
        )

    # --------------------------------------------------------------- subclass

    @abc.abstractmethod
    def _compute_compatible_set(self, u: Node) -> Set[Node]:
        """Return the nodes compatible with ``u`` (``u`` itself may be omitted)."""

    def _clear_subclass_cache(self) -> None:
        """Hook for subclasses that keep extra caches."""

    def _sync_subclass_caches(self) -> None:
        """Hook mirroring :meth:`_clear_subclass_cache` for eager generation sync."""

    # ---------------------------------------------------------------- helpers

    def _require_nodes(self, *nodes: Node) -> None:
        for node in nodes:
            if node not in self._graph:
                raise NodeNotFoundError(node)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(graph={self._graph!r})"
