"""Distances between users, per compatibility relation (Section 4 of the paper).

The communication cost of a team is defined on pairwise distances, and the
paper defines the distance *per relation*:

* **DPE, SPA, SPM, SPO** — the length of the shortest path between the users
  (for compatible pairs a positive shortest path of that length exists);
* **SBP, SBPH** — the length of the shortest positive structurally balanced
  path (exact or heuristic, matching the relation);
* **NNE** — the length of the shortest path ignoring signs (there may be no
  positive path at all).

:class:`DistanceOracle` hides these differences behind a single ``distance``
call and caches one single-source computation per queried source node.  The
"avg distance" row of Table 2 is the mean oracle distance over compatible
pairs.

With ``ExecutionPolicy(distance_index="auto"|"labels")`` the oracle consults
a precomputed distance-label index (:mod:`repro.signed.labels`) before
running any BFS: exact 2-hop hub labels answer in microseconds independent of
graph size, landmark sketches answer when their bounds are provably tight,
and everything else falls back to the exact BFS paths below — so answers are
bit-identical to the BFS backend in every mode.  Batched entry points build
and delta-refresh the index lazily per graph generation; per-pair queries
only consult an index that is already fresh (a stale generation is a
fallback, never a wrong answer).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.compatibility.balanced import _BalancedPathRelation
from repro.compatibility.base import CacheSize, CompatibilityRelation, resolve_cache_size
from repro.compatibility.shortest_path import CSR_AUTO_THRESHOLD, _ShortestPathRelation
from repro.exec.policy import (
    POLICY_DEFAULT,
    ExecutionPolicy,
    executor_for,
    resolve_policy,
)
from repro.signed.graph import Node, SignedGraph
from repro.signed.paths import INFINITY, shortest_path_lengths
from repro.utils.generational import GenerationalLRUCache
from repro.utils.lru import APPROX_BYTES_PER_NODE, fetch_batched
from repro.utils.optional import numpy_available, warn_numpy_missing
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive

#: Default bound on the number of cached single-source distance maps (the
#: ceiling the byte-aware ``"auto"`` sizing starts from).
DEFAULT_DISTANCE_CACHE_SIZE = 2048


class DistanceOracle:
    """Pairwise user distances consistent with a compatibility relation.

    Single-source distance maps are cached in a bounded LRU (``cache_size``
    entries, a legacy override for the policy's ``distance_cache_size``; the
    default ``"auto"`` scales the bound by graph size, ``None`` disables
    eviction).  The oracle inherits the relation's
    :class:`~repro.exec.ExecutionPolicy` unless given one explicitly, so its
    sign-agnostic BFS follows the relation's backend choice (an SP* relation
    built with ``backend="dict"`` keeps the oracle on the dict BFS too) and
    its batched sweeps run on the same executor — under a pool policy the
    team's distance maps are computed by worker processes.  Otherwise it
    switches to the indexed CSR backend at
    :data:`~repro.compatibility.shortest_path.CSR_AUTO_THRESHOLD` nodes when
    numpy is available.  :meth:`warm` and :meth:`batch_distance_to_set` are
    the batched entry points the :class:`~repro.compatibility.engine.CompatibilityEngine`
    uses to resolve many candidates against a team in one lockstep sweep.
    """

    def __init__(
        self,
        relation: CompatibilityRelation,
        cache_size: CacheSize = POLICY_DEFAULT,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        self._relation = relation
        self._graph = relation.graph
        self._policy = resolve_policy(
            policy if policy is not None else relation.policy,
            distance_cache_size=cache_size,
        )
        num_nodes = self._graph.number_of_nodes()
        # Generation-keyed like the relations' caches: distance maps are
        # per-source BFS results, so mutations invalidate by component.
        self._bfs_cache: GenerationalLRUCache[Node, object] = GenerationalLRUCache(
            self._graph,
            maxsize=resolve_cache_size(
                self._policy.distance_cache_size, DEFAULT_DISTANCE_CACHE_SIZE, num_nodes
            ),
            bytes_per_entry=num_nodes * APPROX_BYTES_PER_NODE,
        )
        #: The distance-label index (None until built) and its usage counters.
        self._label_index = None
        self._index_served = 0
        self._index_fallbacks = 0
        self._index_builds = 0
        self._index_patches = 0

    @property
    def relation(self) -> CompatibilityRelation:
        """The compatibility relation whose distance definition is used."""
        return self._relation

    @property
    def policy(self) -> ExecutionPolicy:
        """The execution policy the oracle's sweeps run under."""
        return self._policy

    def distance(self, u: Node, v: Node) -> float:
        """Distance from ``u`` to ``v`` under the relation's definition.

        Returns ``inf`` when the relevant kind of path does not exist (e.g. no
        positive balanced path under SBP, or disconnected nodes under NNE).
        """
        if u == v:
            return 0.0
        if isinstance(self._relation, _BalancedPathRelation):
            return self._relation.positive_balanced_distance(u, v)
        index = self._fresh_index()
        if index is not None:
            from repro.signed.csr import UNREACHABLE

            csr = self._graph.csr_view()
            iu = csr._index.get(u)
            iv = csr._index.get(v)
            if iu is not None and iv is not None:
                if index.mode == "exact":
                    self._index_served += 1
                    value = index.query(iu, iv)
                    return INFINITY if value == UNREACHABLE else float(value)
                upper, exact = index.bounds(iu, iv)
                if exact:
                    self._index_served += 1
                    return INFINITY if upper == UNREACHABLE else float(upper)
            self._index_fallbacks += 1
        lengths = self._shortest_paths_from(u)
        return float(lengths.get(v, INFINITY))

    def max_pairwise_distance(self, nodes: Iterable[Node]) -> float:
        """Largest pairwise distance among ``nodes`` (the team's communication cost)."""
        node_list = list(nodes)
        best = 0.0
        for index, u in enumerate(node_list):
            for v in node_list[index + 1 :]:
                best = max(best, self.distance(u, v))
                if best == INFINITY:
                    return INFINITY
        return best

    def sum_pairwise_distance(self, nodes: Iterable[Node]) -> float:
        """Sum of pairwise distances among ``nodes`` (alternative cost function)."""
        node_list = list(nodes)
        total = 0.0
        for index, u in enumerate(node_list):
            for v in node_list[index + 1 :]:
                distance = self.distance(u, v)
                if distance == INFINITY:
                    return INFINITY
                total += distance
        return total

    def distance_to_set(self, node: Node, team: Iterable[Node]) -> float:
        """Largest distance from ``node`` to any member of ``team`` (0 for an empty team).

        Distances are queried *from the team members* so that their cached
        single-source computations are reused across the many candidate nodes
        the team-formation policies evaluate.
        """
        best = 0.0
        for member in team:
            best = max(best, self.distance(member, node))
            if best == INFINITY:
                return INFINITY
        return best

    def warm(self, sources: Iterable[Node]) -> List[object]:
        """Prefetch the single-source distance maps of ``sources``, batched.

        On the CSR backend every uncached source joins one lockstep
        multi-source BFS
        (:func:`repro.signed.csr.multi_source_shortest_path_lengths_csr`)
        instead of running its own traversal.  Under a pool policy the
        workers write the dense distance maps straight into the dispatch's
        shared-memory result arena; the parent copies each row out of the
        mapped segment (cache entries must own their bytes) — no per-source
        array ever crosses the pipe pickled.  Returns the maps in input
        order; they are also written through to the cache.  All requested
        maps are computed and held for the duration of the call (callers pass
        team-sized lists); prefetch-only sweeps larger than the cache bound
        should warm in cache-sized chunks — see
        :func:`average_compatible_distance` — or the excess entries evict
        each other before they are read.  For balanced-path relations the
        oracle distance is not a plain BFS distance, so this is a no-op
        returning an empty list.
        """
        if isinstance(self._relation, _BalancedPathRelation):
            return []
        source_list = list(sources)

        def compute_missing(missing: List[Node]) -> List[object]:
            executor = executor_for(self._policy)
            if self._use_csr():
                from repro.signed.csr import CSRLengths

                csr = self._graph.csr_view()
                arrays = executor.map_kernel(
                    "csr_path_lengths",
                    csr,
                    [csr.index_of(source) for source in missing],
                    params={
                        "lockstep_threshold": self._policy.lockstep_node_threshold
                    },
                )
                return [CSRLengths(csr, lengths) for lengths in arrays]
            if self._policy.parallel:
                return executor.map_kernel("dict_path_lengths", self._graph, missing)
            return [shortest_path_lengths(self._graph, source) for source in missing]

        return fetch_batched(self._bfs_cache, source_list, compute_missing)

    def batch_distance_to_set(
        self, candidates: Sequence[Node], team: Iterable[Node]
    ) -> List[float]:
        """:meth:`distance_to_set` for many candidates at once.

        The team members' distance maps are prefetched in one batched sweep
        (:meth:`warm`) and, on the CSR backend, the per-candidate maximum over
        members is computed with array indexing instead of a Python loop per
        pair.  Values are identical to calling :meth:`distance_to_set` per
        candidate.  Balanced-path relations — whose distance is the balanced
        path length, not a BFS level — delegate to the relation's own
        :meth:`~repro.compatibility.balanced._BalancedPathRelation.batch_distance_to_set`
        (shared forward searches plus one chunked reverse sweep, pool-parallel
        under a worker policy) instead of the per-candidate loop.
        """
        candidate_list = list(candidates)
        team_list = list(team)
        if not candidate_list:
            return []
        if not team_list:
            return [0.0] * len(candidate_list)
        if isinstance(self._relation, _BalancedPathRelation):
            return self._relation.batch_distance_to_set(candidate_list, team_list)
        indexed = self._indexed_batch_distance_to_set(candidate_list, team_list)
        if indexed is not None:
            return indexed
        if not self._use_csr():
            if self._policy.parallel:
                # Prefetch the members' distance maps through the pool; the
                # per-candidate loop below then reads cached maps.
                self.warm(team_list)
            return [self.distance_to_set(c, team_list) for c in candidate_list]
        import numpy as np

        from repro.signed.csr import CSRLengths, UNREACHABLE

        maps = self.warm(team_list)
        if not all(isinstance(view, CSRLengths) for view in maps):
            # Mixed cache contents (e.g. maps computed before a backend
            # switch): the per-candidate loop handles every map type.
            return [self.distance_to_set(c, team_list) for c in candidate_list]
        csr = maps[0]._graph
        if not all(view._graph.shares_index_with(csr) for view in maps):
            # Maps from incompatible CSR snapshots (the node set changed):
            # dense ids are not comparable, let the per-candidate loop resolve
            # each map through its own view.  Snapshots produced by delta
            # maintenance of an unchanged node set share their index, so maps
            # that survived targeted invalidation stay on the batched path.
            return [self.distance_to_set(c, team_list) for c in candidate_list]
        dense = [csr._index.get(c) for c in candidate_list]
        if any(position is None for position in dense):
            # A candidate missing from the snapshot (graph mutated since the
            # maps were built): legacy lookups treat it as unreachable — keep
            # that behaviour via the per-candidate loop.
            return [self.distance_to_set(c, team_list) for c in candidate_list]
        ids = np.asarray(dense, dtype=np.int64)
        best = np.zeros(len(candidate_list), dtype=np.float64)
        for view in maps:
            values = view._lengths[ids].astype(np.float64)
            values[values == UNREACHABLE] = INFINITY
            np.maximum(best, values, out=best)
        return [float(value) for value in best]

    def sync(self) -> None:
        """Eagerly re-key the distance-map cache to the current generation.

        Optional — the cache syncs lazily on its next access; see
        :meth:`CompatibilityRelation.sync_caches`.  Also delta-refreshes the
        distance-label index, if one was built, so the engine's ``refresh()``
        leaves the oracle fully warm for the new generation.
        """
        self._bfs_cache.sync()
        self.refresh_index()

    def clear_cache(self) -> None:
        """Drop all cached distance maps and the distance-label index.

        Not required after graph mutations (the cache is generation-keyed);
        kept as the full reset for memory pressure or tests.
        """
        self._bfs_cache.clear()
        self._label_index = None

    # ------------------------------------------------------- label index

    def _labels_enabled(self) -> bool:
        """True iff the policy lets this oracle consult the label index."""
        mode = self._policy.distance_index
        if mode == "bfs" or isinstance(self._relation, _BalancedPathRelation):
            return False
        if not numpy_available():
            if mode == "labels":
                warn_numpy_missing("distance_index='labels'")
            return False
        if mode == "labels":
            return True
        return self._use_csr()

    def _fresh_index(self, build: bool = False):
        """The label index valid for the current generation, or ``None``.

        ``build=False`` (per-pair queries) never constructs anything — a
        missing or stale index is simply a BFS fallback.  ``build=True``
        (batched entry points) builds the index lazily and delta-refreshes a
        stale one, like ``csr_view`` does for the CSR snapshot.
        """
        if not self._labels_enabled():
            return None
        index = self._label_index
        if (
            index is not None
            and index.generation == self._graph.generation
            and index.num_nodes == self._graph.number_of_nodes()
        ):
            return index
        if not build:
            if index is not None:
                self._index_fallbacks += 1
            return None
        return self._build_or_refresh()

    def _build_or_refresh(self):
        from repro.signed.labels import (
            build_label_index,
            refresh_label_index,
            register_snapshot_labels,
        )

        executor = executor_for(self._policy)
        params = {"lockstep_threshold": self._policy.lockstep_node_threshold}
        if self._label_index is None:
            self._label_index = build_label_index(
                self._graph.csr_view(),
                budget_bytes=self._policy.label_budget_bytes,
                executor=executor,
                params=params,
            )
            self._index_builds += 1
        else:
            self._label_index, how = refresh_label_index(
                self._label_index,
                self._graph,
                budget_bytes=self._policy.label_budget_bytes,
                executor=executor,
                params=params,
            )
            if how == "patched":
                self._index_patches += 1
            elif how == "rebuilt":
                self._index_builds += 1
        # Record the index against the snapshot it serves, so snapshot_store
        # publishes and cache writes persist the label section for free.
        register_snapshot_labels(self._graph.csr_view(), self._label_index)
        return self._label_index

    def build_index(self):
        """Build (or delta-refresh) the distance-label index now.

        The batched query paths do this lazily; call it explicitly to pay the
        build cost up front (e.g. before a latency-sensitive serving phase).
        Returns the fresh :class:`~repro.signed.labels.LabelIndex`.  Raises
        for balanced-path relations, whose distances the index cannot serve.
        """
        if isinstance(self._relation, _BalancedPathRelation):
            raise ValueError(
                "the distance-label index serves BFS distances; "
                f"{type(self._relation).__name__} distances are balanced-path "
                "lengths and keep their own search machinery"
            )
        return self._build_or_refresh()

    def attach_index(self, index) -> None:
        """Adopt a prebuilt index (e.g. loaded from a ``.store`` snapshot).

        The index must cover the same dense-id space as the current graph;
        it is re-stamped to the graph's current generation — the caller
        asserts that the graph content matches what the index was built from
        (the cold-start contract: load the snapshot and its labels from the
        same store file).
        """
        if index.num_nodes != self._graph.number_of_nodes():
            raise ValueError(
                f"label index covers {index.num_nodes} nodes; the graph has "
                f"{self._graph.number_of_nodes()}"
            )
        self._label_index = index.stamped(self._graph.generation)
        from repro.signed.labels import register_snapshot_labels

        register_snapshot_labels(self._graph.csr_view(), self._label_index)

    def refresh_index(self) -> None:
        """Delta-refresh the label index to the current generation, if built."""
        if self._label_index is not None and self._labels_enabled():
            self._build_or_refresh()

    def index_stats(self) -> Optional[dict]:
        """Label-index observability: structure stats plus serve/fallback counts.

        ``None`` when no index has been built.
        """
        if self._label_index is None:
            return None
        stats = self._label_index.stats()
        stats.update(
            served=self._index_served,
            fallbacks=self._index_fallbacks,
            builds=self._index_builds,
            patches=self._index_patches,
        )
        return stats

    def _indexed_batch_distance_to_set(
        self, candidates: List[Node], team: List[Node]
    ) -> Optional[List[float]]:
        """The label-index fast path of :meth:`batch_distance_to_set`.

        Returns ``None`` to hand the query back to the BFS paths (index
        disabled, a node missing from the snapshot, or mixed cache state).
        Landmark members whose bounds are not provably tight for every
        candidate fall back to a warmed BFS map per member — values stay
        bit-identical to the pure BFS path either way.
        """
        index = self._fresh_index(build=True)
        if index is None:
            return None
        import numpy as np

        from repro.signed.csr import CSRLengths, UNREACHABLE

        csr = self._graph.csr_view()
        dense_candidates = [csr._index.get(c) for c in candidates]
        dense_team = [csr._index.get(m) for m in team]
        if any(d is None for d in dense_candidates) or any(
            d is None for d in dense_team
        ):
            return None
        ids = np.asarray(dense_candidates, dtype=np.int64)
        best = np.zeros(len(candidates), dtype=np.float64)
        pending: List[Node] = []
        for member, member_id in zip(team, dense_team):
            if index.mode == "exact":
                values = index.batch_query_from(member_id, ids).astype(np.float64)
                values[values == UNREACHABLE] = INFINITY
                np.maximum(best, values, out=best)
                self._index_served += 1
                continue
            upper, exact = index.batch_bounds_from(member_id, ids)
            if bool(exact.all()):
                values = upper.astype(np.float64)
                values[values == UNREACHABLE] = INFINITY
                np.maximum(best, values, out=best)
                self._index_served += 1
            else:
                pending.append(member)
                self._index_fallbacks += 1
        if pending:
            maps = self.warm(pending)
            if not all(
                isinstance(view, CSRLengths) and view._graph.shares_index_with(csr)
                for view in maps
            ):
                # Mixed or re-indexed cache contents; the legacy paths sort
                # every map type out per candidate.
                return None
            for view in maps:
                values = view._lengths[ids].astype(np.float64)
                values[values == UNREACHABLE] = INFINITY
                np.maximum(best, values, out=best)
        return [float(value) for value in best]

    def _use_csr(self) -> bool:
        if isinstance(self._relation, _ShortestPathRelation):
            return self._relation._use_csr()
        return numpy_available() and (
            self._graph.prefers_csr
            or self._graph.number_of_nodes() >= CSR_AUTO_THRESHOLD
        )

    def _shortest_paths_from(self, source: Node):
        lengths = self._bfs_cache.get(source)
        if lengths is None:
            if self._use_csr():
                from repro.signed.csr import CSRLengths, shortest_path_lengths_csr

                csr = self._graph.csr_view()
                lengths = CSRLengths(csr, shortest_path_lengths_csr(csr, source))
            else:
                lengths = shortest_path_lengths(self._graph, source)
            self._bfs_cache[source] = lengths
        return lengths


def average_compatible_distance(
    relation: CompatibilityRelation,
    oracle: Optional[DistanceOracle] = None,
    max_exact_nodes: int = 500,
    num_sampled_sources: int = 200,
    seed: RandomState = None,
) -> Tuple[float, int]:
    """Average distance over compatible pairs (the "avg distance" row of Table 2).

    Returns ``(average, pairs_counted)``; the average is ``0.0`` when no
    compatible pair with a finite distance was evaluated.  Small graphs are
    enumerated exhaustively; larger graphs are estimated by averaging over all
    compatible pairs anchored at ``num_sampled_sources`` random source nodes
    (the same sampling scheme as
    :func:`repro.compatibility.matrix.source_sampled_pair_statistics`).
    """
    oracle = oracle or DistanceOracle(relation)
    nodes = relation.graph.nodes()
    if len(nodes) < 2:
        return 0.0, 0

    total = 0.0
    count = 0
    if len(nodes) <= max_exact_nodes:
        for index, u in enumerate(nodes):
            compatible = relation.compatible_with(u)
            for v in nodes[index + 1 :]:
                if v not in compatible:
                    continue
                distance = oracle.distance(u, v)
                if distance != INFINITY:
                    total += distance
                    count += 1
    else:
        require_positive(num_sampled_sources, "num_sampled_sources")
        rng = ensure_rng(seed)
        sources = rng.sample(nodes, min(num_sampled_sources, len(nodes)))
        # Balanced relations resolve a whole sample in one shared reverse
        # sweep; pre-warming makes the per-source compatible_with calls below
        # cache hits instead of repeating the sweep under LRU pressure.
        relation.batch_compatible_sets(sources)
        # On the CSR backend the oracle's distance maps are warmed in
        # cache-bound-sized chunks, consumed chunk by chunk: warming the
        # whole sample at once would evict every map beyond the LRU bound
        # before the loop reads it.  On the dict backend (or for balanced
        # relations, whose distance is served by the search results) warming
        # has no batching benefit, so maps stay lazy — sources with an empty
        # compatible set never compute one, as before.
        warm = oracle._use_csr() and not isinstance(relation, _BalancedPathRelation)
        bound = oracle._bfs_cache.maxsize
        chunk = len(sources) if bound is None else max(1, min(len(sources), bound))
        for start in range(0, len(sources), chunk):
            chunk_sources = sources[start : start + chunk]
            if warm:
                oracle.warm(chunk_sources)
            for u in chunk_sources:
                compatible = relation.compatible_with(u)
                for v in compatible:
                    if v == u:
                        continue
                    distance = oracle.distance(u, v)
                    if distance != INFINITY:
                        total += distance
                        count += 1
    if count == 0:
        return 0.0, 0
    return total / count, count
