"""Distances between users, per compatibility relation (Section 4 of the paper).

The communication cost of a team is defined on pairwise distances, and the
paper defines the distance *per relation*:

* **DPE, SPA, SPM, SPO** — the length of the shortest path between the users
  (for compatible pairs a positive shortest path of that length exists);
* **SBP, SBPH** — the length of the shortest positive structurally balanced
  path (exact or heuristic, matching the relation);
* **NNE** — the length of the shortest path ignoring signs (there may be no
  positive path at all).

:class:`DistanceOracle` hides these differences behind a single ``distance``
call and caches one single-source computation per queried source node.  The
"avg distance" row of Table 2 is the mean oracle distance over compatible
pairs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.compatibility.balanced import _BalancedPathRelation
from repro.compatibility.base import CompatibilityRelation
from repro.compatibility.shortest_path import CSR_AUTO_THRESHOLD, _ShortestPathRelation
from repro.signed.csr import CSRLengths, shortest_path_lengths_csr
from repro.signed.graph import Node, SignedGraph
from repro.signed.paths import INFINITY, shortest_path_lengths
from repro.utils.lru import LRUCache
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive

#: Default bound on the number of cached single-source distance maps.
DEFAULT_DISTANCE_CACHE_SIZE = 2048


class DistanceOracle:
    """Pairwise user distances consistent with a compatibility relation.

    Single-source distance maps are cached in a bounded LRU
    (``cache_size`` entries, ``None`` = unbounded).  The sign-agnostic BFS
    follows the relation's backend choice when the relation has one (an SP*
    relation built with ``backend="dict"`` keeps the oracle on the dict BFS
    too); otherwise it switches to the indexed CSR backend at
    :data:`~repro.compatibility.shortest_path.CSR_AUTO_THRESHOLD` nodes.
    """

    def __init__(
        self,
        relation: CompatibilityRelation,
        cache_size: Optional[int] = DEFAULT_DISTANCE_CACHE_SIZE,
    ) -> None:
        self._relation = relation
        self._graph = relation.graph
        self._bfs_cache: LRUCache[Node, object] = LRUCache(maxsize=cache_size)

    @property
    def relation(self) -> CompatibilityRelation:
        """The compatibility relation whose distance definition is used."""
        return self._relation

    def distance(self, u: Node, v: Node) -> float:
        """Distance from ``u`` to ``v`` under the relation's definition.

        Returns ``inf`` when the relevant kind of path does not exist (e.g. no
        positive balanced path under SBP, or disconnected nodes under NNE).
        """
        if u == v:
            return 0.0
        if isinstance(self._relation, _BalancedPathRelation):
            return self._relation.positive_balanced_distance(u, v)
        lengths = self._shortest_paths_from(u)
        return float(lengths.get(v, INFINITY))

    def max_pairwise_distance(self, nodes: Iterable[Node]) -> float:
        """Largest pairwise distance among ``nodes`` (the team's communication cost)."""
        node_list = list(nodes)
        best = 0.0
        for index, u in enumerate(node_list):
            for v in node_list[index + 1 :]:
                best = max(best, self.distance(u, v))
                if best == INFINITY:
                    return INFINITY
        return best

    def sum_pairwise_distance(self, nodes: Iterable[Node]) -> float:
        """Sum of pairwise distances among ``nodes`` (alternative cost function)."""
        node_list = list(nodes)
        total = 0.0
        for index, u in enumerate(node_list):
            for v in node_list[index + 1 :]:
                distance = self.distance(u, v)
                if distance == INFINITY:
                    return INFINITY
                total += distance
        return total

    def distance_to_set(self, node: Node, team: Iterable[Node]) -> float:
        """Largest distance from ``node`` to any member of ``team`` (0 for an empty team).

        Distances are queried *from the team members* so that their cached
        single-source computations are reused across the many candidate nodes
        the team-formation policies evaluate.
        """
        best = 0.0
        for member in team:
            best = max(best, self.distance(member, node))
            if best == INFINITY:
                return INFINITY
        return best

    def _use_csr(self) -> bool:
        if isinstance(self._relation, _ShortestPathRelation):
            return self._relation._use_csr()
        return self._graph.number_of_nodes() >= CSR_AUTO_THRESHOLD

    def _shortest_paths_from(self, source: Node):
        lengths = self._bfs_cache.get(source)
        if lengths is None:
            if self._use_csr():
                csr = self._graph.csr_view()
                lengths = CSRLengths(csr, shortest_path_lengths_csr(csr, source))
            else:
                lengths = shortest_path_lengths(self._graph, source)
            self._bfs_cache[source] = lengths
        return lengths


def average_compatible_distance(
    relation: CompatibilityRelation,
    oracle: Optional[DistanceOracle] = None,
    max_exact_nodes: int = 500,
    num_sampled_sources: int = 200,
    seed: RandomState = None,
) -> Tuple[float, int]:
    """Average distance over compatible pairs (the "avg distance" row of Table 2).

    Returns ``(average, pairs_counted)``; the average is ``0.0`` when no
    compatible pair with a finite distance was evaluated.  Small graphs are
    enumerated exhaustively; larger graphs are estimated by averaging over all
    compatible pairs anchored at ``num_sampled_sources`` random source nodes
    (the same sampling scheme as
    :func:`repro.compatibility.matrix.source_sampled_pair_statistics`).
    """
    oracle = oracle or DistanceOracle(relation)
    nodes = relation.graph.nodes()
    if len(nodes) < 2:
        return 0.0, 0

    total = 0.0
    count = 0
    if len(nodes) <= max_exact_nodes:
        for index, u in enumerate(nodes):
            compatible = relation.compatible_with(u)
            for v in nodes[index + 1 :]:
                if v not in compatible:
                    continue
                distance = oracle.distance(u, v)
                if distance != INFINITY:
                    total += distance
                    count += 1
    else:
        require_positive(num_sampled_sources, "num_sampled_sources")
        rng = ensure_rng(seed)
        sources = rng.sample(nodes, min(num_sampled_sources, len(nodes)))
        # Balanced relations resolve a whole sample in one shared reverse
        # sweep; pre-warming makes the per-source compatible_with calls below
        # cache hits instead of repeating the sweep under LRU pressure.
        relation.batch_compatible_sets(sources)
        for u in sources:
            compatible = relation.compatible_with(u)
            for v in compatible:
                if v == u:
                    continue
                distance = oracle.distance(u, v)
                if distance != INFINITY:
                    total += distance
                    count += 1
    if count == 0:
        return 0.0, 0
    return total / count, count
