"""Command-line interface for the library.

Installed as ``repro-teams`` (see ``pyproject.toml``); also runnable as
``python -m repro.cli``.  Sub-commands:

* ``datasets`` — list the available datasets and their Table-1 statistics;
* ``compatibility`` — print the compatibility statistics of one dataset;
* ``team`` — form a team for a task given as a comma-separated skill list;
* ``reproduce`` — run the full experiment suite (all tables and figures);
* ``table2`` / ``figure2`` — run just that experiment;
* ``streaming`` — run the dynamic-graph workload: edge churn interleaved with
  team-formation queries over the generation-keyed caches;
* ``snapshot save|load|info`` — write a dataset's indexed graph to a
  ``.store`` snapshot file (``--labels`` also persists a distance-label
  index), load one back (memory-mapped by default), or inspect a file's
  header and plane layout without numpy (``info --json`` for machines);
* ``analyze`` — run the project's invariant lint rules (stdlib-AST static
  analysis, see :mod:`repro.analysis`) over the source tree; ``--strict``
  is the CI gate, ``--json`` emits the ``analysis.json`` artifact.

The experiment commands (``table2``, ``figure2``, ``streaming`` and
``reproduce``) take ``--workers N`` / ``--chunk-size M`` to fan the
per-source kernel sweeps out over a process pool
(:class:`repro.exec.ExecutionPolicy`), and ``--snapshot-store DIR`` to ship
pool snapshots as memory-mapped files instead of shared memory; the default
is serial, so existing invocations are unchanged, and results are identical
in every mode.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.compatibility import (
    RELATION_NAMES,
    DistanceOracle,
    make_relation,
    pair_statistics,
)
from repro.datasets import (
    ON_DEMAND_DATASETS,
    available,
    dataset_statistics,
    load_dataset,
)
from repro.experiments import (
    StreamingConfig,
    build_dataset_context,
    default_config,
    fast_config,
    run_all,
    run_figure2ab,
    run_figure2cd,
    run_streaming,
    run_table2,
)
from repro.skills import Task
from repro.teams import ALGORITHM_NAMES, TeamFormationProblem, run_algorithm
from repro.utils.tables import format_table


def _workers_argument(value: str) -> int:
    """Validate ``--workers`` at parse time with a message that explains it.

    Without this, a bad value would only surface at the first kernel
    dispatch, as an opaque ``ValueError`` out of the policy/multiprocessing
    internals.  The rule (and its message) lives in
    :func:`repro.exec.policy.validate_workers`, shared with
    :func:`repro.exec.resolve_policy` so the two surfaces cannot drift.
    """
    from repro.exec.policy import validate_workers

    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {value!r}"
        ) from None
    try:
        validate_workers(workers)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return workers


def _chunk_size_argument(value: str) -> int:
    """Validate ``--chunk-size``: a positive source count per worker task."""
    from repro.exec.policy import validate_chunk_size

    try:
        chunk_size = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer chunk size, got {value!r}"
        ) from None
    try:
        validate_chunk_size(chunk_size, name="chunk-size")
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return chunk_size


def _snapshot_store_argument(value: str) -> str:
    """Validate ``--snapshot-store``: an existing directory for store files.

    Shares its rule with :meth:`repro.exec.ExecutionPolicy.__post_init__` via
    :func:`repro.exec.policy.validate_snapshot_store`, so the policy layer and
    the CLI reject the same values with the same message.
    """
    from repro.exec.policy import validate_snapshot_store

    try:
        validate_snapshot_store(value, name="snapshot-store")
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return value


def _snapshot_file_argument(value: str) -> str:
    """Validate a snapshot path that must already exist (``load`` / ``info``)."""
    import os

    if not value:
        raise argparse.ArgumentTypeError("expected a snapshot file path")
    if not os.path.isfile(value):
        raise argparse.ArgumentTypeError(f"snapshot file does not exist: {value!r}")
    return value


def _snapshot_output_argument(value: str) -> str:
    """Validate a snapshot output path: its parent directory must exist."""
    import os

    if not value:
        raise argparse.ArgumentTypeError("expected an output file path")
    parent = os.path.dirname(os.path.abspath(value))
    if not os.path.isdir(parent):
        raise argparse.ArgumentTypeError(
            f"output directory does not exist: {parent!r} (create it first)"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-teams",
        description="Forming compatible teams in signed networks (EDBT 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="list datasets and their statistics")
    datasets_parser.add_argument("--seed", type=int, default=None, help="generation seed override")
    datasets_parser.add_argument("--scale", type=float, default=None, help="scale override")

    compat_parser = subparsers.add_parser(
        "compatibility", help="compatibility statistics for one dataset"
    )
    compat_parser.add_argument("dataset", choices=sorted(available()))
    compat_parser.add_argument(
        "--relations",
        default="SPA,SPM,SPO,SBPH,NNE",
        help="comma-separated relation names (default: SPA,SPM,SPO,SBPH,NNE)",
    )
    compat_parser.add_argument("--seed", type=int, default=None)
    compat_parser.add_argument("--scale", type=float, default=None)

    team_parser = subparsers.add_parser("team", help="form a team for a task")
    team_parser.add_argument("dataset", choices=sorted(available()))
    team_parser.add_argument("skills", help="comma-separated list of required skills")
    team_parser.add_argument("--relation", default="SPO", help=f"one of {list(RELATION_NAMES)}")
    team_parser.add_argument("--algorithm", default="LCMD", help=f"one of {list(ALGORITHM_NAMES)}")
    team_parser.add_argument("--seed", type=int, default=None)
    team_parser.add_argument("--scale", type=float, default=None)

    def add_execution_flags(subparser: argparse.ArgumentParser) -> None:
        """``--workers`` / ``--chunk-size``: the ExecutionPolicy pool knobs."""
        subparser.add_argument(
            "--workers",
            type=_workers_argument,
            default=0,
            help="worker processes for per-source kernel sweeps "
            "(0 = serial, the default; -1 = one per CPU)",
        )
        subparser.add_argument(
            "--chunk-size",
            type=_chunk_size_argument,
            default=None,
            help="sources per worker task (default: derived per dispatch)",
        )
        subparser.add_argument(
            "--snapshot-store",
            type=_snapshot_store_argument,
            default=None,
            metavar="DIR",
            help="existing directory to publish pool snapshots as memory-mapped "
            "files instead of shared memory (default: shared memory)",
        )

    def add_scale_flags(subparser: argparse.ArgumentParser) -> None:
        """Dataset-selection overrides: run an experiment off the paper grid.

        ``--datasets million --scale 1.0 --sources 8`` runs the experiment on
        the CSR-only 1M-node synthetic benchmark instead of the paper's three
        stand-ins.
        """
        subparser.add_argument(
            "--datasets",
            default=None,
            metavar="NAMES",
            help="comma-separated dataset names replacing the configured grid "
            f"(available: {', '.join(sorted(available()))})",
        )
        subparser.add_argument(
            "--scale", type=float, default=None, help="dataset scale override"
        )
        subparser.add_argument(
            "--dataset-seed", type=int, default=None, help="dataset generation seed"
        )
        subparser.add_argument(
            "--relations",
            default=None,
            metavar="NAMES",
            help="comma-separated relation names replacing the configured set "
            f"(available: {', '.join(RELATION_NAMES)})",
        )
        subparser.add_argument(
            "--sources",
            type=int,
            default=None,
            metavar="N",
            help="BFS sources sampled for pairwise statistics on large graphs",
        )
        subparser.add_argument(
            "--skill-pairs",
            type=int,
            default=None,
            metavar="N",
            help="skill pairs sampled for the skill-compatibility statistics",
        )

    reproduce_parser = subparsers.add_parser("reproduce", help="run all tables and figures")
    reproduce_parser.add_argument(
        "--fast", action="store_true", help="use the miniature configuration"
    )
    add_execution_flags(reproduce_parser)

    table2_parser = subparsers.add_parser(
        "table2", help="run Table 2 (compatibility-relation comparison) only"
    )
    table2_parser.add_argument(
        "--fast", action="store_true", help="use the miniature configuration"
    )
    add_scale_flags(table2_parser)
    add_execution_flags(table2_parser)

    figure2_parser = subparsers.add_parser(
        "figure2", help="run Figure 2 (team-formation panels) only"
    )
    figure2_parser.add_argument(
        "--fast", action="store_true", help="use the miniature configuration"
    )
    figure2_parser.add_argument(
        "--panels",
        choices=("ab", "cd", "all"),
        default="all",
        help="which Figure-2 panels to run (default: all)",
    )
    add_scale_flags(figure2_parser)
    add_execution_flags(figure2_parser)

    streaming_parser = subparsers.add_parser(
        "streaming", help="edge churn interleaved with team-formation queries"
    )
    streaming_parser.add_argument(
        "dataset", nargs="?", default=None, choices=sorted(available())
    )
    streaming_parser.add_argument(
        "--datasets",
        default=None,
        metavar="NAME",
        dest="datasets_option",
        help="dataset name (alternative to the positional argument, matching "
        f"the other workloads' --datasets flag; available: {', '.join(sorted(available()))})",
    )
    streaming_parser.add_argument(
        "--csr-only",
        action="store_true",
        help="require the run to stay dict-free (fails if any code path "
        "materialises the CSR facade's adjacency dicts; the check is "
        "automatic when the dataset loads as a CSR facade, e.g. million)",
    )
    streaming_parser.add_argument("--relation", default="SPO", help=f"one of {list(RELATION_NAMES)}")
    streaming_parser.add_argument(
        "--algorithms",
        default="LCMD,LCMC,RFMD,RFMC",
        help="comma-separated algorithm names run each round",
    )
    streaming_parser.add_argument("--rounds", type=int, default=8, help="churn+query rounds")
    streaming_parser.add_argument(
        "--churn", type=int, default=40, help="edge events applied per round"
    )
    streaming_parser.add_argument(
        "--tasks", type=int, default=2, help="team-formation queries per round"
    )
    streaming_parser.add_argument("--task-size", type=int, default=3, help="skills per task")
    streaming_parser.add_argument("--seed", type=int, default=2020, help="workload seed")
    streaming_parser.add_argument("--dataset-seed", type=int, default=None)
    streaming_parser.add_argument("--scale", type=float, default=None)
    streaming_parser.add_argument(
        "--backend", default="auto", choices=("auto", "dict", "csr")
    )
    add_execution_flags(streaming_parser)

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="save, load or inspect on-disk graph snapshots"
    )
    snapshot_subparsers = snapshot_parser.add_subparsers(
        dest="snapshot_command", required=True
    )
    snapshot_save = snapshot_subparsers.add_parser(
        "save", help="index a dataset's graph and save it as a snapshot file"
    )
    snapshot_save.add_argument("dataset", choices=sorted(available()))
    snapshot_save.add_argument("path", type=_snapshot_output_argument)
    snapshot_save.add_argument("--seed", type=int, default=None)
    snapshot_save.add_argument("--scale", type=float, default=None)
    snapshot_save.add_argument(
        "--labels",
        choices=("auto", "exact", "landmark"),
        default=None,
        help="also build a distance-label index and persist it in the snapshot",
    )
    snapshot_load = snapshot_subparsers.add_parser(
        "load", help="load a snapshot (memory-mapped) and print a summary"
    )
    snapshot_load.add_argument("path", type=_snapshot_file_argument)
    snapshot_load.add_argument(
        "--no-mmap",
        action="store_true",
        help="read the planes into memory instead of memory-mapping them",
    )
    snapshot_info_parser = snapshot_subparsers.add_parser(
        "info", help="print a snapshot's header and plane layout (numpy-free)"
    )
    snapshot_info_parser.add_argument("path", type=_snapshot_file_argument)
    snapshot_info_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the header and plane layout as a JSON document",
    )

    # The analyze flags live on repro.analysis.cli's own parser (shared with
    # ``python -m repro.analysis``); everything after "analyze" passes through
    # so the two entry points cannot drift.
    analyze_parser = subparsers.add_parser(
        "analyze",
        help="run the project's invariant lint rules (static analysis)",
        add_help=False,
    )
    analyze_parser.add_argument("analyze_args", nargs=argparse.REMAINDER)
    return parser


def _experiment_config(arguments: argparse.Namespace):
    """Build the experiment configuration an experiment command asked for.

    Beyond ``--fast`` and the execution flags, the scale flags
    (``--datasets`` / ``--scale`` / ``--dataset-seed`` / ``--relations`` /
    ``--sources`` / ``--skill-pairs``) rewrite the dataset grid, so e.g.
    ``table2 --datasets million --sources 8`` runs Table 2 on the 1M-node
    CSR-only benchmark instead of the paper's three stand-ins.
    """
    from dataclasses import replace as dataclass_replace

    from repro.experiments.config import DatasetConfig

    config = fast_config() if arguments.fast else default_config()

    names_argument = getattr(arguments, "datasets", None)
    if names_argument:
        names = [name.strip().lower() for name in names_argument.split(",") if name.strip()]
        if not names:
            raise SystemExit("error: --datasets needs at least one dataset name")
        chosen = []
        for name in names:
            try:
                chosen.append(config.dataset(name))
            except KeyError:
                # Not on the configured grid (e.g. "million"): start from the
                # registry defaults (seed=None lets the factory pick its own).
                chosen.append(DatasetConfig(name=name, seed=None))
        config = dataclass_replace(
            config, datasets=tuple(chosen), team_dataset=names[0]
        )

    overrides = {}
    if getattr(arguments, "dataset_seed", None) is not None:
        overrides["seed"] = arguments.dataset_seed
    if getattr(arguments, "scale", None) is not None:
        overrides["scale"] = arguments.scale
    if getattr(arguments, "sources", None) is not None:
        overrides["num_sampled_sources"] = arguments.sources
    if getattr(arguments, "skill_pairs", None) is not None:
        overrides["num_sampled_skill_pairs"] = arguments.skill_pairs
    if overrides:
        config = dataclass_replace(
            config,
            datasets=tuple(
                dataclass_replace(dataset, **overrides) for dataset in config.datasets
            ),
        )

    relations_argument = getattr(arguments, "relations", None)
    if relations_argument:
        relations = tuple(
            name.strip().upper()
            for name in relations_argument.split(",")
            if name.strip()
        )
        if not relations:
            raise SystemExit("error: --relations needs at least one relation name")
        config = dataclass_replace(
            config,
            table2_relations=relations,
            # The team experiments cannot run the exponential exact SBP.
            team_relations=tuple(name for name in relations if name != "SBP")
            or relations,
        )

    snapshot_store = getattr(arguments, "snapshot_store", None)
    if arguments.workers or arguments.chunk_size is not None or snapshot_store:
        config = config.with_execution(
            workers=arguments.workers,
            chunk_size=arguments.chunk_size,
            snapshot_store=snapshot_store,
        )
    return config


def _command_datasets(arguments: argparse.Namespace) -> int:
    rows = []
    skipped = []
    for name in sorted(available()):
        if name in ON_DEMAND_DATASETS:
            skipped.append(name)
            continue
        dataset = load_dataset(name, seed=arguments.seed, scale=arguments.scale)
        stats = dataset_statistics(dataset)
        rows.append(stats.as_row())
    headers = ["dataset", "#users", "#edges", "#neg edges", "diameter", "#skills"]
    print(format_table(headers, rows, title="Available datasets"))
    for name in skipped:
        print(
            f"(not generated: {name!r} — scale dataset, pass it explicitly, "
            f'e.g. "table2 --datasets {name} --scale 0.01")'
        )
    return 0


def _command_compatibility(arguments: argparse.Namespace) -> int:
    dataset = load_dataset(arguments.dataset, seed=arguments.seed, scale=arguments.scale)
    relation_names = [name.strip().upper() for name in arguments.relations.split(",") if name.strip()]
    rows = []
    for name in relation_names:
        relation = make_relation(name, dataset.graph)
        stats = pair_statistics(relation)
        rows.append([name, f"{stats.percentage:.2f}", stats.evaluated_pairs, stats.sampled])
    headers = ["relation", "compatible pairs %", "pairs evaluated", "sampled"]
    print(format_table(headers, rows, title=f"Compatibility on {dataset.name}"))
    return 0


def _command_team(arguments: argparse.Namespace) -> int:
    dataset = load_dataset(arguments.dataset, seed=arguments.seed, scale=arguments.scale)
    skills = [skill.strip() for skill in arguments.skills.split(",") if skill.strip()]
    if not skills:
        print("error: the task needs at least one skill", file=sys.stderr)
        return 2
    relation = make_relation(arguments.relation, dataset.graph)
    try:
        problem = TeamFormationProblem(dataset.graph, dataset.skills, relation, Task(skills))
    except Exception as error:  # surfacing InfeasibleTaskError and friends
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_algorithm(arguments.algorithm, problem)
    if not result.solved:
        print(
            f"No compatible team found for {skills} under {relation.name} "
            f"with {arguments.algorithm}."
        )
        return 1
    members = sorted(result.team, key=repr)
    print(f"Team ({len(members)} members, diameter {result.cost:g}) under {relation.name}:")
    oracle = DistanceOracle(relation)
    for member in members:
        member_skills = sorted(
            str(skill) for skill in dataset.skills.skills_of(member) if skill in problem.task
        )
        print(f"  {member}: covers {', '.join(member_skills) or '(support member)'}")
    return 0


def _command_reproduce(arguments: argparse.Namespace) -> int:
    run_all(_experiment_config(arguments))
    return 0


def _command_table2(arguments: argparse.Namespace) -> int:
    result = run_table2(_experiment_config(arguments))
    print(result.as_text())
    return 0


def _command_figure2(arguments: argparse.Namespace) -> int:
    config = _experiment_config(arguments)
    # One shared context (relation caches included) across both panel pairs.
    context = build_dataset_context(config, config.team_dataset)
    sections: List[str] = []
    if arguments.panels in ("ab", "all"):
        sections.append(run_figure2ab(config, context).as_text())
    if arguments.panels in ("cd", "all"):
        sections.append(run_figure2cd(config, context).as_text())
    print("\n\n".join(sections))
    return 0


def _command_streaming(arguments: argparse.Namespace) -> int:
    algorithms = tuple(
        name.strip().upper() for name in arguments.algorithms.split(",") if name.strip()
    )
    if not algorithms:
        print("error: at least one algorithm is required", file=sys.stderr)
        return 2
    dataset = arguments.dataset or arguments.datasets_option
    if dataset is None:
        print(
            "error: a dataset is required (positional or --datasets)",
            file=sys.stderr,
        )
        return 2
    if (
        arguments.dataset is not None
        and arguments.datasets_option is not None
        and arguments.dataset != arguments.datasets_option
    ):
        print(
            "error: positional dataset and --datasets disagree",
            file=sys.stderr,
        )
        return 2
    if dataset.lower() not in available():
        print(
            f"error: unknown dataset {dataset!r} "
            f"(available: {', '.join(sorted(available()))})",
            file=sys.stderr,
        )
        return 2
    config = StreamingConfig(
        dataset=dataset,
        dataset_seed=arguments.dataset_seed,
        scale=arguments.scale,
        relation=arguments.relation.upper(),
        backend=arguments.backend,
        workers=arguments.workers,
        chunk_size=arguments.chunk_size,
        snapshot_store=arguments.snapshot_store,
        algorithms=algorithms,
        num_rounds=arguments.rounds,
        churn_per_round=arguments.churn,
        tasks_per_round=arguments.tasks,
        task_size=arguments.task_size,
        seed=arguments.seed,
        csr_only=True if arguments.csr_only else None,
    )
    report = run_streaming(config, verbose=True)
    print(report.as_text())
    return 0


def _command_snapshot(arguments: argparse.Namespace) -> int:
    if arguments.snapshot_command == "save":
        from repro.signed.csr import CSRSignedGraph
        from repro.signed.store import save_snapshot, snapshot_info

        dataset = load_dataset(
            arguments.dataset, seed=arguments.seed, scale=arguments.scale
        )
        graph = dataset.graph
        if hasattr(graph, "csr_view"):
            # CSR facades (and plain SignedGraph) snapshot dict-free / cached.
            csr = graph.csr_view()
        else:
            csr = CSRSignedGraph.from_signed_graph(graph)
        labels = None
        if arguments.labels is not None:
            from repro.signed.labels import build_label_index

            labels = build_label_index(csr, mode=arguments.labels)
        save_snapshot(csr, arguments.path, labels=labels)
        info = snapshot_info(arguments.path)
        print(
            f"Saved {dataset.name}: {info['num_nodes']} nodes, "
            f"{info['num_edges']} edges, {info['file_nbytes']} bytes "
            f"-> {arguments.path}"
        )
        if info.get("labels"):
            label_info = info["labels"]
            print(
                f"Labels: mode={label_info['mode']} hubs={label_info['num_hubs']} "
                f"entries={label_info['num_label_entries']}"
            )
        return 0
    if arguments.snapshot_command == "load":
        from repro.signed.store import load_snapshot

        csr = load_snapshot(arguments.path, mmap=not arguments.no_mmap)
        mode = "read into memory" if arguments.no_mmap else "memory-mapped"
        print(
            f"Loaded snapshot ({mode}): {csr.number_of_nodes()} nodes, "
            f"{csr.number_of_edges()} edges, generation {csr.generation}"
        )
        return 0
    from repro.signed.store import snapshot_info

    info = snapshot_info(arguments.path)
    if arguments.json:
        import json

        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    rows = [
        [key, str(value)] for key, value in info.items() if key not in ("planes", "labels")
    ]
    if info.get("labels"):
        label_info = info["labels"]
        rows.append(
            [
                "labels",
                f"mode={label_info['mode']} hubs={label_info['num_hubs']} "
                f"entries={label_info['num_label_entries']} "
                f"generation={label_info['generation']}",
            ]
        )
    else:
        rows.append(["labels", "(none)"])
    rows += [
        [
            f"plane:{name}",
            f"dtype={plane['dtype']} count={plane['count']} offset={plane['offset']}",
        ]
        for name, plane in info["planes"].items()
    ]
    print(format_table(["field", "value"], rows, title=f"Snapshot {arguments.path}"))
    return 0


def _command_analyze(arguments: argparse.Namespace) -> int:
    from repro.analysis.cli import main as analyze_main

    return analyze_main(arguments.analyze_args, prog="repro-teams analyze")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "analyze":
        # Hand everything after "analyze" to the analysis parser directly:
        # argparse.REMAINDER refuses remainders that start with an option
        # string ("analyze --strict"), so the passthrough happens pre-parse.
        from repro.analysis.cli import main as analyze_main

        return analyze_main(argv[1:], prog="repro-teams analyze")
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "datasets": _command_datasets,
        "compatibility": _command_compatibility,
        "team": _command_team,
        "reproduce": _command_reproduce,
        "table2": _command_table2,
        "figure2": _command_figure2,
        "streaming": _command_streaming,
        "snapshot": _command_snapshot,
        "analyze": _command_analyze,
    }
    return handlers[arguments.command](arguments)


if __name__ == "__main__":
    sys.exit(main())
