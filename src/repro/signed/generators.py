"""Random signed-graph generators.

Real signed social networks (the paper's Slashdot, Epinions and Wikipedia
datasets) share three structural traits the generators below reproduce:

* heavy-tailed degree distributions and small diameters;
* a minority of negative edges (roughly 17–30 %);
* signs that are largely consistent with structural balance — most triangles
  are balanced, because communities of mutual friends antagonise each other.

The main generator, :func:`planted_factions_graph`, takes a topology (scale-
free, small-world or Erdős–Rényi), plants latent "factions", and signs edges
positively inside a faction and negatively across factions, with a
configurable noise level.  With zero noise the result is perfectly balanced;
with noise around 0.05–0.15 the balance statistics resemble the real networks.

All generators accept a seed and are fully deterministic given one.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.signed.components import largest_connected_component
from repro.signed.graph import NEGATIVE, POSITIVE, Node, SignedGraph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive, require_probability

#: Topology names accepted by :func:`planted_factions_graph`.
TOPOLOGIES = ("scale_free", "small_world", "erdos_renyi")


def signed_erdos_renyi(
    num_nodes: int,
    edge_probability: float,
    negative_fraction: float = 0.2,
    seed: RandomState = None,
) -> SignedGraph:
    """Erdős–Rényi topology with independently random signs.

    Every potential edge appears with ``edge_probability``; each existing edge
    is negative with probability ``negative_fraction``.  This is the
    "unstructured" null model — its triangles are *not* biased towards
    balance, which makes it a useful contrast to
    :func:`planted_factions_graph` in tests and ablations.
    """
    require_positive(num_nodes, "num_nodes")
    require_probability(edge_probability, "edge_probability")
    require_probability(negative_fraction, "negative_fraction")
    rng = ensure_rng(seed)
    topology = nx.gnp_random_graph(num_nodes, edge_probability, seed=rng.randrange(2**32))
    return _sign_uniformly(topology, negative_fraction, rng)


def signed_barabasi_albert(
    num_nodes: int,
    edges_per_node: int,
    negative_fraction: float = 0.2,
    seed: RandomState = None,
) -> SignedGraph:
    """Scale-free (Barabási–Albert) topology with independently random signs."""
    require_positive(num_nodes, "num_nodes")
    require_positive(edges_per_node, "edges_per_node")
    require_probability(negative_fraction, "negative_fraction")
    rng = ensure_rng(seed)
    topology = nx.barabasi_albert_graph(
        num_nodes, min(edges_per_node, num_nodes - 1), seed=rng.randrange(2**32)
    )
    return _sign_uniformly(topology, negative_fraction, rng)


def signed_watts_strogatz(
    num_nodes: int,
    nearest_neighbors: int,
    rewiring_probability: float = 0.1,
    negative_fraction: float = 0.2,
    seed: RandomState = None,
) -> SignedGraph:
    """Small-world (Watts–Strogatz) topology with independently random signs."""
    require_positive(num_nodes, "num_nodes")
    require_positive(nearest_neighbors, "nearest_neighbors")
    require_probability(rewiring_probability, "rewiring_probability")
    require_probability(negative_fraction, "negative_fraction")
    rng = ensure_rng(seed)
    topology = nx.connected_watts_strogatz_graph(
        num_nodes,
        min(nearest_neighbors, num_nodes - 1),
        rewiring_probability,
        seed=rng.randrange(2**32),
    )
    return _sign_uniformly(topology, negative_fraction, rng)


def planted_factions_graph(
    num_nodes: int,
    average_degree: float = 6.0,
    num_factions: int = 2,
    sign_noise: float = 0.1,
    topology: str = "scale_free",
    faction_sizes: Optional[Sequence[float]] = None,
    seed: RandomState = None,
) -> Tuple[SignedGraph, Dict[Node, int]]:
    """Generate a signed graph with planted factions (balance-biased signs).

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    average_degree:
        Target mean degree; converted into the topology generator's native
        parameter.
    num_factions:
        Number of latent camps.  Two camps give a (noisy) structurally
        balanced graph; more camps give a "weakly balanced" graph.
    sign_noise:
        Probability that an edge receives the sign *opposite* to what the
        faction structure dictates (intra-faction negative / inter-faction
        positive).  ``0.0`` yields a perfectly balanced graph when
        ``num_factions == 2``.
    topology:
        One of ``'scale_free'``, ``'small_world'``, ``'erdos_renyi'``.
    faction_sizes:
        Optional relative faction sizes (normalised internally); uniform by
        default.
    seed:
        Seed / generator for reproducibility.

    Returns
    -------
    (graph, factions):
        The signed graph and the planted node -> faction-index assignment.
    """
    require_positive(num_nodes, "num_nodes")
    require_positive(average_degree, "average_degree")
    require_positive(num_factions, "num_factions")
    require_probability(sign_noise, "sign_noise")
    if topology not in TOPOLOGIES:
        raise ValueError(f"topology must be one of {TOPOLOGIES}, got {topology!r}")
    rng = ensure_rng(seed)

    topology_graph = _build_topology(num_nodes, average_degree, topology, rng)
    factions = _assign_factions(list(topology_graph.nodes()), num_factions, faction_sizes, rng)

    graph = SignedGraph()
    for node in topology_graph.nodes():
        graph.add_node(node)
    for u, v in topology_graph.edges():
        if u == v:
            continue
        same_faction = factions[u] == factions[v]
        sign = POSITIVE if same_faction else NEGATIVE
        if rng.random() < sign_noise:
            sign = -sign
        graph.add_edge(u, v, sign)
    return graph, factions


def balanced_graph(
    num_nodes: int,
    average_degree: float = 6.0,
    topology: str = "scale_free",
    seed: RandomState = None,
) -> Tuple[SignedGraph, Dict[Node, int]]:
    """Generate a perfectly structurally balanced two-faction graph."""
    return planted_factions_graph(
        num_nodes,
        average_degree=average_degree,
        num_factions=2,
        sign_noise=0.0,
        topology=topology,
        seed=seed,
    )


def all_positive_graph(
    num_nodes: int,
    average_degree: float = 6.0,
    topology: str = "scale_free",
    seed: RandomState = None,
) -> SignedGraph:
    """Generate a graph whose edges are all positive (classic team-formation setting)."""
    graph, _ = planted_factions_graph(
        num_nodes,
        average_degree=average_degree,
        num_factions=1,
        sign_noise=0.0,
        topology=topology,
        seed=seed,
    )
    return graph


def flip_random_signs(
    graph: SignedGraph, fraction: float, seed: RandomState = None
) -> SignedGraph:
    """Return a copy of ``graph`` with a random ``fraction`` of edge signs flipped."""
    require_probability(fraction, "fraction")
    rng = ensure_rng(seed)
    perturbed = graph.copy()
    edges = list(perturbed.edge_triples())
    flip_count = int(round(fraction * len(edges)))
    for u, v, sign in rng.sample(edges, flip_count):
        perturbed.set_sign(u, v, -sign)
    return perturbed


def connected_planted_factions_graph(
    num_nodes: int,
    average_degree: float = 6.0,
    num_factions: int = 2,
    sign_noise: float = 0.1,
    topology: str = "scale_free",
    seed: RandomState = None,
) -> Tuple[SignedGraph, Dict[Node, int]]:
    """Like :func:`planted_factions_graph` but restricted to the largest component.

    The paper assumes a connected input graph; this helper is what the
    synthetic datasets use.  The returned faction map is restricted to the
    surviving nodes.
    """
    graph, factions = planted_factions_graph(
        num_nodes,
        average_degree=average_degree,
        num_factions=num_factions,
        sign_noise=sign_noise,
        topology=topology,
        seed=seed,
    )
    component = largest_connected_component(graph)
    surviving = {node: factions[node] for node in component.nodes()}
    return component, surviving


# --------------------------------------------------------------------------- internals


def _build_topology(
    num_nodes: int, average_degree: float, topology: str, rng: random.Random
) -> nx.Graph:
    """Instantiate the unsigned topology with roughly the requested mean degree."""
    nx_seed = rng.randrange(2**32)
    if topology == "scale_free":
        attachment = max(1, int(round(average_degree / 2.0)))
        attachment = min(attachment, max(1, num_nodes - 1))
        return nx.barabasi_albert_graph(num_nodes, attachment, seed=nx_seed)
    if topology == "small_world":
        neighbors = max(2, int(round(average_degree)))
        neighbors = min(neighbors, max(2, num_nodes - 1))
        if num_nodes <= neighbors:
            return nx.complete_graph(num_nodes)
        return nx.connected_watts_strogatz_graph(num_nodes, neighbors, 0.1, seed=nx_seed)
    edge_probability = min(1.0, average_degree / max(1, num_nodes - 1))
    return nx.gnp_random_graph(num_nodes, edge_probability, seed=nx_seed)


def _assign_factions(
    nodes: List[Node],
    num_factions: int,
    faction_sizes: Optional[Sequence[float]],
    rng: random.Random,
) -> Dict[Node, int]:
    """Randomly assign each node to a faction, respecting relative sizes."""
    if faction_sizes is None:
        weights = [1.0] * num_factions
    else:
        if len(faction_sizes) != num_factions:
            raise ValueError(
                f"faction_sizes has {len(faction_sizes)} entries but num_factions={num_factions}"
            )
        if any(size <= 0 for size in faction_sizes):
            raise ValueError("faction_sizes entries must be positive")
        weights = list(faction_sizes)
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)

    factions: Dict[Node, int] = {}
    for node in nodes:
        draw = rng.random()
        for index, threshold in enumerate(cumulative):
            if draw <= threshold:
                factions[node] = index
                break
        else:
            factions[node] = num_factions - 1
    return factions


def _sign_uniformly(
    topology: nx.Graph, negative_fraction: float, rng: random.Random
) -> SignedGraph:
    graph = SignedGraph()
    for node in topology.nodes():
        graph.add_node(node)
    for u, v in topology.edges():
        if u == v:
            continue
        sign = NEGATIVE if rng.random() < negative_fraction else POSITIVE
        graph.add_edge(u, v, sign)
    return graph
