"""A ``SignedGraph`` facade over CSR planes, materialised only on demand.

CSR-first ingestion (:mod:`repro.signed.ingest`, the loader snapshot cache)
produces a :class:`~repro.signed.csr.CSRSignedGraph` without ever building the
dict backend.  Every downstream constructor, however, is typed against
:class:`~repro.signed.graph.SignedGraph`.  :class:`CSRBackedSignedGraph`
bridges the two: it *is* a ``SignedGraph`` (relations, the engine, the oracle
and the pool accept it unchanged), but the adjacency dicts — the gigabytes at
a million nodes — are synthesised lazily, only if a caller actually exercises
a dict-only code path.

Everything the CSR kernels and the read-mostly query surface need is answered
straight from the planes: membership, node order, degrees, edge signs,
neighbour iteration (in CSR row order — exactly the dict insertion order, see
``ingest``), edge iteration, edge counts and ``csr_view()``.

**Mutations are dict-free too.**  ``add_node`` / ``add_edge`` / ``set_sign`` /
``remove_edge`` keep small *overlay rows* (plain dicts, seeded from the planes
on first touch) for the nodes they modify, append the event to the same
structured :class:`~repro.signed.delta.GraphDelta` the dict backend uses, and
bump :attr:`~repro.signed.graph.SignedGraph.generation` with the exact same
semantics (no-op writes never bump; ``add_edge`` adds its endpoints first).
``csr_view()`` folds the pending delta into fresh planes through
:meth:`CSRSignedGraph.apply_delta` — bit-identical, arrays and node order, to
the same churn applied to a dict graph — so the generational caches, the
engine memos and the pool's republish keying work unchanged while
:attr:`materialised` stays ``False`` through arbitrary churn.  Only the
genuinely dict-shaped operations (``remove_node``, ``subgraph``, ``copy`` of
the dict backend via ``_adjacency``, equality) still materialise.

:func:`as_signed_graph` is the canonical adapter: it returns ``SignedGraph``
inputs unchanged and wraps each ``CSRSignedGraph`` in exactly one shared
facade (so identity checks like ``relation.graph is problem.graph`` keep
working when two components independently adapt the same snapshot).
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import EdgeNotFoundError, InvalidSignError, NodeNotFoundError
from repro.signed.csr import CSRSignedGraph
from repro.signed.delta import GraphDelta
from repro.signed.graph import (
    _AFFECTED_MEMO_BOUND,
    _VALID_SIGNS,
    POSITIVE,
    Node,
    Sign,
    SignedEdge,
    SignedGraph,
)

__all__ = ["CSRBackedSignedGraph", "as_signed_graph"]

#: Events left free in the delta log before a mutation forces an early
#: ``csr_view()`` collapse.  A single mutation records at most three events
#: (two node additions + one edge event), so eight is comfortably safe: the
#: dict-free delta can never overflow (overflow drops events, which would make
#: the planes unrecoverable without a dict to rebuild from).
_DELTA_HEADROOM = 8


class _PendingAdjacency:
    """The minimal ``_adjacency`` surface ``CSRSignedGraph.apply_delta`` reads.

    ``apply_delta`` consults its ``graph`` argument for three things only:
    iteration in node order (``list(adjacency)``, when the node set changed),
    ``len(adjacency[node])`` and ``adjacency[node].items()`` for the delta's
    touched nodes.  This adapter answers all three from the facade's overlay
    rows plus the previous snapshot — no dict backend required.
    """

    __slots__ = ("_facade",)

    def __init__(self, facade: "CSRBackedSignedGraph") -> None:
        self._facade = facade

    def __iter__(self) -> Iterator[Node]:
        facade = self._facade
        yield from facade._plane_view()._nodes
        yield from facade._pending_nodes

    def __getitem__(self, node: Node) -> Dict[Node, Sign]:
        facade = self._facade
        row = facade._overlay.get(node)
        if row is None:
            row = facade._row_from_planes(node)
        return row


class _DeltaSource:
    """Pairs a :class:`_PendingAdjacency` with the generation stamp
    ``apply_delta`` copies onto the patched snapshot."""

    __slots__ = ("_adjacency", "generation")

    def __init__(self, adjacency: _PendingAdjacency, generation: int) -> None:
        self._adjacency = adjacency
        self.generation = generation


class CSRBackedSignedGraph(SignedGraph):
    """A :class:`SignedGraph` whose dict backend is built lazily from CSR.

    Construction is O(1) in the number of edges: only the counters are
    derived from the planes.  The wrapped snapshot is served by
    :meth:`csr_view` verbatim (generation-stamped, so delta maintenance and
    the generational caches behave exactly as on a parsed graph), and
    mutations stay dict-free (see the module docstring).
    """

    #: Backend selectors (``_use_csr``) read this instead of probing the
    #: graph: a CSR-backed facade should never pay a dict-BFS diameter probe
    #: (which would materialise the adjacency dicts) just to pick a backend.
    prefers_csr = True

    def __init__(self, csr: CSRSignedGraph) -> None:
        super().__init__()
        self._adj: Union[Dict[Node, Dict[Node, Sign]], None] = None
        self._csr = csr
        self._num_edges = csr.number_of_edges()
        self._num_positive = int(np.count_nonzero(csr.signs > 0)) // 2
        self._generation = csr.generation
        self._node_set_generation = csr.generation
        self._csr_cache = (csr.generation, csr)
        self._delta = GraphDelta()
        #: Current adjacency rows for nodes touched since the last snapshot,
        #: seeded from the planes on first touch.  Plain dicts mutated with
        #: the exact operations the dict backend would use, so row order (and
        #: hence the next snapshot's plane layout) is bit-identical.
        self._overlay: Dict[Node, Dict[Node, Sign]] = {}
        #: Nodes added since the last snapshot, in insertion order (their
        #: dense ids follow the snapshot's nodes, like the dict backend).
        self._pending_nodes: List[Node] = []
        self._pending_set = set()

    # ------------------------------------------------------- lazy dict backend

    @property
    def _adjacency(self) -> Dict[Node, Dict[Node, Sign]]:
        adj = self._adj
        if adj is None:
            adj = self._materialise()
        return adj

    @_adjacency.setter
    def _adjacency(self, value: Dict[Node, Dict[Node, Sign]]) -> None:
        self._adj = value

    @property
    def materialised(self) -> bool:
        """True once some caller has forced the dict backend into existence."""
        return self._adj is not None

    def _materialise(self) -> Dict[Node, Dict[Node, Sign]]:
        """Build the adjacency dicts from the CSR planes (row order = dict
        insertion order, the same contract as ``CSRSignedGraph.to_signed_graph``).

        Pending dict-free churn is folded into the planes first, so the dicts
        always describe the *current* graph."""
        csr = self.csr_view()
        nodes = csr._nodes
        indptr = csr.indptr.tolist()
        indices = csr.indices.tolist()
        signs = csr.signs.tolist()
        adj: Dict[Node, Dict[Node, Sign]] = {}
        for dense, node in enumerate(nodes):
            row: Dict[Node, Sign] = {}
            for position in range(indptr[dense], indptr[dense + 1]):
                row[nodes[indices[position]]] = signs[position]
            adj[node] = row
        self._adj = adj
        self._overlay.clear()
        self._pending_nodes.clear()
        self._pending_set.clear()
        return adj

    # --------------------------------------------------- dict-free churn state

    def _plane_view(self) -> CSRSignedGraph:
        """The snapshot the overlay rows and pending delta are relative to."""
        return self._csr_cache[1]

    def _row_from_planes(self, node: Node) -> Dict[Node, Sign]:
        """Reconstruct ``node``'s adjacency row (dict, CSR row order) from the
        current snapshot's planes."""
        csr = self._plane_view()
        dense = csr._index[node]
        nodes = csr._nodes
        start, stop = int(csr.indptr[dense]), int(csr.indptr[dense + 1])
        row_ids = csr.indices[start:stop].tolist()
        row_signs = csr.signs[start:stop].tolist()
        return {nodes[i]: s for i, s in zip(row_ids, row_signs)}

    def _ensure_row(self, node: Node) -> Dict[Node, Sign]:
        row = self._overlay.get(node)
        if row is None:
            row = self._row_from_planes(node)
            self._overlay[node] = row
        return row

    def _reserve_delta_headroom(self) -> None:
        """Collapse the pending delta into a snapshot before it can overflow.

        Overflow drops the logged events; the dict backend can rebuild from
        its dicts, but the dict-free facade cannot — so it snapshots early
        instead (``apply_delta`` is correct for deltas of any size)."""
        if len(self._delta) >= self._delta.max_events - _DELTA_HEADROOM:
            self.csr_view()

    # --------------------------------------------------------------- mutation

    def add_node(self, node: Node) -> None:
        if self._adj is not None:
            return SignedGraph.add_node(self, node)
        if node in self._pending_set or node in self._plane_view():
            return
        self._reserve_delta_headroom()
        self._overlay[node] = {}
        self._pending_nodes.append(node)
        self._pending_set.add(node)
        self._record_mutation(node)
        self._node_set_generation = self._generation
        self._delta.record_node_added(node)

    def add_edge(self, u: Node, v: Node, sign: Sign) -> None:
        if self._adj is not None:
            return SignedGraph.add_edge(self, u, v, sign)
        if sign not in _VALID_SIGNS:
            raise InvalidSignError(sign)
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        self._reserve_delta_headroom()
        self.add_node(u)
        self.add_node(v)
        row_u = self._ensure_row(u)
        existing = row_u.get(v)
        if existing is not None:
            if existing != sign:
                raise ValueError(
                    f"edge ({u!r}, {v!r}) already exists with sign {existing}; "
                    "use set_sign() to change it"
                )
            return
        row_u[v] = sign
        self._ensure_row(v)[u] = sign
        self._num_edges += 1
        self._record_mutation(u, v)
        self._delta.record_edge_added(u, v, sign)
        if sign == POSITIVE:
            self._num_positive += 1

    def set_sign(self, u: Node, v: Node, sign: Sign) -> None:
        if self._adj is not None:
            return SignedGraph.set_sign(self, u, v, sign)
        if sign not in _VALID_SIGNS:
            raise InvalidSignError(sign)
        current = self.sign(u, v)
        if current == sign:
            return
        self._reserve_delta_headroom()
        self._ensure_row(u)[v] = sign
        self._ensure_row(v)[u] = sign
        self._record_mutation(u, v, topology=False)
        self._delta.record_sign_changed(u, v, sign)
        if sign == POSITIVE:
            self._num_positive += 1
        else:
            self._num_positive -= 1

    def remove_edge(self, u: Node, v: Node) -> None:
        if self._adj is not None:
            return SignedGraph.remove_edge(self, u, v)
        sign = self.sign(u, v)
        self._reserve_delta_headroom()
        del self._ensure_row(u)[v]
        del self._ensure_row(v)[u]
        self._num_edges -= 1
        self._record_mutation(u, v)
        self._delta.record_edge_removed(u, v)
        if sign == POSITIVE:
            self._num_positive -= 1

    def remove_node(self, node: Node) -> None:
        # Node removal reshuffles every dense id; it is rare, dict-shaped
        # work — materialise (folding pending churn first) and let the dict
        # machinery handle it.
        if self._adj is None:
            if node not in self:
                raise NodeNotFoundError(node)
            self._materialise()
        return SignedGraph.remove_node(self, node)

    # ------------------------------------------------------------ CSR snapshot

    def csr_view(self) -> CSRSignedGraph:
        """The CSR snapshot of the current graph (cached per generation).

        Dict-free: pending churn is folded into the previous snapshot through
        :meth:`CSRSignedGraph.apply_delta`, driven by the overlay rows instead
        of adjacency dicts.  Bit-identical (arrays, node order, dtypes) to
        ``csr_view()`` on a dict graph that saw the same mutations."""
        if self._adj is not None:
            return SignedGraph.csr_view(self)
        cached_generation, view = self._csr_cache
        if cached_generation == self._generation:
            return view
        source = _DeltaSource(_PendingAdjacency(self), self._generation)
        patched = CSRSignedGraph.apply_delta(view, source, self._delta)
        self._csr_cache = (self._generation, patched)
        self._delta = GraphDelta(max_events=self._delta.max_events)
        self._overlay.clear()
        self._pending_nodes.clear()
        self._pending_set.clear()
        return patched

    def affected_nodes_since(self, generation: int):
        """Same contract as :meth:`SignedGraph.affected_nodes_since`, answered
        with a vectorised sweep over the planes instead of the dicts."""
        if self._adj is not None:
            return SignedGraph.affected_nodes_since(self, generation)
        if generation >= self._generation:
            return frozenset()
        if generation in self._affected_memo:
            return self._affected_memo[generation]
        seeds = [node for node, gen in self._touched.items() if gen > generation]
        num_nodes = len(self)
        result: Optional[frozenset]
        if 2 * len(seeds) >= num_nodes:
            result = None
        else:
            csr = self.csr_view()
            index = csr._index
            seed_ids = np.array(
                [index[s] for s in seeds if s in index], dtype=np.int64
            )
            visited = np.zeros(csr.number_of_nodes(), dtype=bool)
            if seed_ids.size:
                visited[seed_ids] = True
            frontier = seed_ids
            indptr, indices = csr.indptr, csr.indices
            while frontier.size:
                starts = indptr[frontier]
                counts = indptr[frontier + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    break
                shifts = np.concatenate(([0], np.cumsum(counts)[:-1]))
                positions = np.repeat(starts - shifts, counts) + np.arange(total)
                neighbors = indices[positions]
                fresh = neighbors[~visited[neighbors]]
                if fresh.size == 0:
                    break
                frontier = np.unique(fresh)
                visited[frontier] = True
            affected_count = int(np.count_nonzero(visited)) + (
                len(seeds) - seed_ids.size
            )
            if 2 * affected_count >= num_nodes:
                result = None
            else:
                nodes = csr._nodes
                affected = {nodes[i] for i in np.flatnonzero(visited).tolist()}
                affected.update(seeds)
                result = frozenset(affected)
        if len(self._affected_memo) >= _AFFECTED_MEMO_BOUND:
            self._affected_memo.clear()
        self._affected_memo[generation] = result
        return result

    def copy(self) -> SignedGraph:
        """An independent graph with the same nodes and edges.

        Dict-free when this facade is: the copy is a fresh facade over the
        current snapshot (planes are immutable, so sharing them is safe)."""
        if self._adj is not None:
            return SignedGraph.copy(self)
        return CSRBackedSignedGraph(self.csr_view())

    # ------------------------------------------------- CSR-served query surface

    def __contains__(self, node: Node) -> bool:
        if self._adj is not None:
            return node in self._adj
        return node in self._pending_set or node in self._plane_view()

    def has_node(self, node: Node) -> bool:
        return self.__contains__(node)

    def __len__(self) -> int:
        if self._adj is not None:
            return len(self._adj)
        return self._plane_view().number_of_nodes() + len(self._pending_nodes)

    def number_of_nodes(self) -> int:
        return self.__len__()

    def __iter__(self) -> Iterator[Node]:
        if self._adj is not None:
            return iter(self._adj)
        if self._pending_nodes:
            return iter(self._plane_view()._nodes + self._pending_nodes)
        return iter(self._plane_view()._nodes)

    def nodes(self) -> List[Node]:
        if self._adj is not None:
            return list(self._adj)
        if self._pending_nodes:
            return self._plane_view()._nodes + self._pending_nodes
        return self._plane_view().nodes()

    def degree(self, node: Node) -> int:
        if self._adj is not None:
            return SignedGraph.degree(self, node)
        row = self._overlay.get(node)
        if row is not None:
            return len(row)
        csr = self._plane_view()
        dense = csr.index_of(node)
        return int(csr.indptr[dense + 1] - csr.indptr[dense])

    def has_edge(self, u: Node, v: Node) -> bool:
        if self._adj is not None:
            return SignedGraph.has_edge(self, u, v)
        row = self._overlay.get(u)
        if row is not None:
            return v in row
        csr = self._plane_view()
        if u not in csr or v not in csr:
            return False
        du, dv = csr._index[u], csr._index[v]
        plane_row = csr.indices[csr.indptr[du] : csr.indptr[du + 1]]
        return bool((plane_row == dv).any())

    def sign(self, u: Node, v: Node) -> Sign:
        if self._adj is not None:
            return SignedGraph.sign(self, u, v)
        if u not in self:
            raise NodeNotFoundError(u)
        if v not in self:
            raise NodeNotFoundError(v)
        row = self._overlay.get(u)
        if row is not None:
            try:
                return row[v]
            except KeyError:
                raise EdgeNotFoundError(u, v) from None
        csr = self._plane_view()
        du = csr._index[u]
        dv = csr._index.get(v)
        if dv is None:
            raise EdgeNotFoundError(u, v)
        start, stop = int(csr.indptr[du]), int(csr.indptr[du + 1])
        plane_row = csr.indices[start:stop]
        hit = np.flatnonzero(plane_row == dv)
        if hit.size == 0:
            raise EdgeNotFoundError(u, v)
        return int(csr.signs[start + int(hit[0])])

    def neighbors(self, node: Node) -> Iterator[Node]:
        if self._adj is not None:
            return SignedGraph.neighbors(self, node)
        row = self._overlay.get(node)
        if row is not None:
            return iter(list(row))
        csr = self._plane_view()
        dense = csr.index_of(node)
        nodes = csr._nodes
        plane_row = csr.indices[csr.indptr[dense] : csr.indptr[dense + 1]]
        return iter([nodes[i] for i in plane_row.tolist()])

    def signed_neighbors(self, node: Node) -> Iterator[Tuple[Node, Sign]]:
        if self._adj is not None:
            return SignedGraph.signed_neighbors(self, node)
        row = self._overlay.get(node)
        if row is not None:
            return iter(list(row.items()))
        csr = self._plane_view()
        dense = csr.index_of(node)
        nodes = csr._nodes
        start, stop = int(csr.indptr[dense]), int(csr.indptr[dense + 1])
        plane_row = csr.indices[start:stop].tolist()
        row_signs = csr.signs[start:stop].tolist()
        return iter([(nodes[i], s) for i, s in zip(plane_row, row_signs)])

    def edges(self) -> Iterator[SignedEdge]:
        """Iterate over every edge exactly once, dict-free.

        Emission order matches the dict backend's ``edges()`` exactly: an
        undirected edge surfaces at its first row-major appearance in the
        planes, which (CSR row order = dict insertion order) is the first
        time the dict scan would see the pair."""
        if self._adj is not None:
            return SignedGraph.edges(self)
        csr = self.csr_view()
        us, vs, ss = csr.edge_arrays()
        nodes = csr._nodes

        def _iterate() -> Iterator[SignedEdge]:
            for u, v, s in zip(us.tolist(), vs.tolist(), ss.tolist()):
                yield SignedEdge(nodes[u], nodes[v], s)

        return _iterate()

    def __repr__(self) -> str:
        if self._adj is not None:
            state = "materialised"
        elif self._delta:
            state = "csr-only, pending delta"
        else:
            state = "csr-only"
        return (
            f"CSRBackedSignedGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()}, {state})"
        )


#: One shared facade per CSR snapshot.  Keyed by ``id(csr)``: the facade holds
#: a strong reference to its snapshot, so as long as an entry's facade is
#: alive the id cannot be recycled; when the facade dies the entry goes with
#: it (weak values).  The ``_csr is csr`` re-check makes stale hits impossible
#: even under exotic GC timing.
_CANONICAL: "weakref.WeakValueDictionary[int, CSRBackedSignedGraph]" = (
    weakref.WeakValueDictionary()
)


def as_signed_graph(graph: Union[SignedGraph, CSRSignedGraph]) -> SignedGraph:
    """Adapt ``graph`` to the :class:`SignedGraph` interface.

    ``SignedGraph`` instances (including existing facades) pass through
    unchanged; a bare :class:`CSRSignedGraph` is wrapped in the process-wide
    canonical :class:`CSRBackedSignedGraph` for that snapshot.
    """
    if isinstance(graph, SignedGraph):
        return graph
    if isinstance(graph, CSRSignedGraph):
        key = id(graph)
        wrapper = _CANONICAL.get(key)
        if wrapper is not None and wrapper._csr is graph:
            return wrapper
        wrapper = CSRBackedSignedGraph(graph)
        _CANONICAL[key] = wrapper
        return wrapper
    raise TypeError(
        f"expected a SignedGraph or CSRSignedGraph, got {type(graph).__name__}"
    )
