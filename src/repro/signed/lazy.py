"""A ``SignedGraph`` facade over CSR planes, materialised only on demand.

CSR-first ingestion (:mod:`repro.signed.ingest`, the loader snapshot cache)
produces a :class:`~repro.signed.csr.CSRSignedGraph` without ever building the
dict backend.  Every downstream constructor, however, is typed against
:class:`~repro.signed.graph.SignedGraph`.  :class:`CSRBackedSignedGraph`
bridges the two: it *is* a ``SignedGraph`` (relations, the engine, the oracle
and the pool accept it unchanged), but the adjacency dicts — the gigabytes at
a million nodes — are synthesised lazily, the first time a caller actually
exercises a dict-only code path.

Everything the CSR kernels and the read-mostly query surface need is answered
straight from the planes: membership, node order, degrees, edge signs,
neighbour iteration (in CSR row order — exactly the dict insertion order, see
``ingest``), edge counts and ``csr_view()``.  Mutations (``add_edge`` /
``set_sign`` / ``remove_node`` …) transparently materialise the dicts first
and then run the normal generation/delta machinery, so churn on a CSR-first
graph patches the CSR view through the same delta buffer as always.

:func:`as_signed_graph` is the canonical adapter: it returns ``SignedGraph``
inputs unchanged and wraps each ``CSRSignedGraph`` in exactly one shared
facade (so identity checks like ``relation.graph is problem.graph`` keep
working when two components independently adapt the same snapshot).
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterator, List, Tuple, Union

import numpy as np

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.signed.csr import CSRSignedGraph
from repro.signed.delta import GraphDelta
from repro.signed.graph import Node, Sign, SignedGraph

__all__ = ["CSRBackedSignedGraph", "as_signed_graph"]


class CSRBackedSignedGraph(SignedGraph):
    """A :class:`SignedGraph` whose dict backend is built lazily from CSR.

    Construction is O(1) in the number of edges: only the counters are
    derived from the planes.  The wrapped snapshot is served by
    :meth:`csr_view` verbatim (generation-stamped, so delta maintenance and
    the generational caches behave exactly as on a parsed graph).
    """

    #: Backend selectors (``_use_csr``) read this instead of probing the
    #: graph: a CSR-backed facade should never pay a dict-BFS diameter probe
    #: (which would materialise the adjacency dicts) just to pick a backend.
    prefers_csr = True

    def __init__(self, csr: CSRSignedGraph) -> None:
        super().__init__()
        self._adj: Union[Dict[Node, Dict[Node, Sign]], None] = None
        self._csr = csr
        self._num_edges = csr.number_of_edges()
        self._num_positive = int(np.count_nonzero(csr.signs > 0)) // 2
        self._generation = csr.generation
        self._node_set_generation = csr.generation
        self._csr_cache = (csr.generation, csr)
        self._delta = GraphDelta()

    # ------------------------------------------------------- lazy dict backend

    @property
    def _adjacency(self) -> Dict[Node, Dict[Node, Sign]]:
        adj = self._adj
        if adj is None:
            adj = self._materialise()
        return adj

    @_adjacency.setter
    def _adjacency(self, value: Dict[Node, Dict[Node, Sign]]) -> None:
        self._adj = value

    @property
    def materialised(self) -> bool:
        """True once some caller has forced the dict backend into existence."""
        return self._adj is not None

    def _materialise(self) -> Dict[Node, Dict[Node, Sign]]:
        """Build the adjacency dicts from the CSR planes (row order = dict
        insertion order, the same contract as ``CSRSignedGraph.to_signed_graph``)."""
        csr = self._csr
        nodes = csr._nodes
        indptr = csr.indptr.tolist()
        indices = csr.indices.tolist()
        signs = csr.signs.tolist()
        adj: Dict[Node, Dict[Node, Sign]] = {}
        for dense, node in enumerate(nodes):
            row: Dict[Node, Sign] = {}
            for position in range(indptr[dense], indptr[dense + 1]):
                row[nodes[indices[position]]] = signs[position]
            adj[node] = row
        self._adj = adj
        return adj

    # ------------------------------------------------- CSR-served query surface

    def __contains__(self, node: Node) -> bool:
        if self._adj is not None:
            return node in self._adj
        return node in self._csr

    def has_node(self, node: Node) -> bool:
        return self.__contains__(node)

    def __len__(self) -> int:
        if self._adj is not None:
            return len(self._adj)
        return self._csr.number_of_nodes()

    def number_of_nodes(self) -> int:
        return self.__len__()

    def __iter__(self) -> Iterator[Node]:
        if self._adj is not None:
            return iter(self._adj)
        return iter(self._csr._nodes)

    def nodes(self) -> List[Node]:
        if self._adj is not None:
            return list(self._adj)
        return self._csr.nodes()

    def degree(self, node: Node) -> int:
        if self._adj is not None:
            return SignedGraph.degree(self, node)
        csr = self._csr
        dense = csr.index_of(node)
        return int(csr.indptr[dense + 1] - csr.indptr[dense])

    def has_edge(self, u: Node, v: Node) -> bool:
        if self._adj is not None:
            return SignedGraph.has_edge(self, u, v)
        csr = self._csr
        if u not in csr or v not in csr:
            return False
        du, dv = csr._index[u], csr._index[v]
        row = csr.indices[csr.indptr[du] : csr.indptr[du + 1]]
        return bool((row == dv).any())

    def sign(self, u: Node, v: Node) -> Sign:
        if self._adj is not None:
            return SignedGraph.sign(self, u, v)
        csr = self._csr
        if u not in csr:
            raise NodeNotFoundError(u)
        if v not in csr:
            raise NodeNotFoundError(v)
        du, dv = csr._index[u], csr._index[v]
        start, stop = int(csr.indptr[du]), int(csr.indptr[du + 1])
        row = csr.indices[start:stop]
        hit = np.flatnonzero(row == dv)
        if hit.size == 0:
            raise EdgeNotFoundError(u, v)
        return int(csr.signs[start + int(hit[0])])

    def neighbors(self, node: Node) -> Iterator[Node]:
        if self._adj is not None:
            return SignedGraph.neighbors(self, node)
        csr = self._csr
        dense = csr.index_of(node)
        nodes = csr._nodes
        row = csr.indices[csr.indptr[dense] : csr.indptr[dense + 1]]
        return iter([nodes[i] for i in row.tolist()])

    def signed_neighbors(self, node: Node) -> Iterator[Tuple[Node, Sign]]:
        if self._adj is not None:
            return SignedGraph.signed_neighbors(self, node)
        csr = self._csr
        dense = csr.index_of(node)
        nodes = csr._nodes
        start, stop = int(csr.indptr[dense]), int(csr.indptr[dense + 1])
        row = csr.indices[start:stop].tolist()
        row_signs = csr.signs[start:stop].tolist()
        return iter([(nodes[i], s) for i, s in zip(row, row_signs)])

    def __repr__(self) -> str:
        state = "materialised" if self._adj is not None else "csr-only"
        return (
            f"CSRBackedSignedGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()}, {state})"
        )


#: One shared facade per CSR snapshot.  Keyed by ``id(csr)``: the facade holds
#: a strong reference to its snapshot, so as long as an entry's facade is
#: alive the id cannot be recycled; when the facade dies the entry goes with
#: it (weak values).  The ``_csr is csr`` re-check makes stale hits impossible
#: even under exotic GC timing.
_CANONICAL: "weakref.WeakValueDictionary[int, CSRBackedSignedGraph]" = (
    weakref.WeakValueDictionary()
)


def as_signed_graph(graph: Union[SignedGraph, CSRSignedGraph]) -> SignedGraph:
    """Adapt ``graph`` to the :class:`SignedGraph` interface.

    ``SignedGraph`` instances (including existing facades) pass through
    unchanged; a bare :class:`CSRSignedGraph` is wrapped in the process-wide
    canonical :class:`CSRBackedSignedGraph` for that snapshot.
    """
    if isinstance(graph, SignedGraph):
        return graph
    if isinstance(graph, CSRSignedGraph):
        key = id(graph)
        wrapper = _CANONICAL.get(key)
        if wrapper is not None and wrapper._csr is graph:
            return wrapper
        wrapper = CSRBackedSignedGraph(graph)
        _CANONICAL[key] = wrapper
        return wrapper
    raise TypeError(
        f"expected a SignedGraph or CSRSignedGraph, got {type(graph).__name__}"
    )
