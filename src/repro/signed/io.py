"""Reading and writing signed graphs.

Supported formats:

* **Signed edge list** (the SNAP ``soc-sign-*`` layout used by the paper's
  datasets): one edge per line, whitespace- or comma-separated, columns
  ``source target sign``; lines starting with ``#`` are comments.
* **JSON**: a dictionary ``{"nodes": [...], "edges": [[u, v, sign], ...]}``,
  round-trippable including isolated nodes.

The loaders never touch the network — they only read local files — so the real
SNAP datasets can be dropped in when available, while the synthetic stand-ins
(:mod:`repro.datasets.synthetic`) are used otherwise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import DatasetError, InvalidSignError
from repro.signed.graph import NEGATIVE, POSITIVE, Node, SignedGraph

PathLike = Union[str, Path]


def parse_edge_list(
    lines: Iterable[str],
    directed_to_undirected: str = "keep_first",
) -> SignedGraph:
    """Parse a signed edge list from an iterable of text lines.

    Parameters
    ----------
    lines:
        Lines of the form ``u v sign`` (whitespace or comma separated).  The
        sign column accepts ``1 / +1 / -1`` as well as ``+`` / ``-``.
    directed_to_undirected:
        SNAP sign networks are directed; this library works on undirected
        graphs.  When both ``(u, v)`` and ``(v, u)`` appear with conflicting
        signs, the policy decides what to do:

        * ``"keep_first"`` — keep the sign seen first (default);
        * ``"negative_wins"`` — a single negative report makes the edge negative
          (the conservative choice for incompatibility);
        * ``"error"`` — raise :class:`DatasetError`.
    """
    if directed_to_undirected not in ("keep_first", "negative_wins", "error"):
        raise ValueError(
            "directed_to_undirected must be 'keep_first', 'negative_wins' or 'error', "
            f"got {directed_to_undirected!r}"
        )
    graph = SignedGraph()
    for line_number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 3:
            raise DatasetError(
                f"line {line_number}: expected 'source target sign', got {raw_line!r}"
            )
        u, v = _parse_node(parts[0]), _parse_node(parts[1])
        sign = _parse_sign(parts[2])
        if u == v:
            continue
        if graph.has_edge(u, v):
            existing = graph.sign(u, v)
            if existing == sign:
                continue
            if directed_to_undirected == "error":
                raise DatasetError(
                    f"line {line_number}: conflicting signs for edge ({u!r}, {v!r})"
                )
            if directed_to_undirected == "negative_wins":
                graph.set_sign(u, v, NEGATIVE)
            continue
        graph.add_edge(u, v, sign)
    return graph


def read_edge_list(path: PathLike, directed_to_undirected: str = "keep_first") -> SignedGraph:
    """Read a signed edge-list file; see :func:`parse_edge_list` for the format."""
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"edge-list file not found: {file_path}")
    with file_path.open("r", encoding="utf-8") as handle:
        return parse_edge_list(handle, directed_to_undirected=directed_to_undirected)


def write_edge_list(graph: SignedGraph, path: PathLike) -> None:
    """Write ``graph`` as a signed edge list (``u v sign`` per line)."""
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    with file_path.open("w", encoding="utf-8") as handle:
        handle.write("# source target sign\n")
        for u, v, sign in graph.edge_triples():
            handle.write(f"{u} {v} {sign}\n")


def graph_to_json_dict(graph: SignedGraph) -> dict:
    """Return a JSON-serialisable dictionary representation of ``graph``."""
    return {
        "nodes": list(graph.nodes()),
        "edges": [[u, v, sign] for u, v, sign in graph.edge_triples()],
    }


def graph_from_json_dict(data: dict) -> SignedGraph:
    """Rebuild a graph from :func:`graph_to_json_dict` output."""
    if "edges" not in data:
        raise DatasetError("JSON graph payload is missing the 'edges' key")
    edges = [(u, v, _parse_sign(sign)) for u, v, sign in data["edges"]]
    return SignedGraph.from_edges(edges, nodes=data.get("nodes"))


def write_json(graph: SignedGraph, path: PathLike) -> None:
    """Serialise ``graph`` to a JSON file."""
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    with file_path.open("w", encoding="utf-8") as handle:
        json.dump(graph_to_json_dict(graph), handle)


def read_json(path: PathLike) -> SignedGraph:
    """Load a graph previously written with :func:`write_json`."""
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"JSON graph file not found: {file_path}")
    with file_path.open("r", encoding="utf-8") as handle:
        return graph_from_json_dict(json.load(handle))


def _parse_node(token: str) -> Node:
    """Nodes in SNAP files are integers; fall back to the raw string otherwise."""
    try:
        return int(token)
    except ValueError:
        return token


def _parse_sign(token: object) -> int:
    if token in (POSITIVE, NEGATIVE):
        return int(token)  # type: ignore[arg-type]
    text = str(token).strip()
    if text in ("+", "+1", "1"):
        return POSITIVE
    if text in ("-", "-1"):
        return NEGATIVE
    raise InvalidSignError(token)
