"""Indexed CSR backend for signed graphs and batched array-based BFS.

The dict-of-dicts :class:`~repro.signed.graph.SignedGraph` is ideal for
incremental construction and O(1) single-edge queries, but every per-source
algorithm pays Python-interpreter cost per visited edge.  This module provides
the indexed counterpart used on large graphs:

* :class:`CSRSignedGraph` — an immutable snapshot that maps arbitrary hashable
  node ids to dense integers and stores adjacency as three flat arrays
  (``indptr`` offsets, ``indices`` neighbours, ``signs`` labels) — the classic
  compressed-sparse-row layout;
* :func:`signed_bfs_csr` — Algorithm 1 (positive/negative shortest-path
  counting) as a level-synchronous vectorised BFS over the flat arrays;
* :func:`shortest_path_lengths_csr` / :func:`shortest_signed_walk_lengths_csr`
  — array versions of the other two single-source primitives;
* :func:`multi_source_signed_bfs` — **batched** Algorithm 1: k sources advance
  in lockstep over a flat ``k x n`` state space, so one set of array operations
  per BFS level serves the whole batch (sources are processed in memory-bounded
  chunks; see :data:`DEFAULT_BATCH_CHUNK`).  Lockstep engages below
  :data:`LOCKSTEP_NODE_THRESHOLD` nodes; past it the batch runs cache-friendly
  per-source traversals over the shared index instead;
* :func:`multi_source_shortest_path_lengths_csr` — the batched counterpart for
  sign-agnostic distances, used by the distance oracle's team sweeps;
* :func:`balanced_heuristic_search_csr` — the SBPH prefix-property search as an
  indexed (node, sign)-state BFS: candidate generation and visited-state
  filtering are vectorised over the whole frontier, and only candidates that
  can actually claim a new state run the per-path balance check in Python.
  Bit-identical to :meth:`~repro.signed.paths.BalancedPathSearch.search_heuristic`.

Results come back as :class:`CSRSignedBFSResult`, an array-backed object that
answers the same ``length`` / ``counts`` / ``reachable`` queries as
:class:`~repro.signed.paths.SignedBFSResult` and can be converted to it
exactly (:meth:`CSRSignedBFSResult.to_signed_bfs_result`), so callers can
switch backends without changing semantics.  Path counts are held in ``int64``
— exact up to 2**63-1, which covers every graph in this repository; graphs
engineered to have astronomically many shortest paths (e.g. large grids) need
the dict backend's arbitrary-precision integers.

Everything here is deterministic: the dense ids follow the insertion order of
the source graph, and the BFS visits neighbours in adjacency order, so the
outputs are bit-identical to the dict implementations (the equivalence tests
in ``tests/test_csr.py`` enforce this).

The level-synchronous traversal pays a fixed cost of ~20 array operations per
BFS level, so it targets the low-diameter graphs this library is about
(social networks, diameter < 20); on path-like graphs with diameter ~n the
dict BFS is faster and ``backend="dict"`` should be forced.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NodeNotFoundError
from repro.signed.graph import Node, Sign, SignedGraph
from repro.signed.paths import INFINITY, BalancedPathResult, SignedBFSResult

#: Sentinel used in length arrays for unreachable nodes.
UNREACHABLE = -1

#: Sources per lockstep batch in the multi-source kernels.  Each chunk holds
#: ``chunk * n`` int64 count arrays (plus int32 lengths), so 64 sources on a
#: 4k-node graph peak around 6 MB — large enough to amortise the ~20 array
#: operations per BFS level over the whole chunk, small enough to stay cheap
#: in memory.
DEFAULT_BATCH_CHUNK = 64

#: Above this node count the multi-source kernels run per-source traversals
#: over the shared index instead of the lockstep ``k x n`` frontier matrix.
#: Lockstep amortises the fixed ~20-array-operation-per-level cost across all
#: k sources, but its gathers and scatters range over ``k x n``-element
#: arrays; once those leave the last-level cache (empirically a few thousand
#: nodes on current hardware) the per-source traversals — whose working set
#: is a cache-resident O(n) — win on memory locality.  Measured crossover:
#: lockstep is ~1.5x faster at n=2k and ~1.6x *slower* at n=50k.
LOCKSTEP_NODE_THRESHOLD = 4096

#: Minimum batch size for the word-parallel kernels to engage on large
#: graphs (above :data:`LOCKSTEP_NODE_THRESHOLD`, where lockstep has bowed
#: out).  Word-parallel BFS advances up to 64 sources through ONE adjacency
#: gather per level: frontier/visited state lives in per-node ``uint64``
#: words (bit b = "source b is here"), so in a low-diameter graph — where
#: nearby sources' frontiers overlap heavily after a couple of levels — the
#: union frontier is far smaller than the sum of per-source frontiers.
#: Below a handful of sources there is no union to exploit and the
#: per-source traversals' simpler inner loop wins.
WORDPARALLEL_MIN_SOURCES = 8


class CSRSignedGraph:
    """An immutable compressed-sparse-row snapshot of a signed graph.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the neighbours of dense node ``i``
        live in ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int32`` array of neighbour dense ids (both directions of every
        undirected edge are stored, like the adjacency dict).
    signs:
        ``int8`` array parallel to ``indices`` holding the edge labels.
    """

    # __weakref__ lets the execution layer key published shared-memory
    # snapshots on the graph object itself (repro.exec.pool).
    __slots__ = ("indptr", "indices", "signs", "generation", "_nodes", "_index", "__weakref__")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        signs: np.ndarray,
        nodes: List[Node],
        index: Optional[Dict[Node, int]] = None,
        generation: int = 0,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.signs = signs
        #: The :attr:`SignedGraph.generation` this snapshot was taken at
        #: (``0`` for snapshots built outside the graph's cache).
        self.generation = generation
        self._nodes = nodes
        # A pre-built index may be shared across snapshots of the same node
        # set (delta maintenance); both are treated as immutable.
        self._index: Dict[Node, int] = (
            index if index is not None else {node: i for i, node in enumerate(nodes)}
        )

    # ------------------------------------------------------------------ build

    @classmethod
    def from_signed_graph(cls, graph: SignedGraph) -> "CSRSignedGraph":
        """Snapshot ``graph`` into CSR form (dense ids follow node insertion order)."""
        nodes = graph.nodes()
        index = {node: i for i, node in enumerate(nodes)}
        num_nodes = len(nodes)
        adjacency = graph._adjacency
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        for node, i in index.items():
            indptr[i + 1] = len(adjacency[node])
        np.cumsum(indptr, out=indptr)
        num_entries = int(indptr[-1])
        indices = np.empty(num_entries, dtype=np.int32)
        signs = np.empty(num_entries, dtype=np.int8)
        position = 0
        for node in nodes:
            for neighbor, sign in adjacency[node].items():
                indices[position] = index[neighbor]
                signs[position] = sign
                position += 1
        return cls(
            indptr, indices, signs, nodes, index=index, generation=graph.generation
        )

    @classmethod
    def apply_delta(
        cls, base: "CSRSignedGraph", graph: SignedGraph, delta
    ) -> "CSRSignedGraph":
        """New snapshot of ``graph`` built by patching ``base`` with ``delta``.

        Only the adjacency rows of nodes the delta touches are rebuilt (in
        Python, from the graph's adjacency dicts — the source of truth for
        neighbour order); every other row is copied from ``base`` with one
        vectorised gather.  The result is **bit-identical** to
        :meth:`from_signed_graph` on the mutated graph: same node order, same
        per-row neighbour order, same dtypes (the dynamic-graph equivalence
        suite asserts this for arbitrary mutation interleavings).

        When the node set is unchanged the new snapshot *shares* the node
        list and index objects of ``base`` (both are immutable), which is what
        lets per-source results cached against ``base`` remain dense-id
        compatible with the new snapshot (:meth:`shares_index_with`).  Node
        additions extend a copy of the index; node removals trigger a full
        dense-id remap of the copied rows.
        """
        adjacency = graph._adjacency
        touched = delta.touched_nodes()
        old_nodes = base._nodes
        old_degrees = np.diff(base.indptr)
        if not delta.has_node_changes:
            nodes = old_nodes
            index = base._index
            remap = None
            back: Optional[np.ndarray] = None
            degrees = old_degrees.copy()
        elif not delta.nodes_removed:
            # Pure additions append to the node order; extend a copy of the
            # index (cheap C-level dict copy) and keep existing dense ids.
            nodes = list(adjacency)
            index = dict(base._index)
            for position in range(len(old_nodes), len(nodes)):
                index[nodes[position]] = position
            remap = None
            back = None
            degrees = np.zeros(len(nodes), dtype=np.int64)
            degrees[: len(old_nodes)] = old_degrees
        else:
            # Removals shift dense ids: rebuild the order from the graph and
            # remap every copied row's neighbour ids.
            nodes = list(adjacency)
            index = {node: i for i, node in enumerate(nodes)}
            remap = np.full(len(old_nodes), -1, dtype=np.int64)
            for old_id, node in enumerate(old_nodes):
                new_id = index.get(node)
                if new_id is not None:
                    remap[old_id] = new_id
            back = np.full(len(nodes), -1, dtype=np.int64)
            kept = np.flatnonzero(remap >= 0)
            back[remap[kept]] = kept
            degrees = np.where(back >= 0, old_degrees[np.maximum(back, 0)], 0)
        num_nodes = len(nodes)
        touched_ids = sorted(index[node] for node in touched if node in index)
        for dense in touched_ids:
            degrees[dense] = len(adjacency[nodes[dense]])
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indptr[1:] = degrees
        np.cumsum(indptr, out=indptr)
        num_entries = int(indptr[-1])
        indices = np.empty(num_entries, dtype=np.int32)
        signs = np.empty(num_entries, dtype=np.int8)
        # Untouched rows: one vectorised slice-to-slice copy for all of them.
        untouched = np.ones(num_nodes, dtype=bool)
        if touched_ids:
            untouched[touched_ids] = False
        rows = np.flatnonzero(untouched)
        if rows.size:
            old_rows = rows if back is None else back[rows]
            counts = degrees[rows]
            total = int(counts.sum())
            if total:
                src_starts = base.indptr[old_rows]
                dst_starts = indptr[rows]
                shifts = np.concatenate(([0], np.cumsum(counts)[:-1]))
                steps = np.arange(total)
                src = np.repeat(src_starts - shifts, counts) + steps
                dst = np.repeat(dst_starts - shifts, counts) + steps
                values = base.indices[src]
                if remap is not None:
                    values = remap[values]
                indices[dst] = values
                signs[dst] = base.signs[src]
        # Touched rows: rebuilt from the adjacency dicts, preserving order.
        for dense in touched_ids:
            position = int(indptr[dense])
            for neighbor, sign in adjacency[nodes[dense]].items():
                indices[position] = index[neighbor]
                signs[position] = sign
                position += 1
        return cls(
            indptr, indices, signs, nodes, index=index, generation=graph.generation
        )

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, Node, Sign]],
        nodes: Optional[Iterable[Node]] = None,
    ) -> "CSRSignedGraph":
        """Build from ``(u, v, sign)`` triples, via an intermediate :class:`SignedGraph`."""
        return cls.from_signed_graph(SignedGraph.from_edges(edges, nodes=nodes))

    # ------------------------------------------------------------------ persist

    def save(self, path: str) -> str:
        """Persist this snapshot to ``path`` in the store format.

        Atomic (temp file + ``os.replace``); see :mod:`repro.signed.store`
        for the layout.  Returns ``path``.
        """
        from repro.signed.store import save_snapshot

        return save_snapshot(self, path)

    @classmethod
    def load(cls, path: str, mmap: bool = True) -> "CSRSignedGraph":
        """Load a snapshot previously written by :meth:`save`.

        With ``mmap=True`` the planes are read-only :class:`numpy.memmap`
        views — cold start is the cost of mapping the file, not of parsing
        an edge list.  Bit-identical to the saved snapshot either way.
        """
        from repro.signed.store import load_snapshot

        return load_snapshot(path, mmap=mmap)

    def to_signed_graph(self) -> SignedGraph:
        """Rebuild the mutable dict-backend graph this snapshot describes.

        The inverse of :meth:`from_signed_graph`, exactly: node insertion
        order follows dense-id order and each adjacency dict is filled in
        CSR row order, so ``CSRSignedGraph.from_signed_graph(csr.to_signed_graph())``
        reproduces ``indptr``/``indices``/``signs`` bit for bit.  This is what
        lets the dataset loaders round-trip parsed graphs through the
        snapshot store without perturbing any downstream result.
        """
        graph = SignedGraph()
        nodes = self._nodes
        indptr = self.indptr.tolist()
        indices = self.indices.tolist()
        signs = self.signs.tolist()
        # Rows are filled directly (same discipline as SignedGraph.copy): the
        # public add_edge would insert each neighbour at edge-addition order,
        # not CSR row order, and the roundtrip would stop being exact.
        adjacency = graph._adjacency
        positive_entries = 0
        for dense, node in enumerate(nodes):
            row: Dict[Node, Sign] = {}
            for position in range(indptr[dense], indptr[dense + 1]):
                row[nodes[indices[position]]] = signs[position]
                if signs[position] > 0:
                    positive_entries += 1
            adjacency[node] = row
        graph._num_edges = len(indices) // 2
        graph._num_positive = positive_entries // 2
        return graph

    # ------------------------------------------------------------------ query

    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._nodes)

    def number_of_edges(self) -> int:
        """Return ``|E|`` (each undirected edge counted once)."""
        return len(self.indices) // 2

    def nodes(self) -> List[Node]:
        """The original node objects, in dense-id order (a fresh list, like
        :meth:`SignedGraph.nodes`, so callers may mutate it freely)."""
        return list(self._nodes)

    def node_at(self, dense_id: int) -> Node:
        """The original node object for ``dense_id``."""
        return self._nodes[dense_id]

    def index_of(self, node: Node) -> int:
        """The dense id of ``node``; raises :class:`NodeNotFoundError` if absent."""
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def shares_index_with(self, other: "CSRSignedGraph") -> bool:
        """True iff ``other`` uses the *same* dense-id mapping as this snapshot.

        Snapshots produced by delta maintenance (and full rebuilds of an
        unchanged node set) share the node-list object, so dense arrays
        computed against one remain valid against the other.  The check is an
        identity test — O(1), never a node-by-node comparison.
        """
        return self._nodes is other._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def degrees(self) -> np.ndarray:
        """Array of node degrees, indexed by dense id."""
        return np.diff(self.indptr)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(u, v, sign)`` dense-id arrays, one entry per undirected edge.

        Order is first row-major appearance in the planes: the entry for
        ``{u, v}`` sits in the row of the smaller dense id (the other
        direction lives in a later row), in row order.  Because CSR row order
        is dict insertion order, this is exactly the order
        :meth:`SignedGraph.edges` enumerates the same graph in — the contract
        the streaming churn sampler relies on to stay bit-compatible across
        backends.
        """
        row = np.repeat(
            np.arange(len(self._nodes), dtype=np.int64), np.diff(self.indptr)
        )
        keep = row < self.indices
        return row[keep], self.indices[keep].astype(np.int64), self.signs[keep]

    def __repr__(self) -> str:
        return (
            f"CSRSignedGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )


@dataclass(eq=False)
class CSRSignedBFSResult:
    """Array-backed output of :func:`signed_bfs_csr` (Algorithm 1).

    ``lengths[i]`` is the BFS distance from the source to dense node ``i``
    (:data:`UNREACHABLE` when there is none); ``positive_counts`` /
    ``negative_counts`` hold the signed shortest-path counts.  The query
    methods accept the original node objects, so the object is a drop-in for
    :class:`~repro.signed.paths.SignedBFSResult` in pairwise code.  Equality
    is identity (``eq=False``): value comparison of array fields is ambiguous;
    convert via :meth:`to_signed_bfs_result` to compare results by value.
    """

    source: Node
    graph: CSRSignedGraph
    lengths_array: np.ndarray
    positive_array: np.ndarray
    negative_array: np.ndarray

    def length(self, node: Node) -> float:
        """Shortest-path length to ``node`` (``inf`` if unreachable)."""
        value = self.lengths_array[self.graph.index_of(node)]
        return INFINITY if value == UNREACHABLE else int(value)

    def counts(self, node: Node) -> Tuple[int, int]:
        """Return ``(positive, negative)`` shortest-path counts for ``node``."""
        dense = self.graph.index_of(node)
        return (int(self.positive_array[dense]), int(self.negative_array[dense]))

    def reachable(self, node: Node) -> bool:
        """True iff ``node`` is reachable from the source."""
        return self.lengths_array[self.graph.index_of(node)] != UNREACHABLE

    def reachable_count(self) -> int:
        """Number of reachable nodes (including the source)."""
        return int((self.lengths_array != UNREACHABLE).sum())

    def compatible_count(self, rule_mask: np.ndarray) -> int:
        """Number of non-source nodes selected by a boolean ``rule_mask``.

        ``rule_mask`` is typically produced by a vectorised pair rule over
        ``positive_array`` / ``negative_array`` (see the SP* relations); the
        source itself and unreachable nodes are excluded, mirroring the
        dict-backend compatible-set construction.
        """
        mask = rule_mask & (self.lengths_array != UNREACHABLE)
        mask[self.graph.index_of(self.source)] = False
        return int(mask.sum())

    def compatible_nodes(self, rule_mask: np.ndarray) -> List[Node]:
        """The non-source node objects selected by ``rule_mask`` (reachable only)."""
        mask = rule_mask & (self.lengths_array != UNREACHABLE)
        mask[self.graph.index_of(self.source)] = False
        nodes = self.graph._nodes
        return [nodes[i] for i in np.flatnonzero(mask)]

    def to_signed_bfs_result(self) -> SignedBFSResult:
        """Convert to the dict-backed :class:`SignedBFSResult`, bit for bit.

        Reachable nodes appear in BFS-discovery-compatible order (by level,
        then dense id); counts and lengths are identical to what
        :func:`~repro.signed.paths.signed_bfs` produces on the same graph.
        """
        nodes = self.graph._nodes
        reachable = np.flatnonzero(self.lengths_array != UNREACHABLE)
        order = reachable[np.argsort(self.lengths_array[reachable], kind="stable")]
        lengths: Dict[Node, int] = {}
        positive: Dict[Node, int] = {}
        negative: Dict[Node, int] = {}
        for dense in order:
            node = nodes[dense]
            lengths[node] = int(self.lengths_array[dense])
            positive[node] = int(self.positive_array[dense])
            negative[node] = int(self.negative_array[dense])
        return SignedBFSResult(
            source=self.source,
            positive_counts=positive,
            negative_counts=negative,
            lengths=lengths,
        )


def _next_frontier(
    new_states: np.ndarray, state_array: np.ndarray, next_depth: int
) -> np.ndarray:
    """Deduplicated frontier for the next BFS level.

    ``new_states`` holds the states discovered this level, possibly with
    duplicates.  For small levels a sort-based ``np.unique`` is cheapest; for
    large levels a linear scan of the state array beats sorting — without the
    scan fallback a low-diameter graph pays O(k log k) on huge levels, and
    without the unique fast path a path-like graph pays O(n · diameter) in
    full-array scans.
    """
    if new_states.size * 16 < state_array.size:
        return np.unique(new_states)
    return np.flatnonzero(state_array == next_depth)


def _concatenated_neighbor_ranges(
    csr: CSRSignedGraph, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Gather the adjacency slices of every frontier node into flat arrays.

    Returns ``(targets, signs, sources, counts)`` where ``sources[k]`` is the
    frontier node whose adjacency produced ``targets[k]`` and ``counts[i]`` is
    the degree of ``frontier[i]`` (so callers can repeat per-frontier data
    without regathering the offsets).  Fully vectorised: the concatenated
    ranges are materialised with the repeat/cumsum offset trick instead of a
    Python loop over frontier nodes.
    """
    starts = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(np.int8), empty, counts
    shifts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.repeat(starts - shifts, counts) + np.arange(total)
    return csr.indices[offsets], csr.signs[offsets], np.repeat(frontier, counts), counts


def _signed_bfs_arrays(
    csr: CSRSignedGraph, source_id: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense core of :func:`signed_bfs_csr`: arrays in, arrays out.

    Takes a *dense* source id and touches only the snapshot's flat arrays —
    never the node list or index — so it runs unchanged inside worker
    processes that received the snapshot through shared memory without the
    (arbitrary, possibly unpicklable) node objects.  Returns
    ``(lengths, positive, negative)``.
    """
    num_nodes = csr.number_of_nodes()
    lengths = np.empty(num_nodes, dtype=np.int32)
    positive = np.empty(num_nodes, dtype=np.int64)
    negative = np.empty(num_nodes, dtype=np.int64)
    _signed_bfs_arrays_into(csr, source_id, lengths, positive, negative)
    return lengths, positive, negative


def _signed_bfs_arrays_into(
    csr: CSRSignedGraph,
    source_id: int,
    lengths: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
) -> None:
    """Run Algorithm 1 *into* caller-provided arrays (initialised here).

    The write-into-buffer variant behind result shipping: the execution
    layer hands this function views into a ``multiprocessing.shared_memory``
    result arena, so the traversal's own working arrays *are* the shipped
    result — no copy, no pickling.  The arrays must be ``n``-long with the
    dtypes of :func:`_signed_bfs_arrays`; previous contents are overwritten.
    Raises :class:`OverflowError` under the same per-level int64 guard (the
    arrays then hold partial state the caller must discard).
    """
    num_nodes = csr.number_of_nodes()
    degrees = csr.degrees()
    max_degree = int(degrees.max()) if num_nodes else 0
    count_guard = (2**63 - 1) // max(1, max_degree)
    lengths.fill(UNREACHABLE)
    positive.fill(0)
    negative.fill(0)
    lengths[source_id] = 0
    positive[source_id] = 1
    frontier = np.array([source_id], dtype=np.int64)
    depth = 0
    while frontier.size:
        targets, edge_signs, origins, _counts = _concatenated_neighbor_ranges(csr, frontier)
        if targets.size == 0:
            break
        target_lengths = lengths[targets]
        # Edges u -> x with L(x) == L(u) + 1 carry shortest-path counts.  At
        # gather time every length is still <= depth or UNREACHABLE (level
        # depth + 1 is assigned just below), so those edges are exactly the
        # ones whose target was undiscovered — including repeat occurrences of
        # the same target within this level, which all contribute counts.
        undiscovered = target_lengths == UNREACHABLE
        lengths[targets[undiscovered]] = depth + 1
        targets = targets[undiscovered]
        if targets.size:
            edge_signs = edge_signs[undiscovered]
            origins = origins[undiscovered]
            positive_edges = edge_signs > 0
            pos_contrib = np.where(positive_edges, positive[origins], negative[origins])
            neg_contrib = np.where(positive_edges, negative[origins], positive[origins])
            np.add.at(positive, targets, pos_contrib)
            np.add.at(negative, targets, neg_contrib)
            if (
                int(positive[targets].max()) > count_guard
                or int(negative[targets].max()) > count_guard
            ):
                raise OverflowError(
                    "signed shortest-path counts exceed the int64 safety bound "
                    f"({count_guard}) at BFS depth {depth + 1}; use the dict "
                    "backend (repro.signed.paths.signed_bfs) for this graph"
                )
        frontier = _next_frontier(targets, lengths, depth + 1)
        depth += 1


def signed_bfs_csr(csr: CSRSignedGraph, source: Node) -> CSRSignedBFSResult:
    """Algorithm 1 on the CSR backend: signed shortest-path counting.

    A level-synchronous BFS: each iteration gathers the concatenated adjacency
    of the whole frontier, discovers the next level, and scatters the signed
    count contributions with ``np.add.at`` (positive edges preserve the counts,
    negative edges swap them).  Work per level is a handful of O(frontier
    edges) array operations, so the full traversal is O(|V| + |E|) with
    constant factors one to two orders of magnitude below the dict BFS.

    Counts are ``int64``.  A per-level guard raises :class:`OverflowError`
    *before* any count can wrap: as long as every count entering a level is at
    most ``(2**63 - 1) / max_degree``, no target's accumulated sum can exceed
    ``int64`` during that level, so the check (applied after each level)
    catches the overflow while all values are still exact.  Callers that hit
    the guard should fall back to the dict backend's arbitrary-precision
    integers (:func:`repro.signed.paths.signed_bfs`) — the relations do this
    automatically.
    """
    lengths, positive, negative = _signed_bfs_arrays(csr, csr.index_of(source))
    return CSRSignedBFSResult(
        source=source,
        graph=csr,
        lengths_array=lengths,
        positive_array=positive,
        negative_array=negative,
    )


def _shortest_path_lengths_array(csr: CSRSignedGraph, source_id: int) -> np.ndarray:
    """Dense core of :func:`shortest_path_lengths_csr` (dense id in, array out)."""
    lengths = np.empty(csr.number_of_nodes(), dtype=np.int32)
    _shortest_path_lengths_array_into(csr, source_id, lengths)
    return lengths


def _shortest_path_lengths_array_into(
    csr: CSRSignedGraph, source_id: int, lengths: np.ndarray
) -> None:
    """Sign-agnostic BFS *into* a caller-provided ``int32`` array.

    The write-into-buffer variant used by result shipping: the array may be a
    shared-memory result-arena row, which then holds the finished distance
    map without a parent-side copy.  Previous contents are overwritten.
    """
    lengths.fill(UNREACHABLE)
    lengths[source_id] = 0
    frontier = np.array([source_id], dtype=np.int64)
    depth = 0
    while frontier.size:
        targets, _, _, _ = _concatenated_neighbor_ranges(csr, frontier)
        if targets.size == 0:
            break
        undiscovered = targets[lengths[targets] == UNREACHABLE]
        lengths[undiscovered] = depth + 1
        frontier = _next_frontier(undiscovered, lengths, depth + 1)
        depth += 1


def shortest_path_lengths_csr(csr: CSRSignedGraph, source: Node) -> np.ndarray:
    """Sign-agnostic BFS distances from ``source`` as a dense ``int32`` array.

    Unreachable nodes hold :data:`UNREACHABLE`; wrap with :class:`CSRLengths`
    for a dict-like view keyed by original node objects.
    """
    return _shortest_path_lengths_array(csr, csr.index_of(source))


def shortest_signed_walk_lengths_csr(
    csr: CSRSignedGraph, source: Node
) -> Tuple[np.ndarray, np.ndarray]:
    """Shortest positive / negative *walk* lengths on the signed double cover.

    Array version of
    :func:`~repro.signed.paths.shortest_signed_walk_lengths`: each node is
    duplicated into a positive-parity and a negative-parity state, positive
    edges stay within a layer and negative edges cross layers.  Returns two
    dense arrays (positive first) with :data:`UNREACHABLE` where no walk of
    that sign exists.
    """
    source_id = csr.index_of(source)
    num_nodes = csr.number_of_nodes()
    # State i encodes (node, +1); state i + n encodes (node, -1).
    distances = np.full(2 * num_nodes, UNREACHABLE, dtype=np.int32)
    distances[source_id] = 0
    frontier = np.array([source_id], dtype=np.int64)
    depth = 0
    while frontier.size:
        node_part = frontier % num_nodes
        parity_part = frontier // num_nodes  # 0 = positive, 1 = negative
        targets, edge_signs, _origins, counts = _concatenated_neighbor_ranges(
            csr, node_part
        )
        if targets.size == 0:
            break
        origin_parity = np.repeat(parity_part, counts)
        next_parity = np.where(edge_signs > 0, origin_parity, 1 - origin_parity)
        states = targets.astype(np.int64) + next_parity * num_nodes
        undiscovered = states[distances[states] == UNREACHABLE]
        distances[undiscovered] = depth + 1
        frontier = _next_frontier(undiscovered, distances, depth + 1)
        depth += 1
    return distances[:num_nodes].copy(), distances[num_nodes:].copy()


def _batched_neighbor_ranges(
    csr: CSRSignedGraph, frontier: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Adjacency gather for a frontier of flat ``row * n + node`` state ids.

    Like :func:`_concatenated_neighbor_ranges` but in the flattened multi-source
    state space: an edge from state ``r * n + u`` leads to state ``r * n + x``
    for every neighbour ``x`` of ``u`` — rows never mix, so the k independent
    BFS traversals advance through one shared set of array operations.
    Returns ``(targets, signs, origins)`` flat-state arrays.
    """
    node_part = frontier % num_nodes
    row_base = frontier - node_part
    starts = csr.indptr[node_part]
    counts = csr.indptr[node_part + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(np.int8), empty
    shifts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.repeat(starts - shifts, counts) + np.arange(total)
    targets = csr.indices[offsets].astype(np.int64) + np.repeat(row_base, counts)
    return targets, csr.signs[offsets], np.repeat(frontier, counts)


def _batched_signed_bfs_arrays(
    csr: CSRSignedGraph, source_ids: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Algorithm 1 from ``k`` sources in lockstep over a flat ``k x n`` state space.

    Every BFS level runs one adjacency gather / one scatter for the union of
    all k frontiers instead of k separate kernel invocations, so the fixed
    per-level array-operation cost is paid once per level for the whole batch.
    Rows are independent (edges stay within their row), which makes each row
    bit-identical to a single-source :func:`signed_bfs_csr` run.

    Returns ``(lengths, positive, negative)`` shaped ``(k, n)``.  Raises
    :class:`OverflowError` under the same per-level int64 guard as the
    single-source kernel (callers re-run the offending chunk per source to
    isolate the overflowing rows).
    """
    num_nodes = csr.number_of_nodes()
    k = len(source_ids)
    size = k * num_nodes
    lengths = np.empty(size, dtype=np.int32)
    positive = np.empty(size, dtype=np.int64)
    negative = np.empty(size, dtype=np.int64)
    _lockstep_signed_bfs_into(csr, source_ids, lengths, positive, negative)
    return (
        lengths.reshape(k, num_nodes),
        positive.reshape(k, num_nodes),
        negative.reshape(k, num_nodes),
    )


def _lockstep_signed_bfs_into(
    csr: CSRSignedGraph,
    source_ids: Sequence[int],
    lengths: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
) -> None:
    """Lockstep core of :func:`_batched_signed_bfs_arrays`, writing in place.

    The arrays are flat ``k * n`` state spaces (any dtype-compatible buffer,
    e.g. a contiguous block of shared-memory result-arena rows reshaped to
    1-D); they are initialised here and hold the finished rows on return.
    Raises :class:`OverflowError` under the per-level int64 guard, leaving
    partial state the caller must discard (typically by re-running the
    chunk's sources individually through :func:`_signed_bfs_arrays_into`).
    """
    num_nodes = csr.number_of_nodes()
    k = len(source_ids)
    degrees = csr.degrees()
    max_degree = int(degrees.max()) if num_nodes else 0
    count_guard = (2**63 - 1) // max(1, max_degree)
    lengths.fill(UNREACHABLE)
    positive.fill(0)
    negative.fill(0)
    flat_sources = (
        np.arange(k, dtype=np.int64) * num_nodes
        + np.asarray(source_ids, dtype=np.int64)
    )
    lengths[flat_sources] = 0
    positive[flat_sources] = 1
    frontier = flat_sources
    depth = 0
    while frontier.size:
        targets, edge_signs, origins = _batched_neighbor_ranges(csr, frontier, num_nodes)
        if targets.size == 0:
            break
        undiscovered = lengths[targets] == UNREACHABLE
        lengths[targets[undiscovered]] = depth + 1
        targets = targets[undiscovered]
        if targets.size:
            edge_signs = edge_signs[undiscovered]
            origins = origins[undiscovered]
            positive_edges = edge_signs > 0
            pos_contrib = np.where(positive_edges, positive[origins], negative[origins])
            neg_contrib = np.where(positive_edges, negative[origins], positive[origins])
            np.add.at(positive, targets, pos_contrib)
            np.add.at(negative, targets, neg_contrib)
            if (
                int(positive[targets].max()) > count_guard
                or int(negative[targets].max()) > count_guard
            ):
                raise OverflowError(
                    "signed shortest-path counts exceed the int64 safety bound "
                    f"({count_guard}) at BFS depth {depth + 1} in a batched "
                    "traversal; re-run the affected sources individually"
                )
        frontier = _next_frontier(targets, lengths, depth + 1)
        depth += 1


def _wordparallel_seed(
    num_nodes: int, source_ids: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Seed state for a word-parallel chunk: ``(ids, bits, frontier)``.

    ``frontier`` is the per-node ``uint64`` word array with source ``i``'s
    bit set on its source node (``np.bitwise_or.at`` — duplicate sources in
    one chunk OR into the same word and stay independent traversals).
    """
    from repro.utils.bitset import source_bits

    ids = np.asarray(source_ids, dtype=np.int64)
    bits = source_bits(len(source_ids))
    frontier = np.zeros(num_nodes, dtype=np.uint64)
    np.bitwise_or.at(frontier, ids, bits)
    return ids, bits, frontier


def _wordparallel_path_lengths_into(
    csr: CSRSignedGraph, source_ids: Sequence[int], out_lengths: np.ndarray
) -> None:
    """Word-parallel multi-source BFS: up to 64 distance maps per gather.

    Frontier and visited state are packed ``uint64`` words (bit b = "source
    b"), so one level of ALL the chunk's traversals is one adjacency gather
    over the *union* frontier, one ``bitwise_or`` scatter, and one
    ``& ~seen`` — the level expansion the ISSUE calls OR/AND over packed
    rows.  Row ``b`` of ``out_lengths`` (shape ``(k, n)``, int32; any row
    layout — writes are per-row) receives source ``b``'s distances,
    bit-identical to :func:`_shortest_path_lengths_array_into`: BFS depths
    are unique per (source, node), so equality is exact by construction.
    """
    from repro.utils.bitset import set_bit_positions

    num_nodes = csr.number_of_nodes()
    k = len(source_ids)
    ids, _bits, frontier = _wordparallel_seed(num_nodes, source_ids)
    seen = frontier.copy()
    out_lengths.fill(UNREACHABLE)
    out_lengths[np.arange(k), ids] = 0
    depth = 0
    while True:
        active = np.flatnonzero(frontier)
        if active.size == 0:
            break
        targets, _signs, origins, _counts = _concatenated_neighbor_ranges(csr, active)
        if targets.size == 0:
            break
        next_words = np.zeros(num_nodes, dtype=np.uint64)
        np.bitwise_or.at(next_words, targets, frontier[origins])
        next_words &= ~seen
        newly = np.flatnonzero(next_words)
        if newly.size == 0:
            break
        seen[newly] |= next_words[newly]
        newly_words = next_words[newly]
        for b in set_bit_positions(int(np.bitwise_or.reduce(newly_words))):
            bit = np.uint64(1) << np.uint64(b)
            out_lengths[b, newly[(newly_words & bit) != 0]] = depth + 1
        frontier = next_words
        depth += 1


def _wordparallel_signed_bfs_into(
    csr: CSRSignedGraph,
    source_ids: Sequence[int],
    out_lengths: np.ndarray,
    out_positive: np.ndarray,
    out_negative: np.ndarray,
) -> None:
    """Word-parallel Algorithm 1: up to 64 signed BFS runs per adjacency gather.

    Discovery is word-parallel exactly as in
    :func:`_wordparallel_path_lengths_into`; the signed count propagation
    then runs per *active* source over only that source's discovery edges
    (``frontier word & next word`` per edge selects them), in the same
    concatenated-adjacency order the per-source kernel scatters in — so rows
    are bit-identical to :func:`_signed_bfs_arrays_into`, including the
    per-level int64 overflow guard (raises :class:`OverflowError`; the
    caller re-runs the chunk source by source, as with lockstep).  Output
    buffers are ``(k, n)`` int32/int64/int64; writes are per-row, so any row
    layout (e.g. a slice of result-arena planes) works.
    """
    from repro.utils.bitset import set_bit_positions

    num_nodes = csr.number_of_nodes()
    k = len(source_ids)
    degrees = csr.degrees()
    max_degree = int(degrees.max()) if num_nodes else 0
    count_guard = (2**63 - 1) // max(1, max_degree)
    ids, _bits, frontier = _wordparallel_seed(num_nodes, source_ids)
    seen = frontier.copy()
    out_lengths.fill(UNREACHABLE)
    out_positive.fill(0)
    out_negative.fill(0)
    rows = np.arange(k)
    out_lengths[rows, ids] = 0
    out_positive[rows, ids] = 1
    depth = 0
    while True:
        active = np.flatnonzero(frontier)
        if active.size == 0:
            break
        targets, edge_signs, origins, _counts = _concatenated_neighbor_ranges(
            csr, active
        )
        if targets.size == 0:
            break
        words = frontier[origins]
        next_words = np.zeros(num_nodes, dtype=np.uint64)
        np.bitwise_or.at(next_words, targets, words)
        next_words &= ~seen
        newly = np.flatnonzero(next_words)
        if newly.size == 0:
            break
        seen[newly] |= next_words[newly]
        # Per-edge discovery words: bit b set iff this edge crosses from
        # source b's frontier into a node source b discovers this level —
        # exactly the count-carrying edges of the per-source kernel.
        discovery = words & next_words[targets]
        newly_words = next_words[newly]
        positive_edges = edge_signs > 0
        for b in set_bit_positions(int(np.bitwise_or.reduce(newly_words))):
            bit = np.uint64(1) << np.uint64(b)
            row_new = newly[(newly_words & bit) != 0]
            out_lengths[b, row_new] = depth + 1
            edge_sel = np.flatnonzero((discovery & bit) != 0)
            chunk_targets = targets[edge_sel]
            chunk_origins = origins[edge_sel]
            chunk_positive = positive_edges[edge_sel]
            positive_row = out_positive[b]
            negative_row = out_negative[b]
            pos_contrib = np.where(
                chunk_positive, positive_row[chunk_origins], negative_row[chunk_origins]
            )
            neg_contrib = np.where(
                chunk_positive, negative_row[chunk_origins], positive_row[chunk_origins]
            )
            np.add.at(positive_row, chunk_targets, pos_contrib)
            np.add.at(negative_row, chunk_targets, neg_contrib)
            if (
                int(positive_row[row_new].max(initial=0)) > count_guard
                or int(negative_row[row_new].max(initial=0)) > count_guard
            ):
                raise OverflowError(
                    "signed shortest-path counts exceed the int64 safety bound "
                    f"({count_guard}) at BFS depth {depth + 1} in a "
                    "word-parallel traversal; re-run the affected sources "
                    "individually"
                )
        frontier = next_words
        depth += 1


#: One per-source kernel output: ``(lengths, positive, negative)`` arrays, or
#: ``None`` marking an int64 overflow the caller resolves on the dict backend.
DenseBFSTriple = Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]


def signed_bfs_dense_batch(
    csr: CSRSignedGraph,
    source_ids: Sequence[int],
    chunk_size: int = DEFAULT_BATCH_CHUNK,
    skip_overflow: bool = False,
    lockstep_threshold: Optional[int] = None,
    wordparallel: Optional[bool] = None,
) -> List[DenseBFSTriple]:
    """Dense core of :func:`multi_source_signed_bfs`: dense ids in, arrays out.

    Works purely on the snapshot's flat arrays (no node objects), which is
    what lets the execution layer run it inside worker processes against a
    shared-memory copy of the snapshot.  ``lockstep_threshold`` overrides
    :data:`LOCKSTEP_NODE_THRESHOLD` (``None`` keeps the module default).
    ``wordparallel`` forces (``True``) or disables (``False``) the
    word-parallel path; ``None`` engages it adaptively — above the lockstep
    threshold, with at least :data:`WORDPARALLEL_MIN_SOURCES` sources, in
    chunks of 64 (the word width; ``chunk_size`` governs lockstep only).
    Results are in input order and bit-identical to per-source
    :func:`_signed_bfs_arrays` runs.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    threshold = (
        LOCKSTEP_NODE_THRESHOLD if lockstep_threshold is None else lockstep_threshold
    )
    id_list = list(source_ids)
    results: List[DenseBFSTriple] = []

    def per_source(source_id: int) -> None:
        try:
            results.append(_signed_bfs_arrays(csr, source_id))
        except OverflowError:
            if not skip_overflow:
                raise
            results.append(None)

    num_nodes = csr.number_of_nodes()
    use_wordparallel = (
        wordparallel
        if wordparallel is not None
        else num_nodes > threshold and len(id_list) >= WORDPARALLEL_MIN_SOURCES
    )
    if use_wordparallel:
        from repro.utils.bitset import WORD_BITS

        for start in range(0, len(id_list), WORD_BITS):
            chunk = id_list[start : start + WORD_BITS]
            k = len(chunk)
            lengths = np.empty((k, num_nodes), dtype=np.int32)
            positive = np.empty((k, num_nodes), dtype=np.int64)
            negative = np.empty((k, num_nodes), dtype=np.int64)
            try:
                _wordparallel_signed_bfs_into(csr, chunk, lengths, positive, negative)
            except OverflowError:
                for source_id in chunk:
                    per_source(source_id)
                continue
            results.extend(
                (lengths[row].copy(), positive[row].copy(), negative[row].copy())
                for row in range(k)
            )
        return results
    if num_nodes > threshold:
        for source_id in id_list:
            per_source(source_id)
        return results
    for start in range(0, len(id_list), chunk_size):
        chunk = id_list[start : start + chunk_size]
        try:
            lengths, positive, negative = _batched_signed_bfs_arrays(csr, chunk)
        except OverflowError:
            for source_id in chunk:
                per_source(source_id)
            continue
        for row in range(len(chunk)):
            # Rows are copied out of the chunk buffer, so holding one result
            # does not pin the whole k x n allocation.
            results.append(
                (lengths[row].copy(), positive[row].copy(), negative[row].copy())
            )
    return results


def signed_bfs_dense_batch_into(
    csr: CSRSignedGraph,
    source_ids: Sequence[int],
    out_lengths: np.ndarray,
    out_positive: np.ndarray,
    out_negative: np.ndarray,
    chunk_size: int = DEFAULT_BATCH_CHUNK,
    skip_overflow: bool = False,
    lockstep_threshold: Optional[int] = None,
    wordparallel: Optional[bool] = None,
) -> List[Optional[bool]]:
    """:func:`signed_bfs_dense_batch` writing straight into ``(k, n)`` buffers.

    The result-shipping variant: the execution layer passes rows of a
    ``multiprocessing.shared_memory`` result arena, so each source's triple is
    produced *in place* — the parent maps the same segment and reads the rows
    zero-copy instead of unpickling per-source arrays.  Row ``i`` of the three
    output buffers (dtypes ``int32``/``int64``/``int64``) receives source
    ``source_ids[i]``'s result.  Returns one token per source, aligned with
    the input: ``True`` for a completed row, ``None`` for an int64 overflow
    (with ``skip_overflow``), whose row contents are then undefined.  Written
    rows are bit-identical to :func:`signed_bfs_dense_batch` on the same
    inputs — the adaptive lockstep/per-source structure is the same.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    threshold = (
        LOCKSTEP_NODE_THRESHOLD if lockstep_threshold is None else lockstep_threshold
    )
    id_list = list(source_ids)
    tokens: List[Optional[bool]] = []

    def per_source(row: int, source_id: int) -> None:
        try:
            _signed_bfs_arrays_into(
                csr, source_id, out_lengths[row], out_positive[row], out_negative[row]
            )
            tokens.append(True)
        except OverflowError:
            if not skip_overflow:
                raise
            tokens.append(None)

    num_nodes = csr.number_of_nodes()
    use_wordparallel = (
        wordparallel
        if wordparallel is not None
        else num_nodes > threshold and len(id_list) >= WORDPARALLEL_MIN_SOURCES
    )
    if use_wordparallel:
        # Word-parallel writes are per-row, so any buffer layout (including
        # non-contiguous result-arena slices) is safe here.
        from repro.utils.bitset import WORD_BITS

        for start in range(0, len(id_list), WORD_BITS):
            chunk = id_list[start : start + WORD_BITS]
            stop = start + len(chunk)
            try:
                _wordparallel_signed_bfs_into(
                    csr,
                    chunk,
                    out_lengths[start:stop],
                    out_positive[start:stop],
                    out_negative[start:stop],
                )
                tokens.extend([True] * len(chunk))
            except OverflowError:
                for offset, source_id in enumerate(chunk):
                    per_source(start + offset, source_id)
        return tokens
    # The lockstep path flattens contiguous row blocks into its k x n state
    # space; on a non-contiguous buffer reshape(-1) would silently copy and
    # the results would never land in the caller's rows — those buffers take
    # the per-source path, whose single-row writes go through any layout.
    lockstep_safe = all(
        out.flags["C_CONTIGUOUS"] for out in (out_lengths, out_positive, out_negative)
    )
    if num_nodes > threshold or not lockstep_safe:
        for row, source_id in enumerate(id_list):
            per_source(row, source_id)
        return tokens
    for start in range(0, len(id_list), chunk_size):
        chunk = id_list[start : start + chunk_size]
        stop = start + len(chunk)
        try:
            # Contiguous row blocks reshape to the flat k x n state space the
            # lockstep core works on — the buffer IS the working memory.
            _lockstep_signed_bfs_into(
                csr,
                chunk,
                out_lengths[start:stop].reshape(-1),
                out_positive[start:stop].reshape(-1),
                out_negative[start:stop].reshape(-1),
            )
            tokens.extend([True] * len(chunk))
        except OverflowError:
            for offset, source_id in enumerate(chunk):
                per_source(start + offset, source_id)
    return tokens


def multi_source_signed_bfs(
    csr: CSRSignedGraph,
    sources: Sequence[Node],
    chunk_size: int = DEFAULT_BATCH_CHUNK,
    skip_overflow: bool = False,
) -> List[Optional[CSRSignedBFSResult]]:
    """Run Algorithm 1 from every source over one shared index, batched.

    On graphs up to :data:`LOCKSTEP_NODE_THRESHOLD` nodes, sources are
    processed ``chunk_size`` at a time through
    :func:`_batched_signed_bfs_arrays`; each chunk advances all its frontiers
    in lockstep, so the per-level array-operation overhead is shared across
    the chunk.  On larger graphs — where the ``k x n`` lockstep arrays fall
    out of cache and lose to the cache-resident per-source traversals — each
    source runs its own vectorised BFS over the shared index.  Either way the
    results come back in input order and are bit-identical to per-source
    :func:`signed_bfs_csr` runs.

    A chunk whose counts trip the int64 guard is re-run source by source; a
    source that *individually* overflows then raises :class:`OverflowError`
    unless ``skip_overflow`` is true, in which case its slot holds ``None``
    and the caller is expected to fall back to the dict backend's
    arbitrary-precision BFS for it.
    """
    source_list = list(sources)
    triples = signed_bfs_dense_batch(
        csr,
        [csr.index_of(source) for source in source_list],
        chunk_size=chunk_size,
        skip_overflow=skip_overflow,
    )
    return [
        None
        if triple is None
        else CSRSignedBFSResult(
            source=source,
            graph=csr,
            lengths_array=triple[0],
            positive_array=triple[1],
            negative_array=triple[2],
        )
        for source, triple in zip(source_list, triples)
    ]


def shortest_path_lengths_dense_batch(
    csr: CSRSignedGraph,
    source_ids: Sequence[int],
    chunk_size: int = DEFAULT_BATCH_CHUNK,
    lockstep_threshold: Optional[int] = None,
    wordparallel: Optional[bool] = None,
) -> List[np.ndarray]:
    """Dense core of :func:`multi_source_shortest_path_lengths_csr`.

    Dense ids in, one ``int32`` length array per source out; node objects are
    never touched, so the execution layer can run it in worker processes over
    a shared-memory snapshot.  ``lockstep_threshold`` overrides
    :data:`LOCKSTEP_NODE_THRESHOLD` (``None`` keeps the module default);
    ``wordparallel`` forces/disables the word-parallel path (``None`` =
    adaptive, same crossover as :func:`signed_bfs_dense_batch`).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    threshold = (
        LOCKSTEP_NODE_THRESHOLD if lockstep_threshold is None else lockstep_threshold
    )
    id_list = list(source_ids)
    num_nodes = csr.number_of_nodes()
    use_wordparallel = (
        wordparallel
        if wordparallel is not None
        else num_nodes > threshold and len(id_list) >= WORDPARALLEL_MIN_SOURCES
    )
    if use_wordparallel:
        from repro.utils.bitset import WORD_BITS

        results = []
        for start in range(0, len(id_list), WORD_BITS):
            chunk = id_list[start : start + WORD_BITS]
            lengths = np.empty((len(chunk), num_nodes), dtype=np.int32)
            _wordparallel_path_lengths_into(csr, chunk, lengths)
            results.extend(lengths[row].copy() for row in range(len(chunk)))
        return results
    if num_nodes > threshold:
        return [_shortest_path_lengths_array(csr, source_id) for source_id in id_list]
    results: List[np.ndarray] = []
    for start in range(0, len(id_list), chunk_size):
        ids = id_list[start : start + chunk_size]
        k = len(ids)
        lengths = np.empty(k * num_nodes, dtype=np.int32)
        _lockstep_path_lengths_into(csr, ids, lengths)
        grid = lengths.reshape(k, num_nodes)
        results.extend(grid[row].copy() for row in range(k))
    return results


def _lockstep_path_lengths_into(
    csr: CSRSignedGraph, source_ids: Sequence[int], lengths: np.ndarray
) -> None:
    """Lockstep core of the multi-source distance sweep, writing in place.

    ``lengths`` is a flat ``k * n`` int32 state space (initialised here) —
    a fresh allocation or a contiguous block of result-arena rows.
    """
    num_nodes = csr.number_of_nodes()
    k = len(source_ids)
    lengths.fill(UNREACHABLE)
    flat_sources = (
        np.arange(k, dtype=np.int64) * num_nodes
        + np.asarray(source_ids, dtype=np.int64)
    )
    lengths[flat_sources] = 0
    frontier = flat_sources
    depth = 0
    while frontier.size:
        targets, _signs, _origins = _batched_neighbor_ranges(
            csr, frontier, num_nodes
        )
        if targets.size == 0:
            break
        undiscovered = targets[lengths[targets] == UNREACHABLE]
        lengths[undiscovered] = depth + 1
        frontier = _next_frontier(undiscovered, lengths, depth + 1)
        depth += 1


def shortest_path_lengths_dense_batch_into(
    csr: CSRSignedGraph,
    source_ids: Sequence[int],
    out_lengths: np.ndarray,
    chunk_size: int = DEFAULT_BATCH_CHUNK,
    lockstep_threshold: Optional[int] = None,
    wordparallel: Optional[bool] = None,
) -> List[Optional[bool]]:
    """:func:`shortest_path_lengths_dense_batch` into a ``(k, n)`` buffer.

    Row ``i`` of ``out_lengths`` (``int32``, typically shared-memory
    result-arena rows the parent reads back zero-copy) receives
    ``source_ids[i]``'s distance map, bit-identical to the allocating batch.
    Returns one ``True`` token per source for uniformity with
    :func:`signed_bfs_dense_batch_into` (distance sweeps cannot overflow).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    threshold = (
        LOCKSTEP_NODE_THRESHOLD if lockstep_threshold is None else lockstep_threshold
    )
    id_list = list(source_ids)
    num_nodes = csr.number_of_nodes()
    use_wordparallel = (
        wordparallel
        if wordparallel is not None
        else num_nodes > threshold and len(id_list) >= WORDPARALLEL_MIN_SOURCES
    )
    if use_wordparallel:
        from repro.utils.bitset import WORD_BITS

        for start in range(0, len(id_list), WORD_BITS):
            chunk = id_list[start : start + WORD_BITS]
            stop = start + len(chunk)
            _wordparallel_path_lengths_into(csr, chunk, out_lengths[start:stop])
        return [True] * len(id_list)
    # Same contiguity guard as signed_bfs_dense_batch_into: the lockstep
    # reshape must not silently copy out of the caller's buffer.
    if num_nodes > threshold or not out_lengths.flags["C_CONTIGUOUS"]:
        for row, source_id in enumerate(id_list):
            _shortest_path_lengths_array_into(csr, source_id, out_lengths[row])
        return [True] * len(id_list)
    for start in range(0, len(id_list), chunk_size):
        ids = id_list[start : start + chunk_size]
        stop = start + len(ids)
        _lockstep_path_lengths_into(csr, ids, out_lengths[start:stop].reshape(-1))
    return [True] * len(id_list)


def multi_source_shortest_path_lengths_csr(
    csr: CSRSignedGraph,
    sources: Sequence[Node],
    chunk_size: int = DEFAULT_BATCH_CHUNK,
) -> List[np.ndarray]:
    """Sign-agnostic BFS distances from many sources over one shared index.

    The flat-state counterpart of :func:`shortest_path_lengths_csr`: on graphs
    up to :data:`LOCKSTEP_NODE_THRESHOLD` nodes all sources of a chunk advance
    together, one adjacency gather per level; larger graphs run per-source
    traversals (same cache-locality crossover as
    :func:`multi_source_signed_bfs`).  Returns one dense ``int32`` length
    array per source, in input order (:data:`UNREACHABLE` marks unreachable
    nodes; wrap with :class:`CSRLengths` for a dict-like view).
    """
    return shortest_path_lengths_dense_batch(
        csr,
        [csr.index_of(source) for source in sources],
        chunk_size=chunk_size,
    )


def _extend_camps_csr(
    adjacency: "_ListAdjacency", camps: Dict[int, int], new_node: int
) -> Optional[Dict[int, int]]:
    """Dense-id version of :func:`repro.signed.paths._extend_camps`.

    ``camps`` is the Harary two-colouring of the representative path's induced
    subgraph, keyed by dense node id.  The extension is balanced iff every
    edge from ``new_node`` back into the path agrees on one camp for it.
    ``adjacency`` is the search's list-converted CSR view — plain Python ints,
    so the hot membership loop pays no numpy scalar boxing.
    """
    indptr, indices, signs = adjacency
    start = indptr[new_node]
    stop = indptr[new_node + 1]
    required: Optional[int] = None
    camps_get = camps.get
    for position in range(start, stop):
        camp = camps_get(indices[position])
        if camp is None:
            continue
        expected = camp if signs[position] > 0 else 1 - camp
        if required is None:
            required = expected
        elif required != expected:
            return None
    if required is None:
        required = 0
    extended = dict(camps)
    extended[new_node] = required
    return extended


#: ``(indptr, indices, signs)`` of a CSR graph as plain Python lists.
_ListAdjacency = Tuple[List[int], List[int], List[int]]

#: Minimum candidate degree for which the Harary camp gather is vectorised;
#: below it the per-edge Python check wins (a handful of numpy calls plus the
#: scratch-colouring maintenance cost more than the adjacency scan — measured
#: break-even sits in the several-hundreds).
_CAMP_BATCH_THRESHOLD = 512


def _hub_camp_check(
    csr: CSRSignedGraph, node: int, camp_scratch: np.ndarray
) -> Tuple[bool, int]:
    """Vectorised Harary-extension check for one high-degree candidate.

    ``camp_scratch`` holds the origin path's camp per node (``-1`` off the
    path; scattered once per origin by the caller).  The extension is
    balanced iff every on-path neighbour implies the *same* camp for the
    candidate (positive edge: the neighbour's camp; negative edge: the
    opposite camp) — exactly :func:`_extend_camps_csr`, but as one adjacency
    gather plus a min/max reduction instead of a Python loop per edge, which
    wins once the candidate's degree dwarfs the path length (hubs).  Returns
    ``(balanced, required_camp)``; the required camp defaults to ``0`` with
    no on-path neighbour.
    """
    start, stop = csr.indptr[node], csr.indptr[node + 1]
    camps = camp_scratch[csr.indices[start:stop]]
    on_path = camps >= 0
    implied = np.where(csr.signs[start:stop] > 0, camps, 1 - camps)[on_path]
    if implied.size == 0:
        return True, 0
    lowest = int(implied.min())
    return lowest == int(implied.max()), lowest


def balanced_heuristic_depths(
    csr: CSRSignedGraph, source_id: int, max_length: Optional[int] = None
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Dense core of :func:`balanced_heuristic_search_csr`.

    Takes a dense source id and returns ``(positive_depths, negative_depths)``
    keyed by dense node ids — no node objects are touched, so the execution
    layer can run the search in worker processes over a shared-memory
    snapshot and remap the depths to node objects in the parent.
    """
    return _balanced_heuristic_depths(csr, source_id, max_length)


def balanced_result_from_depths(
    csr: CSRSignedGraph,
    source: Node,
    positive_depths: Dict[int, int],
    negative_depths: Dict[int, int],
    max_length: Optional[int] = None,
) -> BalancedPathResult:
    """Re-key dense SBPH depth maps to node objects as a :class:`BalancedPathResult`.

    The single place the dense search output (``balanced_heuristic_depths``,
    local or shipped back from a worker) becomes the node-keyed result the
    relations cache — keeping the bound rule and the remap in one spot so the
    serial and pooled paths cannot drift apart.
    """
    nodes = csr._nodes
    bound = max_length if max_length is not None else csr.number_of_nodes() - 1
    result = BalancedPathResult(source=source, exact=False, max_length=bound)
    for dense, length in positive_depths.items():
        result.positive_lengths[nodes[dense]] = length
    for dense, length in negative_depths.items():
        result.negative_lengths[nodes[dense]] = length
    return result


def balanced_heuristic_search_csr(
    csr: CSRSignedGraph, source: Node, max_length: Optional[int] = None
) -> BalancedPathResult:
    """SBPH's prefix-property search as an indexed (node, sign)-state BFS.

    State ``i`` encodes ``(node i, positive prefix)``; state ``i + n`` encodes
    ``(node i, negative prefix)`` — the same double-cover layout as
    :func:`shortest_signed_walk_lengths_csr`.  Each level gathers the whole
    frontier's adjacency, computes target states and filters already-claimed
    states with array operations; only the surviving candidates (those that
    could claim a new representative) run the per-path balance check, in
    exactly the order the dict search would have reached them (frontier
    discovery order, then adjacency order).  The balance check itself is
    degree-adaptive: ordinary candidates run the per-edge Python check
    (:func:`_extend_camps_csr`), while **hub** candidates — degree at least
    :data:`_CAMP_BATCH_THRESHOLD` and well above the origin path length —
    gather their neighbours' camps vectorised through a scratch camp array
    scattered once per origin path (:func:`_hub_camp_check`).  Both paths
    compute the same verdict and camp, so the output is **bit-identical** to
    :meth:`repro.signed.paths.BalancedPathSearch.search_heuristic` — same
    representative per state, same recorded path lengths.
    """
    positive_depths, negative_depths = _balanced_heuristic_depths(
        csr, csr.index_of(source), max_length
    )
    return balanced_result_from_depths(
        csr, source, positive_depths, negative_depths, max_length
    )


def _balanced_heuristic_depths(
    csr: CSRSignedGraph, source_id: int, max_length: Optional[int] = None
) -> Tuple[Dict[int, int], Dict[int, int]]:
    if max_length is not None and max_length < 0:
        raise ValueError(f"max_length must be non-negative, got {max_length}")
    num_nodes = csr.number_of_nodes()
    bound = max_length if max_length is not None else num_nodes - 1
    claimed = np.zeros(2 * num_nodes, dtype=bool)
    claimed[source_id] = True
    # Scratch Harary colouring for the vectorised hub checks: camp per node
    # on the last-scattered origin path, -1 elsewhere.  scratch_camps tracks
    # (by identity) which path's colouring currently occupies it.
    camp_scratch = np.full(num_nodes, -1, dtype=np.int8)
    scratch_camps: Optional[Dict[int, int]] = None
    hub_nodes = csr.degrees() >= _CAMP_BATCH_THRESHOLD
    has_hubs = bool(hub_nodes.any())
    #: state id -> (representative path, camps), both in dense ids.
    representative: Dict[int, Tuple[List[int], Dict[int, int]]] = {
        source_id: ([source_id], {source_id: 0})
    }
    positive_depths: Dict[int, int] = {source_id: 0}
    negative_depths: Dict[int, int] = {}
    frontier: List[int] = [source_id]
    depth = 0
    # One-time list conversion of the CSR arrays: the per-candidate balance
    # checks below are pure-Python loops, and list indexing returns cached
    # small ints instead of boxing a numpy scalar per access.
    adjacency: _ListAdjacency = (
        csr.indptr.tolist(),
        csr.indices.tolist(),
        csr.signs.tolist(),
    )
    indptr_list = adjacency[0]
    while frontier and depth < bound:
        states = np.asarray(frontier, dtype=np.int64)
        node_part = states % num_nodes
        parity_part = states // num_nodes  # 0 = positive prefix, 1 = negative
        targets, edge_signs, _origins, counts = _concatenated_neighbor_ranges(
            csr, node_part
        )
        if targets.size == 0:
            break
        origin_parity = np.repeat(parity_part, counts)
        next_parity = np.where(edge_signs > 0, origin_parity, 1 - origin_parity)
        target_states = targets.astype(np.int64) + next_parity * num_nodes
        # Vectorised prefilter: drop every edge whose target state was claimed
        # on an earlier level (the dict search's `state in representative`).
        open_positions = np.flatnonzero(~claimed[target_states])
        candidate_array = targets[open_positions]
        candidate_nodes = candidate_array.tolist()
        candidate_states = target_states[open_positions].tolist()
        candidate_origins = np.repeat(states, counts)[open_positions].tolist()
        # One vectorised gather flags the hub candidates (degree past the
        # batching threshold); hub-free graphs — the common case — skip even
        # that and zip a constant, paying nothing for the adaptivity.
        if has_hubs:
            hub_flags: Iterable[bool] = hub_nodes[candidate_array].tolist()
        else:
            hub_flags = itertools.repeat(False)
        next_frontier: List[int] = []
        for t_node, t_state, o_state, is_hub in zip(
            candidate_nodes, candidate_states, candidate_origins, hub_flags
        ):
            if claimed[t_state]:
                continue  # claimed earlier in this same level
            path, camps = representative[o_state]
            if t_node in camps:
                continue  # revisiting the representative path
            if is_hub and (
                indptr_list[t_node + 1] - indptr_list[t_node] >= 4 * len(camps)
            ):
                # Hub candidate: the adjacency scan dominates, so gather the
                # camps vectorised.  The scratch colouring is scattered once
                # per origin path (identity-tracked) and lazily reset when
                # the next hub check uses a different origin.
                if scratch_camps is not camps:
                    if scratch_camps is not None:
                        for dense in scratch_camps:
                            camp_scratch[dense] = -1
                    for dense, camp in camps.items():
                        camp_scratch[dense] = camp
                    scratch_camps = camps
                balanced, required = _hub_camp_check(csr, t_node, camp_scratch)
                if not balanced:
                    continue  # unbalanced extension — prune
                extended = dict(camps)
                extended[t_node] = required
            else:
                extended = _extend_camps_csr(adjacency, camps, t_node)
                if extended is None:
                    continue  # unbalanced extension — prune
            claimed[t_state] = True
            representative[t_state] = (path + [t_node], extended)
            if t_state < num_nodes:
                positive_depths[t_node] = depth + 1
            else:
                negative_depths[t_node] = depth + 1
            next_frontier.append(t_state)
        frontier = next_frontier
        depth += 1
    return positive_depths, negative_depths


class CSRLengths:
    """Dict-like read view over a dense length array, keyed by node objects.

    Supports the mapping subset the distance oracle uses (``get``,
    ``__contains__``, ``__getitem__``, ``items``); unreachable nodes behave as
    missing keys.
    """

    __slots__ = ("_graph", "_lengths")

    def __init__(self, graph: CSRSignedGraph, lengths: np.ndarray) -> None:
        self._graph = graph
        self._lengths = lengths

    def get(self, node: Node, default=None):
        """Length to ``node``, or ``default`` when unreachable or unknown."""
        dense = self._graph._index.get(node)
        if dense is None:
            return default
        value = self._lengths[dense]
        return default if value == UNREACHABLE else int(value)

    def __getitem__(self, node: Node) -> int:
        value = self.get(node)
        if value is None:
            raise KeyError(node)
        return value

    def __contains__(self, node: Node) -> bool:
        return self.get(node) is not None

    def __len__(self) -> int:
        return int((self._lengths != UNREACHABLE).sum())

    def __iter__(self) -> Iterator[Node]:
        # Without this, Python's legacy iteration protocol would call
        # __getitem__(0), __getitem__(1), ... and raise KeyError — a trap for
        # callers that iterate the dict the small-graph code path returns.
        nodes = self._graph._nodes
        for dense in np.flatnonzero(self._lengths != UNREACHABLE):
            yield nodes[dense]

    def keys(self) -> Iterator[Node]:
        """Iterate over the reachable nodes (dict-style)."""
        return iter(self)

    def items(self):
        """Iterate over ``(node, length)`` pairs for reachable nodes."""
        nodes = self._graph._nodes
        for dense in np.flatnonzero(self._lengths != UNREACHABLE):
            yield nodes[dense], int(self._lengths[dense])
